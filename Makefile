# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

PY ?= python
export PYTHONPATH := src

.PHONY: test lint mypy check-plan check-report check-telemetry check

test:
	$(PY) -m pytest -x -q

lint:
	$(PY) -m repro.analysis.lint src/repro --ci

mypy:
	mypy src/repro/analysis src/repro/obs

check-plan:
	@for wl in ysb lrb nyt; do \
		$(PY) -m repro.cli check-plan --workload $$wl --queries 4 || exit 1; \
	done

check-report:
	@for wl in ysb lrb nyt; do \
		$(PY) -m repro.cli report --workload $$wl --scheduler Klink \
			--queries 4 --duration 15 --format json --check-schema \
			> /dev/null || exit 1; \
	done
	$(PY) -m repro.cli report --workload ysb --scheduler Default \
		--queries 4 --duration 15 --format json --check-schema > /dev/null

# Telemetry gate: two seeded runs must be byte-identical (trace and
# BENCH json), the trace must pass schema + Chrome-trace validation,
# and the fresh snapshot must not regress against the checked-in
# baseline (benchmarks/results/BENCH_ysb.json).
check-telemetry:
	@set -e; dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	run="$(PY) -m repro.cli run --workload ysb --scheduler Klink \
		--queries 4 --duration 30 --cores 8 --seed 1"; \
	$$run --trace $$dir/a.jsonl --bench-json $$dir/bench_a.json > /dev/null; \
	$$run --trace $$dir/b.jsonl --bench-json $$dir/bench_b.json > /dev/null; \
	cmp $$dir/a.jsonl $$dir/b.jsonl; \
	cmp $$dir/bench_a.json $$dir/bench_b.json; \
	$(PY) -m repro.cli report --trace $$dir/a.jsonl --check-schema \
		--chrome $$dir/flame.json > /dev/null; \
	$(PY) -m repro.cli compare benchmarks/results/BENCH_ysb.json \
		$$dir/bench_a.json

check: lint check-plan check-report check-telemetry test
