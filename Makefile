# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

PY ?= python
JOBS ?= 4
export PYTHONPATH := src

.PHONY: test lint statecheck mypy check-plan check-report check-telemetry \
	check perf perf-profile bench bench-parallel

test:
	$(PY) -m pytest -x -q

lint:
	$(PY) -m repro.analysis.lint src/repro --ci

# State-contract gate: snapshot coverage, capture/restore symmetry,
# schema-fingerprint freshness, canonical serialization, worker purity.
statecheck:
	$(PY) -m repro.analysis.statecheck src/repro

mypy:
	mypy src/repro/analysis src/repro/obs src/repro/resilience

check-plan:
	@for wl in ysb lrb nyt; do \
		$(PY) -m repro.cli check-plan --workload $$wl --queries 4 || exit 1; \
	done

check-report:
	@for wl in ysb lrb nyt; do \
		$(PY) -m repro.cli report --workload $$wl --scheduler Klink \
			--queries 4 --duration 15 --format json --check-schema \
			> /dev/null || exit 1; \
	done
	$(PY) -m repro.cli report --workload ysb --scheduler Default \
		--queries 4 --duration 15 --format json --check-schema > /dev/null

# Telemetry gate: two seeded runs must be byte-identical (trace and
# BENCH json), the trace must pass schema + Chrome-trace validation,
# and the fresh snapshot must not regress against the checked-in
# baseline (benchmarks/results/BENCH_ysb.json).
check-telemetry:
	@set -e; dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	run="$(PY) -m repro.cli run --workload ysb --scheduler Klink \
		--queries 4 --duration 30 --cores 8 --seed 1 --no-cache"; \
	$$run --trace $$dir/a.jsonl --bench-json $$dir/bench_a.json > /dev/null; \
	$$run --trace $$dir/b.jsonl --bench-json $$dir/bench_b.json > /dev/null; \
	cmp $$dir/a.jsonl $$dir/b.jsonl; \
	cmp $$dir/bench_a.json $$dir/bench_b.json; \
	$(PY) -m repro.cli report --trace $$dir/a.jsonl --check-schema \
		--chrome $$dir/flame.json > /dev/null; \
	$(PY) -m repro.cli compare benchmarks/results/BENCH_ysb.json \
		$$dir/bench_a.json

check: lint statecheck check-plan check-report check-telemetry test

# Wall-clock benchmark of the simulator itself; refreshes the checked-in
# baseline. Timings are host-dependent — regenerate it on the reference
# runner, not a laptop.
perf:
	$(PY) -m repro.cli perf --repeats 3 \
		--out benchmarks/results/BENCH_perf.json
	$(PY) -m repro.cli compare --check benchmarks/results/BENCH_perf.json

# Per-phase breakdown of the cycle kernel (generate / deliver /
# schedule / execute / drain) on the perf grid; diagnostic only, no
# baseline refresh.
perf-profile:
	$(PY) -m repro.cli perf --repeats 1 --profile

# Figure suite, serial vs. fanned out over $(JOBS) worker processes.
# Both share the persistent cache in .bench_cache/ (REPRO_BENCH_NO_CACHE=1
# disables it), so a warm re-run replays results without simulating.
bench:
	$(PY) -m pytest benchmarks -q --benchmark-only

bench-parallel:
	REPRO_BENCH_JOBS=$(JOBS) $(PY) -m pytest benchmarks -q --benchmark-only
