# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

PY ?= python
export PYTHONPATH := src

.PHONY: test lint mypy check-plan check-report check

test:
	$(PY) -m pytest -x -q

lint:
	$(PY) -m repro.analysis.lint src/repro --ci

mypy:
	mypy src/repro/analysis src/repro/obs

check-plan:
	@for wl in ysb lrb nyt; do \
		$(PY) -m repro.cli check-plan --workload $$wl --queries 4 || exit 1; \
	done

check-report:
	@for wl in ysb lrb nyt; do \
		$(PY) -m repro.cli report --workload $$wl --scheduler Klink \
			--queries 4 --duration 15 --format json --check-schema \
			> /dev/null || exit 1; \
	done
	$(PY) -m repro.cli report --workload ysb --scheduler Default \
		--queries 4 --duration 15 --format json --check-schema > /dev/null

check: lint check-plan check-report test
