# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

PY ?= python
export PYTHONPATH := src

.PHONY: test lint mypy check-plan check

test:
	$(PY) -m pytest -x -q

lint:
	$(PY) -m repro.analysis.lint src/repro --ci

mypy:
	mypy src/repro/analysis

check-plan:
	@for wl in ysb lrb nyt; do \
		$(PY) -m repro.cli check-plan --workload $$wl --queries 4 || exit 1; \
	done

check: lint check-plan test
