"""Benchmark-session fixtures.

The figure suite shares one *persistent* experiment cache across
processes (``.bench_cache/`` by default, ``$REPRO_BENCH_CACHE`` to
relocate it): the first invocation simulates and stores every grid
point, a re-run replays them and regenerates every figure without a
single new simulation. Set ``REPRO_BENCH_NO_CACHE=1`` to opt out (every
point re-simulates, nothing is written).

Parallelism is orthogonal: ``REPRO_BENCH_JOBS=N`` makes each figure
module's prewarm fan its cache misses over N worker processes (see
``figutil.prewarm``); the results are byte-identical either way.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import configure_cache


@pytest.fixture(scope="session", autouse=True)
def _persistent_bench_cache():
    enabled = not os.environ.get("REPRO_BENCH_NO_CACHE")
    configure_cache(enabled=enabled)
    yield
    configure_cache(enabled=False)
