"""Shared helpers for the per-figure benchmark modules.

Every bench regenerates one figure of the paper's evaluation: it runs the
calibrated experiment grid, prints the series in a paper-comparable table,
and appends the table to ``benchmarks/results/<figure>.txt`` so
EXPERIMENTS.md can quote the measured numbers.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_jobs() -> int:
    """Worker processes for prewarming figure grids (``REPRO_BENCH_JOBS``).

    Defaults to 1 (serial). Results are byte-identical whatever the
    value — parallelism only changes wall time.
    """
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    except ValueError:
        return 1


def prewarm(configs: Sequence) -> None:
    """Populate the experiment cache for a figure module's whole grid.

    One ``run_many`` call simulates every cache miss up front — fanned
    over ``REPRO_BENCH_JOBS`` worker processes when set — so the
    ``run_cached`` calls inside the figure bodies are pure cache hits.
    """
    from repro.bench.runner import run_many

    run_many(list(configs), jobs=bench_jobs())


def report(figure: str, title: str, lines: Iterable[str]) -> str:
    """Print a figure report and persist it under benchmarks/results/."""
    body = "\n".join([f"== {figure}: {title} ==", *lines, ""])
    print("\n" + body)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{figure}.txt")
    with open(path, "w") as fh:
        fh.write(body + "\n")
    return body


def series_line(label: str, xs: List, ys: List[float], unit: str = "") -> str:
    pts = "  ".join(f"{x}:{y:8.2f}" for x, y in zip(xs, ys))
    return f"{label:16s} {pts} {unit}"


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark accounting."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
