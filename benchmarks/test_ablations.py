"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these probe the sensitivity of Klink's
parameters around the values the paper selects empirically (epoch history
h = 400, scheduling cycle r = 120 ms, the memory threshold b) and the
value of the per-input-stream slack for joins (Sec. 3.3).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.core.klink import KlinkScheduler
from repro.core.scheduler import SchedulerContext
from repro.spe.engine import Engine
from repro.spe.memory import GIB, MemoryConfig
from repro.workloads import WorkloadParams, build_queries

from figutil import once, report

BASE = ExperimentConfig(workload="ysb", scheduler="Klink", n_queries=60,
                        duration_ms=90_000.0)


@pytest.mark.benchmark(group="ablations")
def test_ablation_scheduling_cycle(benchmark):
    """Latency vs the scheduling cycle r (paper picks 120 ms).

    Small r -> more scheduler invocations (overhead); large r -> stale
    priorities and missed deadlines for idle queries.
    """

    def collect():
        out = {}
        for r in (30.0, 120.0, 480.0):
            res = run_experiment(replace(BASE, cycle_ms=r))
            out[r] = res.metrics.mean_latency_ms / 1000
        return out

    latency = once(benchmark, collect)
    report(
        "ablation_cycle",
        "Klink mean latency (s) vs scheduling cycle r",
        [f"r={r:5.0f}ms  latency={v:6.2f}s" for r, v in latency.items()],
    )
    # A very coarse cycle costs latency relative to the paper's 120 ms.
    assert latency[480.0] >= latency[120.0] * 0.9


@pytest.mark.benchmark(group="ablations")
def test_ablation_memory_threshold(benchmark):
    """Latency/throughput vs the MM activation bound b."""

    def run_with_threshold(b):
        queries = build_queries("ysb", 60, WorkloadParams(seed=1))
        engine = Engine(
            queries,
            KlinkScheduler(memory_threshold=b),
            memory=MemoryConfig(capacity_bytes=1.0 * GIB),
        )
        m = engine.run(90_000.0)
        return m.mean_latency_ms / 1000, m.throughput_eps / 1e5

    def collect():
        return {b: run_with_threshold(b) for b in (0.1, 0.2, 0.5, 0.9)}

    rows = once(benchmark, collect)
    report(
        "ablation_threshold",
        "Klink (latency s, throughput x1e5 ev/s) vs memory threshold b",
        [f"b={b:4.2f}  latency={lat:6.2f}s  thr={thr:6.2f}" for b, (lat, thr) in rows.items()],
    )
    # A threshold too high to ever trigger MM behaves like Klink w/o MM
    # and loses latency under memory stress.
    assert rows[0.2][0] <= rows[0.9][0]


@pytest.mark.benchmark(group="ablations")
def test_ablation_marker_frequency(benchmark):
    """Sec. 6.1.2: latency markers are emitted every 200 ms — the lowest
    frequency that tracked the actual event latency closely without
    affecting performance. Sweep the marker period and report how well
    the marker-derived latency profile matches the SWM-derived one."""
    import numpy as np

    def run(marker_period_ms):
        queries = build_queries("ysb", 40, WorkloadParams(seed=1))
        for q in queries:
            for b in q.bindings:
                b.spec.marker_period_ms = marker_period_ms
                b.next_marker_time = marker_period_ms
        engine = Engine(
            queries, KlinkScheduler(),
            memory=MemoryConfig(capacity_bytes=1.0 * GIB),
        )
        m = engine.run(90_000.0)
        markers = np.asarray(m.marker_latencies)
        swms = np.asarray(m.swm_latencies)
        if len(markers) == 0 or len(swms) == 0:
            return 0.0, 0
        similarity = 1.0 - abs(
            float(np.median(markers)) - float(np.median(swms))
        ) / float(np.median(swms))
        return similarity, len(markers)

    def collect():
        return {p: run(p) for p in (50.0, 200.0, 1000.0, 5000.0)}

    rows = once(benchmark, collect)
    report(
        "ablation_markers",
        "marker period vs latency-profile similarity (YSB @40 queries)",
        [f"period={p:6.0f}ms  similarity={sim:6.3f}  markers={n}"
         for p, (sim, n) in rows.items()],
    )
    # Markers exist at every frequency, and the marker-derived profile is
    # stable across frequencies (the paper's criterion for picking the
    # cheapest adequate rate): 200 ms gives the same similarity as 50 ms
    # at a quarter of the probe volume. (Markers track event propagation;
    # SWM latency additionally includes the watermark lateness allowance,
    # so similarity saturates below 1.0 by construction.)
    assert all(n > 0 for _, n in rows.values())
    sims = [sim for sim, _ in rows.values()]
    assert max(sims) - min(sims) < 0.1
    assert rows[200.0][1] < rows[50.0][1] / 3


@pytest.mark.benchmark(group="ablations")
def test_ablation_iop_vs_oop(benchmark):
    """Sec. 2.1: in-order processing (IOP) vs out-of-order (OOP).

    Inserting a reorder buffer after each source enforces event-time
    order before processing; the paper notes IOP "typically imposes
    large performance overheads". Measured on YSB at moderate load.
    """
    from repro.spe.reorder import ReorderBuffer
    from repro.spe.query import Query, SourceBinding

    def build_ysb_iop(n):
        from repro.workloads import ysb

        queries = []
        params = WorkloadParams(seed=1)
        import numpy as np

        rng = np.random.default_rng(1)
        for i in range(n):
            deployed = float(rng.uniform(0, 20_000.0))
            q = ysb.build_query(f"iop-{i}", params, deployed_at=deployed, seed=i)
            # Rebuild with a reorder buffer at the head.
            rb = ReorderBuffer(f"iop-{i}.reorder", cost_per_event_ms=0.004)
            first = q.operators[0]
            rb.connect(first)
            binding = SourceBinding(q.bindings[0].spec, rb, seed=i + 17)
            queries.append(
                Query(
                    q.query_id,
                    [binding],
                    [rb] + q.operators,
                    q.sink,
                    deployed_at=deployed,
                )
            )
        return queries

    def run(iop: bool):
        if iop:
            queries = build_ysb_iop(40)
        else:
            queries = build_queries("ysb", 40, WorkloadParams(seed=1))
        engine = Engine(
            queries, KlinkScheduler(),
            memory=MemoryConfig(capacity_bytes=1.0 * GIB),
        )
        m = engine.run(90_000.0)
        return m.mean_latency_ms / 1000, m.mean_memory_bytes / GIB

    def collect():
        return {"OOP (watermarks)": run(False), "IOP (reorder buffers)": run(True)}

    rows = once(benchmark, collect)
    report(
        "ablation_iop",
        "YSB @40 queries: (latency s, memory GB) under OOP vs IOP",
        [f"{name:24s} latency={lat:6.2f}s mem={mem:6.3f}GB"
         for name, (lat, mem) in rows.items()],
    )
    # IOP buffers events until certified -> strictly more latency+memory.
    assert rows["IOP (reorder buffers)"][0] >= rows["OOP (watermarks)"][0]
    assert rows["IOP (reorder buffers)"][1] >= rows["OOP (watermarks)"][1]


@pytest.mark.benchmark(group="ablations")
def test_ablation_operator_chaining(benchmark):
    """Flink-style chaining (Sec. 5's "chain of operators"): fusing NYT's
    stateless prefix into one task reduces queueing stages."""
    from repro.spe.chaining import fuse_stateless, fusible_runs
    from repro.spe.query import Query, SourceBinding

    def build_nyt_fused(n):
        from repro.workloads import nyt
        import numpy as np

        rng = np.random.default_rng(1)
        params = WorkloadParams(seed=1)
        queries = []
        for i in range(n):
            deployed = float(rng.uniform(0, 20_000.0))
            q = nyt.build_query(f"fused-{i}", params, deployed_at=deployed, seed=i)
            runs = fusible_runs(q.operators)
            assert runs, "NYT should expose a fusible stateless chain"
            run_ops = runs[0]
            fused = fuse_stateless(run_ops, name=f"fused-{i}.chain")
            tail = q.operators[len(run_ops):]
            fused.connect(tail[0])
            binding = SourceBinding(q.bindings[0].spec, fused, seed=i + 17)
            queries.append(
                Query(q.query_id, [binding], [fused] + tail, q.sink,
                      deployed_at=deployed)
            )
        return queries

    def run(fused: bool):
        if fused:
            queries = build_nyt_fused(40)
        else:
            queries = build_queries("nyt", 40, WorkloadParams(seed=1))
        engine = Engine(
            queries, KlinkScheduler(),
            memory=MemoryConfig(capacity_bytes=1.0 * GIB),
        )
        m = engine.run(90_000.0)
        return m.mean_latency_ms / 1000

    def collect():
        return {"unfused (6 tasks)": run(False), "fused chain (2 tasks)": run(True)}

    rows = once(benchmark, collect)
    report(
        "ablation_chaining",
        "NYT @40 queries: mean latency (s) with/without operator chaining",
        [f"{name:24s} latency={v:6.2f}s" for name, v in rows.items()],
    )
    # Fusion must not hurt; it usually removes pipeline stages' queueing.
    assert rows["fused chain (2 tasks)"] <= rows["unfused (6 tasks)"] * 1.1


@pytest.mark.benchmark(group="ablations")
def test_ablation_join_per_stream_slack(benchmark):
    """Sec. 3.3: per-input-stream slack vs naive single-stream slack.

    The naive variant estimates a join query's slack from its first input
    stream only; the per-stream minimum accounts for the slowest stream's
    watermark progress. Measured on LRB, whose join reads three streams
    with independent delay processes.
    """

    class FirstStreamOnlyKlink(KlinkScheduler):
        name = "Klink (first-stream slack)"

        def query_slack(self, query, ctx: SchedulerContext):
            cost = query.pending_cost_ms()
            urgent = self._pending_swm_slack(query, ctx.now)
            if urgent is not None:
                return urgent, 0
            from repro.core.slack import expected_slack, interval_steps

            binding = query.bindings[0]
            estimate = self.estimator.estimate(binding, phase=query.deployed_at)
            if estimate is None:
                return float("inf"), 0
            return (
                expected_slack(estimate, ctx.now, cost, ctx.cycle_ms),
                interval_steps(estimate, ctx.now, ctx.cycle_ms),
            )

    def run_lrb(scheduler):
        queries = build_queries("lrb", 60, WorkloadParams(seed=1))
        engine = Engine(
            queries, scheduler, memory=MemoryConfig(capacity_bytes=2.0 * GIB)
        )
        m = engine.run(90_000.0)
        return m.mean_latency_ms / 1000

    def collect():
        return {
            "per-stream min (Sec. 3.3)": run_lrb(KlinkScheduler()),
            "first-stream only": run_lrb(FirstStreamOnlyKlink()),
        }

    rows = once(benchmark, collect)
    report(
        "ablation_join_slack",
        "LRB @60 queries: mean latency (s) by join slack strategy",
        [f"{name:28s} latency={v:6.2f}s" for name, v in rows.items()],
    )
    # Both run; the per-stream variant must not be worse than naive by
    # more than noise (and is typically better).
    assert rows["per-stream min (Sec. 3.3)"] <= rows["first-stream only"] * 1.15
