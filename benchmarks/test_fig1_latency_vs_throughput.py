"""Figure 1: average output latency vs. SPE throughput (YSB and LRB).

Paper shape: at a given throughput level, Flink's Default scheduler incurs
~50% extra output latency over Klink on both workloads; latency is small
under light load and climbs steeply as the load approaches capacity.

The sweep varies the offered load via ``rate_scale`` at a fixed fleet of
60 queries and reports (achieved throughput, mean latency) pairs.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.runner import ExperimentConfig, run_cached

from figutil import once, prewarm, report

RATE_SCALES = [0.125, 0.25, 0.5, 0.75, 1.0]
BASE = ExperimentConfig(n_queries=60, duration_ms=120_000.0)
GRID = [
    replace(BASE, workload=workload, scheduler=scheduler, rate_scale=rate)
    for workload in ("ysb", "lrb")
    for scheduler in ("Default", "Klink")
    for rate in RATE_SCALES
]


@pytest.fixture(scope="module", autouse=True)
def _warm_grid():
    prewarm(GRID)


def _sweep():
    lines = []
    summary = {}
    for workload in ("ysb", "lrb"):
        for scheduler in ("Default", "Klink"):
            points = []
            for rate in RATE_SCALES:
                cfg = replace(
                    BASE, workload=workload, scheduler=scheduler, rate_scale=rate
                )
                res = run_cached(cfg)
                points.append(
                    (
                        res.metrics.throughput_eps / 1e5,
                        res.metrics.mean_latency_ms / 1000.0,
                    )
                )
            summary[(workload, scheduler)] = points
            lines.append(
                f"{workload.upper()} ({scheduler}): "
                + "  ".join(f"[{thr:5.2f}x1e5ev/s -> {lat:5.2f}s]" for thr, lat in points)
            )
    return lines, summary


@pytest.mark.benchmark(group="fig1")
def test_fig1_latency_vs_throughput(benchmark):
    lines, summary = once(benchmark, _sweep)
    report("fig1", "latency vs throughput (Default vs Klink, YSB+LRB)", lines)
    for workload in ("ysb", "lrb"):
        default_pts = summary[(workload, "Default")]
        klink_pts = summary[(workload, "Klink")]
        # At the highest common load, Default must incur substantially
        # more latency than Klink (paper: ~50% extra).
        assert default_pts[-1][1] > klink_pts[-1][1] * 1.2, (
            f"{workload}: Default {default_pts[-1]} vs Klink {klink_pts[-1]}"
        )
        # Light load: latencies are small and comparable (within 40%).
        assert default_pts[0][1] == pytest.approx(klink_pts[0][1], rel=0.4)
