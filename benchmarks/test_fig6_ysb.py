"""Figures 6a-6d: the YSB scheduler comparison.

* 6a — mean output latency vs. number of deployed queries (1-80), all
  seven policies. Paper shape: flat and equal under light load, steep
  climb past ~40 queries for the non-Klink policies, Klink capped far
  below them (~50% reduction); FCFS worst at 80 queries.
* 6b — latency CDF (40th-99th percentile) at 60 queries. Paper shape:
  heavy tails for the baselines; Klink lowest at every percentile; Klink
  with memory management beats Klink w/o MM at the tail.
* 6c — slowdown (latency / ideal single-event pipeline cost). Mirrors 6a.
* 6d — throughput vs. number of queries. Paper shape: baselines plateau
  past ~40 queries; Klink scales ~25% higher thanks to its memory
  management.

All four figures are projections of one (policy x query-count) sweep,
shared through the experiment cache.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.runner import ExperimentConfig, SCHEDULER_NAMES, run_cached

from figutil import once, prewarm, report, series_line

N_QUERIES = [1, 20, 40, 60, 80]
BASE = ExperimentConfig(workload="ysb", duration_ms=120_000.0)
CDF_PCTS = [40, 50, 60, 70, 80, 90, 95, 99]
GRID = [
    replace(BASE, scheduler=name, n_queries=n)
    for name in SCHEDULER_NAMES
    for n in N_QUERIES
]


@pytest.fixture(scope="module", autouse=True)
def _warm_grid():
    prewarm(GRID)


def _result(scheduler: str, n: int):
    return run_cached(replace(BASE, scheduler=scheduler, n_queries=n))


@pytest.mark.benchmark(group="fig6")
def test_fig6a_mean_latency(benchmark):
    def sweep():
        return {
            name: [_result(name, n).metrics.mean_latency_ms / 1000 for n in N_QUERIES]
            for name in SCHEDULER_NAMES
        }

    series = once(benchmark, sweep)
    report(
        "fig6a",
        "YSB mean latency (s) vs number of queries",
        [series_line(name, N_QUERIES, ys) for name, ys in series.items()],
    )
    at80 = {name: ys[-1] for name, ys in series.items()}
    # Klink delivers a large reduction over every baseline at 80 queries.
    for name in ("Default", "FCFS", "RR", "SBox"):
        assert at80["Klink"] < at80[name] * 0.7, (name, at80)
    # FCFS is the worst performer at 80 queries (paper: 15.5 s).
    assert at80["FCFS"] == max(at80.values())
    # Light load: all policies are indistinguishable.
    at1 = {name: ys[0] for name, ys in series.items()}
    assert max(at1.values()) < min(at1.values()) * 1.3


@pytest.mark.benchmark(group="fig6")
def test_fig6b_latency_cdf(benchmark):
    def collect():
        return {
            name: dict(_result(name, 60).metrics.latency_cdf(CDF_PCTS))
            for name in SCHEDULER_NAMES
        }

    cdfs = once(benchmark, collect)
    report(
        "fig6b",
        "YSB latency CDF at 60 queries (s)",
        [
            series_line(name, CDF_PCTS, [v / 1000 for v in cdf.values()])
            for name, cdf in cdfs.items()
        ],
    )
    # Klink achieves better latency than Default across all percentiles
    # from the median up (paper: "across all percentiles").
    for pct in (50, 90, 99):
        assert cdfs["Klink"][pct] < cdfs["Default"][pct], pct
    # Memory management pays off at the tail (paper: ~20% tail reduction;
    # the gap is larger in the simulator).
    assert cdfs["Klink"][99] < cdfs["Klink (w/o MM)"][99]


@pytest.mark.benchmark(group="fig6")
def test_fig6c_slowdown(benchmark):
    def sweep():
        return {
            name: [_result(name, n).metrics.mean_slowdown for n in N_QUERIES]
            for name in SCHEDULER_NAMES
        }

    series = once(benchmark, sweep)
    report(
        "fig6c",
        "YSB mean slowdown vs number of queries",
        [series_line(name, N_QUERIES, ys) for name, ys in series.items()],
    )
    # Slowdown mirrors the latency trend: Klink lowest at high load.
    assert series["Klink"][-1] < series["Default"][-1] * 0.7


@pytest.mark.benchmark(group="fig6")
def test_fig6d_throughput(benchmark):
    def sweep():
        return {
            name: [
                _result(name, n).metrics.throughput_eps / 1e5 for n in N_QUERIES
            ]
            for name in SCHEDULER_NAMES
        }

    series = once(benchmark, sweep)
    report(
        "fig6d",
        "YSB throughput (x1e5 events/s) vs number of queries",
        [series_line(name, N_QUERIES, ys) for name, ys in series.items()],
    )
    # Baselines stop scaling under memory pressure; Klink's memory
    # management buys ~25-35% extra throughput at 80 queries.
    assert series["Klink"][-1] > series["Default"][-1] * 1.15
    # Klink w/o MM achieves no such gain (paper: 2.65M vs 2.5M baseline).
    assert series["Klink (w/o MM)"][-1] < series["Klink"][-1]
