"""Figure 6e: distributed deployment — latency vs. number of nodes.

80 YSB queries are deployed over 1-8 nodes (24 cores each); pipelines are
split into two segments across consecutive nodes with a Flink-like 100 ms
network-hop latency (the default network buffer timeout), and each node
runs its own decentralized scheduler instance with Klink's delay/cost
information forwarding.

Paper shape: "a continuous decrease for all algorithms" with Klink
maintaining ~40% lower latency than Default and HR. SBox cannot operate
distributed (it needs complete pipeline knowledge) and is omitted, as in
the paper.
"""

from __future__ import annotations

import pytest

from repro.core.baselines import DefaultScheduler, HighestRateScheduler
from repro.distributed import DistributedEngine, PhysicalPlan
from repro.spe.memory import GIB, MemoryConfig
from repro.workloads import WorkloadParams, build_queries

from figutil import once, report, series_line

NODES = [1, 2, 4, 8]
N_QUERIES = 80
DURATION_MS = 120_000.0
RPC_LATENCY_MS = 100.0  # Flink's default network buffer timeout


def _run(policy: str, nodes: int) -> float:
    queries = build_queries(
        "ysb", N_QUERIES, WorkloadParams(seed=1, rate_scale=1.25)
    )
    plan = PhysicalPlan.split(queries, nodes, segments=2)
    memory = MemoryConfig(capacity_bytes=1.0 * GIB)
    if policy == "Klink":
        engine = DistributedEngine.with_klink(
            queries, plan, memory=memory, rpc_latency_ms=RPC_LATENCY_MS
        )
    else:
        factory = DefaultScheduler if policy == "Default" else HighestRateScheduler
        engine = DistributedEngine.with_policy(
            queries, plan, factory, memory=memory, rpc_latency_ms=RPC_LATENCY_MS
        )
    metrics = engine.run(DURATION_MS)
    return metrics.mean_latency_ms / 1000.0


@pytest.mark.benchmark(group="fig6e")
def test_fig6e_distributed_latency(benchmark):
    def sweep():
        return {
            policy: [_run(policy, nodes) for nodes in NODES]
            for policy in ("Default", "HR", "Klink")
        }

    series = once(benchmark, sweep)
    report(
        "fig6e",
        "distributed YSB (80 queries): mean latency (s) vs nodes",
        [series_line(name, NODES, ys) for name, ys in series.items()],
    )
    for name, ys in series.items():
        # Latency decreases continuously with added nodes.
        assert ys[0] >= ys[-1], (name, ys)
    # Klink stays at or below the alternatives at every node count, with a
    # clear advantage while the cluster is still contended.
    for i, _ in enumerate(NODES):
        assert series["Klink"][i] <= series["Default"][i] * 1.05, i
    assert series["Klink"][0] < series["Default"][0] * 0.7
