"""Figures 7a-7d: LRB and NYT latency and tail behaviour.

* 7a/7b — mean latency vs. number of queries for LRB and NYT. Paper
  shape: the non-Klink policies cluster (12-15 s at 80 queries), Klink
  delivers >= 45% lower latency, the curves worsen past 40 queries.
* 7c/7d — latency CDF at 60 queries. Paper shape: Default's tail grows
  ~50% from the 90th to the 99th percentile; Klink achieves significantly
  better latency across all percentiles (60%/50% tail reductions on
  LRB/NYT respectively).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.runner import ExperimentConfig, run_cached

from figutil import once, prewarm, report, series_line

N_QUERIES = [1, 20, 40, 60, 80]
SCHEDULERS = ["Default", "FCFS", "RR", "HR", "SBox", "Klink"]
CDF_PCTS = [40, 50, 60, 70, 80, 90, 95, 99]
GRID = [
    ExperimentConfig(
        workload=workload, scheduler=scheduler, n_queries=n,
        duration_ms=120_000.0,
    )
    for workload in ("lrb", "nyt")
    for scheduler in SCHEDULERS
    for n in N_QUERIES
]


@pytest.fixture(scope="module", autouse=True)
def _warm_grid():
    prewarm(GRID)


def _result(workload: str, scheduler: str, n: int):
    cfg = ExperimentConfig(
        workload=workload, scheduler=scheduler, n_queries=n,
        duration_ms=120_000.0,
    )
    return run_cached(cfg)


def _mean_latency_sweep(workload: str):
    return {
        name: [
            _result(workload, name, n).metrics.mean_latency_ms / 1000
            for n in N_QUERIES
        ]
        for name in SCHEDULERS
    }


def _check_mean_sweep(series, workload: str):
    at80 = {name: ys[-1] for name, ys in series.items()}
    # Klink delivers a large reduction over the baseline cluster.
    for name in ("Default", "FCFS", "RR", "SBox"):
        assert at80["Klink"] < at80[name] * 0.7, (workload, name, at80)
    # Light load: all policies indistinguishable.
    at1 = {name: ys[0] for name, ys in series.items()}
    assert max(at1.values()) < min(at1.values()) * 1.3, (workload, at1)
    # Latency worsens as load grows for the baselines.
    assert series["Default"][-1] > series["Default"][0]


@pytest.mark.benchmark(group="fig7")
def test_fig7a_lrb_mean_latency(benchmark):
    series = once(benchmark, lambda: _mean_latency_sweep("lrb"))
    report(
        "fig7a",
        "LRB mean latency (s) vs number of queries",
        [series_line(name, N_QUERIES, ys) for name, ys in series.items()],
    )
    _check_mean_sweep(series, "lrb")


@pytest.mark.benchmark(group="fig7")
def test_fig7b_nyt_mean_latency(benchmark):
    series = once(benchmark, lambda: _mean_latency_sweep("nyt"))
    report(
        "fig7b",
        "NYT mean latency (s) vs number of queries",
        [series_line(name, N_QUERIES, ys) for name, ys in series.items()],
    )
    _check_mean_sweep(series, "nyt")


def _cdf(workload: str):
    return {
        name: dict(_result(workload, name, 60).metrics.latency_cdf(CDF_PCTS))
        for name in SCHEDULERS
    }


def _check_cdf(cdfs, workload: str):
    # Klink beats Default from the median to the 99th percentile.
    for pct in (50, 90, 99):
        assert cdfs["Klink"][pct] < cdfs["Default"][pct], (workload, pct)
    # Default's tail deteriorates sharply between p90 and p99 (paper: +45-53%).
    assert cdfs["Default"][99] > cdfs["Default"][90] * 1.2, workload


@pytest.mark.benchmark(group="fig7")
def test_fig7c_lrb_cdf(benchmark):
    cdfs = once(benchmark, lambda: _cdf("lrb"))
    report(
        "fig7c",
        "LRB latency CDF at 60 queries (s)",
        [
            series_line(name, CDF_PCTS, [v / 1000 for v in cdf.values()])
            for name, cdf in cdfs.items()
        ],
    )
    _check_cdf(cdfs, "lrb")


@pytest.mark.benchmark(group="fig7")
def test_fig7d_nyt_cdf(benchmark):
    cdfs = once(benchmark, lambda: _cdf("nyt"))
    report(
        "fig7d",
        "NYT latency CDF at 60 queries (s)",
        [
            series_line(name, CDF_PCTS, [v / 1000 for v in cdf.values()])
            for name, cdf in cdfs.items()
        ],
    )
    _check_cdf(cdfs, "nyt")
