"""Figure 8: memory and CPU utilization over time (Default vs Klink).

Paper shape: Default runs continually close to the memory ceiling while
Klink's memory management periodically drains usage (a sawtooth between
the MM threshold and its release target), keeping mean memory far lower;
Default's CPU utilization is *lower* than Klink's (memory pressure makes
the SPE unable to process events efficiently) and Klink sustains high
CPU throughout.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.bench.runner import ExperimentConfig, run_cached
from repro.spe.memory import GIB

from figutil import once, prewarm, report

BASE = ExperimentConfig(workload="ysb", n_queries=60, duration_ms=120_000.0)
#: timeline bucket for the printed series (the paper samples every 200 ms
#: and plots an aggregate; we bucket per 10 s of simulated time)
BUCKET_MS = 10_000.0
GRID = [replace(BASE, scheduler=name) for name in ("Default", "Klink")]


@pytest.fixture(scope="module", autouse=True)
def _warm_grid():
    prewarm(GRID)


def _timeline(scheduler: str):
    res = run_cached(replace(BASE, scheduler=scheduler))
    samples = res.metrics.samples
    buckets = {}
    for s in samples:
        key = int(s.time // BUCKET_MS)
        buckets.setdefault(key, []).append(s)
    times = sorted(buckets)
    mem = [float(np.mean([s.memory_bytes for s in buckets[t]])) / GIB for t in times]
    cpu = [100 * float(np.mean([s.cpu_fraction for s in buckets[t]])) for t in times]
    return [t * BUCKET_MS / 1000 for t in times], mem, cpu


@pytest.mark.benchmark(group="fig8")
def test_fig8_memory_and_cpu_over_time(benchmark):
    def collect():
        return {name: _timeline(name) for name in ("Default", "Klink")}

    series = once(benchmark, collect)
    lines = []
    for name, (times, mem, cpu) in series.items():
        lines.append(
            f"{name} (MEM GB): "
            + "  ".join(f"{t:.0f}s:{m:5.2f}" for t, m in zip(times, mem))
        )
        lines.append(
            f"{name} (CPU %):  "
            + "  ".join(f"{t:.0f}s:{c:5.1f}" for t, c in zip(times, cpu))
        )
    report("fig8", "YSB @60 queries: memory & CPU utilization over time", lines)

    _, mem_default, cpu_default = series["Default"]
    _, mem_klink, cpu_klink = series["Klink"]
    steady = slice(len(mem_default) // 3, None)  # skip the deployment ramp
    # Default runs close to the ceiling; Klink maintains much lower memory.
    assert np.mean(mem_klink[steady]) < 0.5 * np.mean(mem_default[steady])
    # Klink sustains higher useful CPU than Default under memory stress.
    assert np.mean(cpu_klink[steady]) > np.mean(cpu_default[steady])
