"""Figures 9a/9b: memory and CPU utilization vs. offered throughput.

Paper shape (YSB, 60 queries, load swept):

* 9a — Klink consumes 25-60% less memory than Default across the
  throughput range, and Default's 90th-percentile memory hits the ceiling
  at roughly half the load at which Klink does.
* 9b — Klink's average and tail CPU utilization are consistently higher
  than Default's, and keep scaling with the load while Default's stall
  (the memory-pressure penalty).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.runner import ExperimentConfig, run_cached
from repro.spe.memory import GIB

from figutil import once, prewarm, report, series_line

RATE_SCALES = [0.125, 0.25, 0.5, 0.75, 1.0, 1.25]
BASE = ExperimentConfig(workload="ysb", n_queries=60, duration_ms=120_000.0)
GRID = [
    replace(BASE, scheduler=scheduler, rate_scale=rate)
    for scheduler in ("Default", "Klink")
    for rate in RATE_SCALES
]


@pytest.fixture(scope="module", autouse=True)
def _warm_grid():
    prewarm(GRID)


def _points(scheduler: str):
    rows = []
    for rate in RATE_SCALES:
        res = run_cached(replace(BASE, scheduler=scheduler, rate_scale=rate))
        m = res.metrics
        rows.append(
            {
                "throughput": m.throughput_eps / 1e5,
                "mem_avg": m.mean_memory_bytes / GIB,
                "mem_p90": m.memory_percentile(90) / GIB,
                "cpu_avg": 100 * m.mean_cpu_fraction,
                "cpu_p90": 100 * m.cpu_percentile(90),
            }
        )
    return rows


@pytest.mark.benchmark(group="fig9ab")
def test_fig9a_memory_vs_throughput(benchmark):
    def collect():
        return {name: _points(name) for name in ("Default", "Klink")}

    series = once(benchmark, collect)
    lines = []
    for name, rows in series.items():
        xs = [f"{r['throughput']:.1f}" for r in rows]
        lines.append(series_line(f"{name} AVG", xs, [r["mem_avg"] for r in rows], "GB"))
        lines.append(series_line(f"{name} p90", xs, [r["mem_p90"] for r in rows], "GB"))
    report("fig9a", "YSB @60 queries: memory (GB) vs throughput (x1e5 ev/s)", lines)
    # At the highest load Klink uses far less memory than Default
    # (paper: 25-60% less across the range).
    top_default = series["Default"][-1]
    top_klink = series["Klink"][-1]
    assert top_klink["mem_avg"] < 0.6 * top_default["mem_avg"]
    assert top_klink["mem_p90"] < top_default["mem_p90"]


@pytest.mark.benchmark(group="fig9ab")
def test_fig9b_cpu_vs_throughput(benchmark):
    def collect():
        return {name: _points(name) for name in ("Default", "Klink")}

    series = once(benchmark, collect)
    lines = []
    for name, rows in series.items():
        xs = [f"{r['throughput']:.1f}" for r in rows]
        lines.append(series_line(f"{name} AVG", xs, [r["cpu_avg"] for r in rows], "%"))
        lines.append(series_line(f"{name} p90", xs, [r["cpu_p90"] for r in rows], "%"))
    report("fig9b", "YSB @60 queries: CPU (%) vs throughput (x1e5 ev/s)", lines)
    # Under stress Klink sustains higher CPU than Default, and its
    # utilization scales with the load.
    assert series["Klink"][-1]["cpu_avg"] > series["Default"][-1]["cpu_avg"]
    klink_cpu = [r["cpu_avg"] for r in series["Klink"]]
    assert klink_cpu[-1] > klink_cpu[0]
