"""Figure 9c: SWM ingestion estimation accuracy under Uniform/Zipf delays.

Paper shape: Klink-95 is marginally more accurate than Klink-90, and both
are substantially more accurate than the gradient-descent linear
regression (LR) baseline (paper: 98%/95% vs 80% under Uniform; 95%/85% vs
62% under Zipf). Klink stays robust when the Zipf distribution injects
higher unpredictability into the network delay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.estimation import estimator_accuracy
from repro.core.estimator import SwmIngestionEstimator
from repro.core.lr import LinearRegressionEstimator
from repro.net.delays import UniformDelay, ZipfDelay

from figutil import once, report

SEEDS = range(5)


def _model(dist: str, seed: int):
    if dist == "Uniform":
        return UniformDelay(0.0, 500.0, seed=seed)
    return ZipfDelay(a=0.99, max_ms=500.0, seed=seed)


def _estimator(name: str):
    if name == "Klink-95":
        return SwmIngestionEstimator(confidence=95)
    if name == "Klink-90":
        return SwmIngestionEstimator(confidence=90)
    return LinearRegressionEstimator()


@pytest.mark.benchmark(group="fig9c")
def test_fig9c_estimation_accuracy(benchmark):
    def collect():
        out = {}
        for dist in ("Uniform", "Zipf"):
            for name in ("LR", "Klink-90", "Klink-95"):
                accs = [
                    estimator_accuracy(
                        _estimator(name), _model(dist, seed), n_epochs=400, seed=seed
                    ).accuracy
                    for seed in SEEDS
                ]
                out[(dist, name)] = 100 * float(np.mean(accs))
        return out

    acc = once(benchmark, collect)
    lines = [
        f"{dist:8s} {name:10s} accuracy = {acc[(dist, name)]:5.1f}%"
        for dist in ("Uniform", "Zipf")
        for name in ("LR", "Klink-90", "Klink-95")
    ]
    report("fig9c", "SWM ingestion estimation accuracy", lines)

    for dist in ("Uniform", "Zipf"):
        # Klink-95 >= Klink-90 >> LR (the paper's ordering).
        assert acc[(dist, "Klink-95")] >= acc[(dist, "Klink-90")], dist
        assert acc[(dist, "Klink-90")] > acc[(dist, "LR")], dist
        # Klink's estimator stays highly accurate (paper: 85-98%).
        assert acc[(dist, "Klink-95")] > 88.0, dist
