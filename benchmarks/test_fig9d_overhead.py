"""Figure 9d: Klink's scheduler overhead vs. confidence value.

Overhead is reported as the fraction of CPU time the runtime spends on
data collection, SWM estimation, and prioritization instead of processing
events. Paper shape: overhead decreases with lower confidence values
(smaller search intervals mean fewer Algorithm-1 window slides), the gap
between the highest and lowest confidence is small, and the absolute
impact is negligible (~0.5% of throughput at the default f = 95).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.runner import ExperimentConfig, run_cached

from figutil import once, prewarm, report

CONFIDENCES = [100.0, 99.0, 95.0, 90.0, 67.0]
BASE = ExperimentConfig(
    workload="ysb", scheduler="Klink", n_queries=60, duration_ms=120_000.0
)
GRID = [replace(BASE, confidence=f) for f in CONFIDENCES]


@pytest.fixture(scope="module", autouse=True)
def _warm_grid():
    prewarm(GRID)


@pytest.mark.benchmark(group="fig9d")
def test_fig9d_scheduler_overhead(benchmark):
    def collect():
        out = {}
        for f in CONFIDENCES:
            res = run_cached(replace(BASE, confidence=f))
            out[f] = 100 * res.metrics.overhead_fraction
        return out

    overhead = once(benchmark, collect)
    report(
        "fig9d",
        "Klink scheduler overhead (% of CPU) vs confidence value",
        [f"f={f:5.1f}%  overhead = {pct:5.3f}%" for f, pct in overhead.items()],
    )
    # Overhead shrinks (weakly) as the confidence value decreases.
    ordered = [overhead[f] for f in CONFIDENCES]
    assert ordered[0] >= ordered[-1]
    # The absolute overhead is negligible (paper: ~0.5%); the spread
    # between the highest and lowest confidence is small.
    assert all(pct < 3.0 for pct in ordered)
    assert ordered[0] - ordered[-1] < 2.0
