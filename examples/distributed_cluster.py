#!/usr/bin/env python3
"""Scale a query fleet across a simulated cluster (Sec. 4's design).

80 YSB queries are deployed on 1, 2, and 4 nodes. Pipelines are split in
two segments across consecutive nodes; each node runs its own Klink
instance, exchanging delay and cost information through the forwarding
board with RPC staleness, exactly as the distributed design describes.

Usage::

    python examples/distributed_cluster.py
"""

from repro import MemoryConfig, WorkloadParams, build_queries
from repro.core.baselines import DefaultScheduler
from repro.distributed import DistributedEngine, PhysicalPlan
from repro.spe.memory import GIB


def run(policy: str, nodes: int) -> dict:
    queries = build_queries("ysb", 80, WorkloadParams(seed=1, rate_scale=1.25))
    plan = PhysicalPlan.split(queries, nodes, segments=2)
    kwargs = dict(
        memory=MemoryConfig(capacity_bytes=1.0 * GIB),
        rpc_latency_ms=100.0,  # Flink's default network buffer timeout
    )
    if policy == "Klink":
        engine = DistributedEngine.with_klink(queries, plan, **kwargs)
    else:
        engine = DistributedEngine.with_policy(
            queries, plan, DefaultScheduler, **kwargs
        )
    metrics = engine.run(60_000.0)
    return metrics.summary()


def main() -> None:
    print("Distributed YSB (80 queries, 24 cores/node, 60 simulated s)\n")
    print(f"{'policy':10s} {'nodes':>5s} {'mean lat':>9s} {'p99 lat':>9s} "
          f"{'throughput':>12s} {'cpu':>6s}")
    for nodes in (1, 2, 4):
        for policy in ("Default", "Klink"):
            s = run(policy, nodes)
            print(
                f"{policy:10s} {nodes:5d} "
                f"{s['mean_latency_ms'] / 1000:8.2f}s "
                f"{s['p99_latency_ms'] / 1000:8.2f}s "
                f"{s['throughput_eps']:11,.0f}/s "
                f"{s['mean_cpu_pct']:5.1f}%"
            )
    print(
        "\nLatency falls as nodes are added; Klink holds the advantage"
        "\nwhile the cluster is still contended (paper Fig. 6e)."
    )


if __name__ == "__main__":
    main()
