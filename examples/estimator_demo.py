#!/usr/bin/env python3
"""Demonstrate the SWM ingestion estimator (Sec. 3.1 / Fig. 9c).

Compares Klink's distribution-based confidence intervals against the
gradient-descent linear-regression baseline under Uniform and Zipf
network delays, printing the interval coverage (the paper's "accuracy
rate") and average interval width.
"""

from repro import LinearRegressionEstimator, SwmIngestionEstimator, UniformDelay, ZipfDelay
from repro.bench.estimation import estimator_accuracy


def main() -> None:
    estimators = [
        ("Klink (f=95)", lambda: SwmIngestionEstimator(confidence=95.0)),
        ("Klink (f=90)", lambda: SwmIngestionEstimator(confidence=90.0)),
        ("LR (grad. descent)", lambda: LinearRegressionEstimator()),
    ]
    delays = [
        ("Uniform(0, 500ms)", lambda s: UniformDelay(0.0, 500.0, seed=s)),
        ("Zipf(0.99)", lambda s: ZipfDelay(a=0.99, max_ms=500.0, seed=s)),
    ]

    print("SWM ingestion estimation accuracy (400 epochs, 3 seeds)\n")
    print(f"{'delay':18s} {'estimator':20s} {'coverage':>9s} {'width':>9s}")
    for dist_name, make_delay in delays:
        for est_name, make_est in estimators:
            accs, widths = [], []
            for seed in range(3):
                r = estimator_accuracy(
                    make_est(), make_delay(seed), n_epochs=400, seed=seed
                )
                accs.append(r.accuracy)
                widths.append(r.mean_interval_ms)
            print(
                f"{dist_name:18s} {est_name:20s} "
                f"{100 * sum(accs) / len(accs):8.1f}% "
                f"{sum(widths) / len(widths):8.1f}ms"
            )
    print(
        "\nKlink brackets the next sweeping watermark with a confidence"
        "\ninterval from per-epoch delay statistics (Eqs. 3-6); the LR"
        "\nbaseline's short-window residual band under-covers."
    )


if __name__ == "__main__":
    main()
