#!/usr/bin/env python3
"""Failover recovery: the same node failure under every recovery strategy.

Eight YSB queries run for 40 simulated seconds while the fault layer
kills the node in [15 s, 21 s). Four configurations face the identical
failure:

* ``restart``  — checkpoint every 3 s; the node stays dark for the
  episode, then rolls back to the last checkpoint and replays;
* ``standby``  — same checkpoints; a hot standby is promoted at
  detection time, so recovery completes within a cycle;
* ``none``     — crash semantics: queued work on the node is lost (the
  invariant monitor tolerates the loss only because recovery is off);
* ``legacy``   — ``recovery=None``: the pre-resilience lossless pause.

Every run is gated by an :class:`~repro.faults.InvariantMonitor`: with
recovery enabled, zero events may be lost or duplicated across the
failover. The recovery-time metric the table prints is the same one the
trace report exposes in its ``resilience`` section (and the Chrome
flame export draws as a ``recovery:<strategy>`` span).

Usage::

    python examples/failover_recovery.py
"""

import json

from repro import WorkloadParams, build_queries
from repro.bench.runner import make_scheduler, trace_summary
from repro.faults import FaultPlan, InvariantMonitor, NodeFailure
from repro.resilience import (
    CheckpointCoordinator,
    RecoveryConfig,
    RecoveryManager,
)
from repro.spe.engine import Engine

DURATION_MS = 40_000.0
CHECKPOINT_MS = 3_000.0
FAILURE = NodeFailure(15_000.0, 21_000.0, node=0)


def run(strategy):
    queries = build_queries("ysb", 8, WorkloadParams(seed=1))
    monitor = InvariantMonitor()
    checkpoints = None
    recovery = None
    if strategy != "legacy":
        checkpoints = CheckpointCoordinator(CHECKPOINT_MS)
        recovery = RecoveryManager(
            RecoveryConfig(strategy),
            checkpoints if strategy != "none" else None,
        )
    engine = Engine(
        queries,
        make_scheduler("Klink"),
        cores=8,
        cycle_ms=100.0,
        seed=1,
        faults=FaultPlan([FAILURE]),
        invariants=monitor,
        checkpoints=checkpoints,
        recovery=recovery,
    )
    metrics = engine.run(DURATION_MS)
    return metrics, monitor


def fmt_ms(values):
    return ",".join(f"{v / 1000:.2f}s" for v in values) if values else "-"


def main() -> None:
    print("One node failure [15s, 21s), four recovery configurations\n")
    print(
        f"{'strategy':9s} {'recovery':>9s} {'replay':>8s} {'lost':>10s} "
        f"{'p99 lat':>9s} {'infl':>6s} {'ckpts':>6s} {'invariants':>11s}"
    )
    failures = 0
    last_resilient = None
    for strategy in ("restart", "standby", "none", "legacy"):
        metrics, monitor = run(strategy)
        verdict = "OK" if monitor.ok else f"{monitor.total_violations} BAD"
        failures += 0 if monitor.ok else 1
        resilience = metrics.resilience_summary()
        inflation = resilience["post_failure_latency_inflation"]
        print(
            f"{strategy:9s} "
            f"{fmt_ms(metrics.recovery_time_ms):>9s} "
            f"{fmt_ms(metrics.replay_span_ms):>8s} "
            f"{metrics.events_lost_to_failures:10,.0f} "
            f"{metrics.latency_percentile(99) / 1000:8.2f}s "
            f"{inflation:6.2f} "
            f"{metrics.checkpoints_taken:6d} "
            f"{verdict:>11s}"
        )
        if not monitor.ok:
            print(monitor.report())
        if strategy == "restart":
            last_resilient = metrics

    print("\nThe trace report carries the same story — summary['resilience']")
    print("for the restart run:")
    print(json.dumps(trace_summary(last_resilient)["resilience"], indent=2))
    print(
        "\nrestart pays the whole episode as recovery time and recomputes"
        "\nthe replay span; standby hides the outage behind one detection"
        "\ncycle; 'none' loses the node's queued work and only the explicit"
        "\nopt-out keeps the conservation invariants green."
    )
    raise SystemExit(failures)


if __name__ == "__main__":
    main()
