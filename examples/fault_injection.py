#!/usr/bin/env python3
"""Differential fault injection: Klink vs FCFS under identical faults.

A contended two-node cluster runs 40 YSB queries while a deterministic
:class:`~repro.faults.FaultPlan` injects a watermark-straggler episode
(progress lags the data, blocking window firing) and a full node failure
(node 1 executes nothing for 8 simulated seconds, its sources suspended).
Both policies face the *exact same* schedule, and an
:class:`~repro.faults.InvariantMonitor` asserts every conservation and
monotonicity invariant throughout — faults may degrade latency, never
correctness.

Usage::

    python examples/fault_injection.py
"""

from repro import WorkloadParams, build_queries
from repro.core.baselines import FCFSScheduler
from repro.distributed import DistributedEngine, PhysicalPlan
from repro.faults import (
    FaultPlan,
    InvariantMonitor,
    NodeFailure,
    WatermarkStraggler,
)

DURATION_MS = 60_000.0


def make_faults() -> FaultPlan:
    return FaultPlan([
        # Watermarks generated in [10 s, 20 s) arrive 2.5 s late: event
        # time stalls behind the data and windows cannot fire.
        WatermarkStraggler(10_000.0, 20_000.0, extra_delay_ms=2_500.0),
        # Node 1 is down in [30 s, 38 s): half the fleet freezes, then
        # its buffered traffic floods back in on recovery.
        NodeFailure(30_000.0, 38_000.0, node=1),
    ])


def run(policy: str):
    queries = build_queries("ysb", 40, WorkloadParams(seed=1, rate_scale=2.0))
    plan = PhysicalPlan.locality(queries, 2)
    monitor = InvariantMonitor()
    kwargs = dict(faults=make_faults(), invariants=monitor, cores_per_node=8)
    if policy == "Klink":
        engine = DistributedEngine.with_klink(queries, plan, **kwargs)
    else:
        engine = DistributedEngine.with_policy(
            queries, plan, FCFSScheduler, **kwargs
        )
    metrics = engine.run(DURATION_MS)
    return metrics, monitor


def main() -> None:
    print("Fault injection on a 2-node YSB cluster (40 queries, 60 sim s)")
    print(make_faults().describe())
    print()
    print(f"{'policy':8s} {'mean lat':>9s} {'p90 lat':>9s} {'p99 lat':>9s} "
          f"{'events':>12s} {'invariants':>12s}")
    failures = 0
    for policy in ("Klink", "FCFS"):
        metrics, monitor = run(policy)
        verdict = "OK" if monitor.ok else f"{monitor.total_violations} BAD"
        failures += 0 if monitor.ok else 1
        print(
            f"{policy:8s} "
            f"{metrics.mean_latency_ms / 1000:8.2f}s "
            f"{metrics.latency_percentile(90) / 1000:8.2f}s "
            f"{metrics.latency_percentile(99) / 1000:8.2f}s "
            f"{metrics.total_events_processed:12,.0f} "
            f"{verdict:>12s}"
        )
        if not monitor.ok:
            print(monitor.report())
    print(
        "\nBoth policies survive the same straggler + node outage with all"
        "\ninvariants intact; Klink degrades more gracefully because its"
        "\nslack estimates absorb the watermark disruption (Sec. 5.3)."
    )
    raise SystemExit(failures)


if __name__ == "__main__":
    main()
