#!/usr/bin/env python3
"""Build a custom streaming query with the public API.

Scenario: real-time payment-fraud detection — the kind of latency-
sensitive windowed workload the paper's introduction motivates. Two
streams (card payments and device signals) are joined in a sliding
window; the joined stream feeds a per-merchant aggregation whose output
drives alerts, so the freshness of every window result matters.

The example shows:

* assembling a multi-input pipeline from operators (filter, join,
  windowed aggregate, sink);
* attaching sources with network delay models and watermark configs;
* running the query fleet under Klink and reading per-query latencies.
"""

from repro import (
    Engine,
    FilterOperator,
    KlinkScheduler,
    Query,
    SinkOperator,
    SlidingEventTimeWindows,
    SourceBinding,
    SourceSpec,
    TumblingEventTimeWindows,
    UniformDelay,
    WindowedAggregate,
    WindowedJoin,
)


def build_fraud_query(query_id: str, seed: int = 0, deployed_at: float = 0.0) -> Query:
    # Payments: 5K tx/s, 10% flagged as high-risk by the pre-filter.
    payments_delay = UniformDelay(0.0, 300.0, seed=seed)
    payments = SourceSpec(
        name=f"{query_id}.payments",
        rate_eps=5_000.0,
        watermark_period_ms=1_000.0,
        lateness_ms=payments_delay.bound,
        delay_model=payments_delay,
        bytes_per_event=250,
    )
    # Device signals: 2K ev/s from the risk-scoring service.
    signals_delay = UniformDelay(0.0, 300.0, seed=seed + 1)
    signals = SourceSpec(
        name=f"{query_id}.signals",
        rate_eps=2_000.0,
        watermark_period_ms=1_000.0,
        lateness_ms=signals_delay.bound,
        delay_model=signals_delay,
        bytes_per_event=120,
    )

    risk_filter = FilterOperator(
        f"{query_id}.risk-filter", cost_per_event_ms=0.01, selectivity=0.10
    )
    signal_filter = FilterOperator(
        f"{query_id}.signal-filter", cost_per_event_ms=0.008, selectivity=0.5
    )
    correlate = WindowedJoin(
        f"{query_id}.correlate",
        SlidingEventTimeWindows(4_000.0, 2_000.0, offset=deployed_at),
        cost_per_event_ms=0.02,
        n_inputs=2,
        join_selectivity=0.2,
    )
    merchant_agg = WindowedAggregate(
        f"{query_id}.merchant-agg",
        TumblingEventTimeWindows(2_000.0, offset=deployed_at),
        cost_per_event_ms=0.015,
        output_events_per_pane=50.0,  # alerting merchants per window
        key_by="merchant_id",
    )
    alerts = SinkOperator(f"{query_id}.alerts")

    risk_filter.connect(correlate, input_index=0)
    signal_filter.connect(correlate, input_index=1)
    correlate.connect(merchant_agg)
    merchant_agg.connect(alerts)

    return Query(
        query_id,
        [
            SourceBinding(payments, risk_filter, source_id=0, seed=seed),
            SourceBinding(signals, signal_filter, source_id=1, seed=seed + 1),
        ],
        [risk_filter, signal_filter, correlate, merchant_agg, alerts],
        alerts,
        deployed_at=deployed_at,
    )


def main() -> None:
    queries = [
        build_fraud_query(f"fraud-{i}", seed=i, deployed_at=i * 997.0)
        for i in range(12)
    ]
    engine = Engine(queries, KlinkScheduler(), cores=8, cycle_ms=120.0)
    metrics = engine.run(60_000.0)

    print("Fraud-detection fleet (12 queries, 8 cores, 60 s)\n")
    print(f"windows fired : {len(metrics.swm_latencies)}")
    print(f"mean alert latency : {metrics.mean_latency_ms / 1000:.2f}s")
    print(f"p99 alert latency  : {metrics.latency_percentile(99) / 1000:.2f}s")
    print("\nper-query mean alert latency:")
    for qid, lats in sorted(metrics.per_query_swm_latencies.items()):
        mean = sum(lats) / len(lats) if lats else float("nan")
        print(f"  {qid:10s} {mean / 1000:6.2f}s  ({len(lats)} windows)")


if __name__ == "__main__":
    main()
