#!/usr/bin/env python3
"""Latency waterfall: where Klink actually removes milliseconds.

The paper's headline contention scenario — 60 YSB queries on 24 cores
under a 1 GiB memory cap — run twice, under Klink and under the
throughput-greedy Default policy, with deterministic lineage sampling
(``lineage_sample_rate=0.01``) tracing ~1% of records from generation
to delivery. For each delivered record the tracker decomposes
end-to-end latency exactly into

``network + queue + execute + window + emit``

and this script prints both waterfalls side by side.

What to look for:

* **window** residency is workload physics: an event waits about half
  a window length plus watermark lag for its pane to fire, whichever
  policy runs. But a backlogged policy fires panes *late*, so window
  residency inflates with scheduling debt too.
* **queue** wait is the scheduling component: time spent in input
  channels behind other queries' work. Under contention Klink's
  progress-aware ordering drains the panes whose deadlines are due and
  defers the rest, so delivered records spend visibly less time queued
  (and fewer sampled records are still in flight at end of run).

The same sampled records also feed the SWM-forecast audit: Klink's
slack arithmetic rests on predicted next-watermark arrivals, and the
audit shows its mean absolute arrival error beating the naive
"last ingestion + one period" baseline by an order of magnitude.

Usage::

    python examples/latency_waterfall.py
"""

from dataclasses import replace

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.obs import SPAN_KINDS, waterfall

BASE = ExperimentConfig(
    workload="ysb",
    n_queries=60,
    duration_ms=60_000.0,
    memory_gb=1.0,  # the paper's memory-contention regime
    seed=1,
    lineage_sample_rate=0.01,
)


def describe(label: str, result) -> dict:
    tracker = result.lineage
    wf = waterfall(tracker.lineage_rows())
    overall = wf["overall"]
    print(f"\n{label}")
    print(
        f"  delivered {wf['delivered']} of {wf['sampled']} sampled records;"
        f" mean end-to-end {overall['mean_end_to_end_ms']:,.0f} ms"
        f" (run mean latency {result.summary['mean_latency_ms']:,.0f} ms)"
    )
    parts = "  ".join(
        f"{kind}={overall['components_ms'][kind]:,.0f}ms"
        f"({overall['shares_pct'][kind]:.1f}%)"
        for kind in SPAN_KINDS
    )
    print(f"  {parts}")
    forecast = [
        row
        for row in tracker.swm_forecast_rows()
        if row["mean_abs_error_ms"] is not None
        and row["naive_mean_abs_error_ms"] is not None
    ]
    if forecast:
        mean = sum(r["mean_abs_error_ms"] for r in forecast) / len(forecast)
        naive = sum(r["naive_mean_abs_error_ms"] for r in forecast) / len(
            forecast
        )
        print(
            f"  SWM forecast |err| {mean:,.0f} ms vs naive {naive:,.0f} ms"
            f" over {len(forecast)} sources"
        )
    return overall


def main() -> None:
    print(
        "Latency waterfall under memory contention "
        "(60 YSB queries, 1 GiB, 60 sim s, ~1% lineage sample)"
    )
    klink = describe("Klink", run_experiment(replace(BASE, scheduler="Klink")))
    default = describe(
        "Default", run_experiment(replace(BASE, scheduler="Default"))
    )
    saved_queue = default["components_ms"]["queue"] - klink["components_ms"]["queue"]
    saved_e2e = default["mean_end_to_end_ms"] - klink["mean_end_to_end_ms"]
    print(
        f"\nKlink delivers records with {saved_queue:,.0f} ms less queue wait"
        f" ({default['shares_pct']['queue']:.1f}% -> "
        f"{klink['shares_pct']['queue']:.1f}% of end-to-end) and"
        f" {saved_e2e:,.0f} ms less end-to-end latency per delivered record."
    )
    assert klink["components_ms"]["queue"] < default["components_ms"]["queue"]
    assert klink["shares_pct"]["queue"] < default["shares_pct"]["queue"]


if __name__ == "__main__":
    main()
