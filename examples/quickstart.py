#!/usr/bin/env python3
"""Quickstart: run the Yahoo! Streaming Benchmark under two schedulers.

Builds a fleet of YSB queries, runs them once under Flink's Default
scheduling model and once under Klink, and prints the headline metrics
the paper compares (mean/tail output latency, throughput, memory, CPU).

Usage::

    python examples/quickstart.py [n_queries] [duration_seconds]
"""

import sys

from repro import (
    DefaultScheduler,
    Engine,
    KlinkScheduler,
    MemoryConfig,
    WorkloadParams,
    build_queries,
)
from repro.analysis import validate_queries
from repro.spe.memory import GIB


def run_once(scheduler, n_queries: int, duration_s: float):
    queries = build_queries("ysb", n_queries, WorkloadParams(seed=1))
    engine = Engine(
        queries,
        scheduler,
        cores=24,
        cycle_ms=120.0,
        memory=MemoryConfig(capacity_bytes=1.0 * GIB),
    )
    return engine.run(duration_s * 1000.0)


def main() -> None:
    n_queries = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 60.0

    # Engine(...) validates plans anyway (raising PlanValidationError on a
    # broken one); running the check explicitly also surfaces warnings and
    # advice, e.g. fusible operator runs (KP122).
    report = validate_queries(build_queries("ysb", n_queries, WorkloadParams(seed=1)))
    print(f"plan check: {n_queries} queries ok, "
          f"{len(report.warnings)} warning(s), "
          f"{len(report.by_severity('advice'))} advice")

    print(f"YSB, {n_queries} queries, {duration_s:.0f} simulated seconds\n")
    print(f"{'scheduler':16s} {'mean lat':>9s} {'p99 lat':>9s} "
          f"{'throughput':>12s} {'memory':>8s} {'cpu':>6s}")
    for scheduler in (DefaultScheduler(), KlinkScheduler()):
        metrics = run_once(scheduler, n_queries, duration_s)
        s = metrics.summary()
        print(
            f"{scheduler.name:16s} "
            f"{s['mean_latency_ms'] / 1000:8.2f}s "
            f"{s['p99_latency_ms'] / 1000:8.2f}s "
            f"{s['throughput_eps']:11,.0f}/s "
            f"{s['mean_memory_gb']:6.2f}GB "
            f"{s['mean_cpu_pct']:5.1f}%"
        )
    print(
        "\nUnder contention Klink fires windows as their sweeping watermarks"
        "\narrive, keeping output latency low while its memory management"
        "\nsustains throughput (Sec. 3 of the paper)."
    )


if __name__ == "__main__":
    main()
