#!/usr/bin/env python3
"""Compare all seven scheduling policies on the NYC Taxi workload.

Reproduces the flavour of the paper's Figs. 6-7 at example scale: a
contended fleet of NYT aggregation queries run under each policy, with
mean/median/tail latency and throughput side by side.

Usage::

    python examples/scheduler_comparison.py [n_queries]
"""

import sys

from repro import Engine, MemoryConfig, WorkloadParams, build_queries
from repro.bench.runner import SCHEDULER_NAMES, make_scheduler
from repro.spe.memory import GIB


def main() -> None:
    n_queries = int(sys.argv[1]) if len(sys.argv) > 1 else 60

    print(f"NYT workload, {n_queries} queries, 24 cores, 60 simulated s\n")
    print(f"{'policy':16s} {'mean':>8s} {'p50':>8s} {'p90':>8s} {'p99':>8s} "
          f"{'thr (ev/s)':>12s} {'windows':>8s}")
    for name in SCHEDULER_NAMES:
        queries = build_queries("nyt", n_queries, WorkloadParams(seed=1))
        engine = Engine(
            queries,
            make_scheduler(name),
            cores=24,
            cycle_ms=120.0,
            memory=MemoryConfig(capacity_bytes=1.0 * GIB),
        )
        m = engine.run(60_000.0)
        print(
            f"{name:16s} "
            f"{m.mean_latency_ms / 1000:7.2f}s "
            f"{m.latency_percentile(50) / 1000:7.2f}s "
            f"{m.latency_percentile(90) / 1000:7.2f}s "
            f"{m.latency_percentile(99) / 1000:7.2f}s "
            f"{m.throughput_eps:11,.0f} "
            f"{len(m.swm_latencies):8d}"
        )


if __name__ == "__main__":
    main()
