#!/usr/bin/env python3
"""In-run telemetry: watch an injected slowdown trip the SLO alerts.

Four YSB queries run under Klink while a deterministic
:class:`~repro.faults.FaultPlan` makes every operator 10x slower between
simulated seconds 3 and 12. A :class:`~repro.obs.TelemetrySampler`
rides along on the virtual clock, recording queue depths, watermark
lag, and recent p99 latency into bounded ring-buffer series, and an
alert engine evaluates two declarative rules against the live samples:

* ``slo-latency`` — recent p99 delivery latency stays above the 1 s SLO
  for a sustained second;
* ``queue-growth`` — some query's queue depth grows strictly for five
  consecutive samples.

Note when the alarm actually rings: latencies are *withheld* during the
slowdown (windows cannot fire while their operators crawl), so deadline
misses and the latency alert surface only after the fault ends, when
the backlog drains. The queue-growth rule is the early-warning signal
that fires *during* the episode.

Usage::

    python examples/telemetry_alerts.py
"""

from repro import WorkloadParams, build_queries
from repro.core.klink import KlinkScheduler
from repro.faults import FaultPlan
from repro.faults.plan import OperatorSlowdown
from repro.obs import TelemetryConfig, TelemetrySampler, parse_rules
from repro.spe.engine import Engine
from repro.spe.memory import GIB, MemoryConfig

DURATION_MS = 25_000.0

RULES = (
    "slo-latency: latency_recent_p99_ms > 1000 for 1s",
    "queue-growth: queue_depth growing for 5 samples",
)


def main() -> None:
    faults = FaultPlan([
        OperatorSlowdown(start_ms=3_000.0, end_ms=12_000.0, factor=10.0),
    ])
    print("Telemetry + alerting on 4 YSB queries (25 sim s, Klink)")
    print(faults.describe())
    print("rules:")
    for text in RULES:
        print(f"  {text}")
    print()

    sampler = TelemetrySampler(
        TelemetryConfig(deadline_slo_ms=1_000.0),
        rules=parse_rules(RULES),
    )
    queries = build_queries("ysb", 4, WorkloadParams(seed=1))
    engine = Engine(
        queries, KlinkScheduler(), cores=8, cycle_ms=120.0,
        memory=MemoryConfig(capacity_bytes=1.0 * GIB),
        seed=1, faults=faults, telemetry=sampler,
    )
    metrics = engine.run(DURATION_MS)

    print(f"{'alert':14s} {'series':32s} {'fired at':>9s} {'cleared':>9s} "
          f"{'peak value':>11s}")
    for row in sampler.alert_rows():
        end = f"{row['end'] / 1000:8.1f}s" if row["end"] is not None else "  open"
        print(
            f"{row['rule']:14s} {row['series']:32s} "
            f"{row['start'] / 1000:8.1f}s {end:>9s} {row['value']:11.1f}"
        )
    print()
    print(f"deadline misses (> 1 s SLO): {metrics.deadline_misses}")
    print(f"max watermark lag:           "
          f"{metrics.watermark_lag_max_ms / 1000:.2f}s")
    print(f"delivered p99 latency:       "
          f"{metrics.latency_percentile(99) / 1000:.2f}s")
    print(
        "\nThe queue-growth alert fires inside the fault window while the"
        "\nlatency alert waits for the post-fault drain -- queues lead,"
        "\nlatency lags. 'repro-bench run --telemetry' wires the same"
        "\nsampler from the CLI; see docs/API.md for the rule grammar."
    )
    n_alerts = len(sampler.alert_rows())
    raise SystemExit(0 if n_alerts else 1)


if __name__ == "__main__":
    main()
