"""Legacy setup shim.

The sandboxed environment ships setuptools 65.5 without the ``wheel``
package, so PEP 517 editable installs (which build a wheel) fail. This
shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` use
the classic ``setup.py develop`` path, which needs no wheel.
"""

from setuptools import setup

setup()
