"""repro — reproduction of *Klink: Progress-Aware Scheduling for Streaming
Data Systems* (Farhat, Daudjee, Querzoni; SIGMOD 2021).

The package provides:

* :mod:`repro.spe` — a from-scratch discrete-event stream processing
  engine with windows, watermarks, a cost/selectivity model, a memory
  model with backpressure, and a pluggable state-based runtime scheduler.
* :mod:`repro.core` — the Klink scheduler (SWM ingestion estimation,
  expected-slack computation, join handling, memory management) and the
  five baseline policies the paper compares against.
* :mod:`repro.net` — the network delay distributions of the evaluation.
* :mod:`repro.workloads` — the YSB, LRB, and NYT benchmark pipelines.
* :mod:`repro.distributed` — the decentralized multi-node deployment of
  Sec. 4 with delay/cost information forwarding.
* :mod:`repro.bench` — the experiment harness regenerating every figure
  of the paper's evaluation.

Quickstart::

    from repro import KlinkScheduler, Engine, build_queries

    queries = build_queries("ysb", n_queries=8)
    engine = Engine(queries, KlinkScheduler(), cores=24, cycle_ms=120.0)
    metrics = engine.run(duration_ms=60_000.0)
    print(metrics.summary())
"""

from repro.core import (
    ALL_BASELINES,
    ClassBasedScheduler,
    DefaultScheduler,
    FCFSScheduler,
    HighestRateScheduler,
    KlinkScheduler,
    LinearRegressionEstimator,
    RoundRobinScheduler,
    Scheduler,
    StreamBoxScheduler,
    SwmIngestionEstimator,
)
from repro.faults import (
    FaultPlan,
    InvariantMonitor,
    InvariantViolation,
    MemoryPressureSpike,
    NodeFailure,
    OperatorSlowdown,
    SourceStall,
    WatermarkDrop,
    WatermarkStraggler,
)
from repro.net import ConstantDelay, DelayModel, ExponentialDelay, UniformDelay, ZipfDelay
from repro.spe import (
    CountWindowedAggregate,
    Engine,
    FusedOperator,
    ReorderBuffer,
    EventBatch,
    FilterOperator,
    LatencyMarker,
    MapOperator,
    MemoryConfig,
    Query,
    RunMetrics,
    SinkOperator,
    SlidingEventTimeWindows,
    SourceBinding,
    SourceSpec,
    TumblingEventTimeWindows,
    Watermark,
    WindowedAggregate,
    WindowedJoin,
    chain,
)
from repro.workloads import WorkloadParams, build_queries, workload_names

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # schedulers
    "KlinkScheduler",
    "DefaultScheduler",
    "FCFSScheduler",
    "RoundRobinScheduler",
    "HighestRateScheduler",
    "StreamBoxScheduler",
    "Scheduler",
    "ClassBasedScheduler",
    "ALL_BASELINES",
    "SwmIngestionEstimator",
    "LinearRegressionEstimator",
    # engine & pipeline building blocks
    "Engine",
    "Query",
    "SourceSpec",
    "SourceBinding",
    "chain",
    "MapOperator",
    "FilterOperator",
    "WindowedAggregate",
    "WindowedJoin",
    "CountWindowedAggregate",
    "SinkOperator",
    "ReorderBuffer",
    "FusedOperator",
    "TumblingEventTimeWindows",
    "SlidingEventTimeWindows",
    "EventBatch",
    "Watermark",
    "LatencyMarker",
    "MemoryConfig",
    "RunMetrics",
    # fault injection & invariant checking
    "FaultPlan",
    "SourceStall",
    "WatermarkStraggler",
    "WatermarkDrop",
    "OperatorSlowdown",
    "MemoryPressureSpike",
    "NodeFailure",
    "InvariantMonitor",
    "InvariantViolation",
    # delays
    "DelayModel",
    "UniformDelay",
    "ZipfDelay",
    "ConstantDelay",
    "ExponentialDelay",
    # workloads
    "build_queries",
    "WorkloadParams",
    "workload_names",
]
