"""Static analysis for the Klink reproduction: lint, plan, and state checks.

Three passes share the :mod:`repro.analysis.report` /
:mod:`repro.analysis.pragmas` diagnostic infrastructure:

* :mod:`repro.analysis.lint` — an AST linter flagging constructs that
  break byte-for-byte simulation determinism (rule codes ``KL001``...).
  Run it as ``repro-lint``, ``python -m repro.analysis.lint``, or
  ``repro-bench lint``.
* :mod:`repro.analysis.plan_check` — a static validator for query plans
  (rule codes ``KP101``...), invoked automatically at ``Engine`` /
  ``DistributedEngine`` submission (disable with ``validate=False``) and
  exposed as ``repro-bench check-plan``.
* :mod:`repro.analysis.statecheck` — the state-contract analyzer
  (rule codes ``KS2xx``/``KW3xx``): checkpoint snapshot coverage,
  capture/restore symmetry, schema-fingerprint drift, canonical
  serialization, and worker purity. Run it as ``repro-lint --state``,
  ``python -m repro.analysis.statecheck``, or ``repro-bench statecheck``.

Submodules are loaded lazily (PEP 562) so that ``python -m
repro.analysis.lint`` does not import the module twice (runpy warns when
the package eagerly imports the submodule being executed).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

#: public name -> (submodule, attribute)
_EXPORTS: Dict[str, Tuple[str, str]] = {
    "Diagnostic": ("repro.analysis.report", "Diagnostic"),
    "Report": ("repro.analysis.report", "Report"),
    "RULES": ("repro.analysis.lint", "RULES"),
    "lint_file": ("repro.analysis.lint", "lint_file"),
    "lint_paths": ("repro.analysis.lint", "lint_paths"),
    "lint_source": ("repro.analysis.lint", "lint_source"),
    "PLAN_RULES": ("repro.analysis.plan_check", "PLAN_RULES"),
    "PlanValidationError": ("repro.analysis.plan_check", "PlanValidationError"),
    "check_query": ("repro.analysis.plan_check", "check_query"),
    "check_structure": ("repro.analysis.plan_check", "check_structure"),
    "validate_queries": ("repro.analysis.plan_check", "validate_queries"),
    "STATE_RULES": ("repro.analysis.statecheck", "STATE_RULES"),
    "check_paths": ("repro.analysis.statecheck", "check_paths"),
    "run_statecheck": ("repro.analysis.statecheck", "run_statecheck"),
    "Pragmas": ("repro.analysis.pragmas", "Pragmas"),
    "parse_pragmas": ("repro.analysis.pragmas", "parse_pragmas"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_EXPORTS))
