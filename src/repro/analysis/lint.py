"""Determinism linter: AST checks for forbidden-in-simulation constructs.

Klink's evaluation rests on comparing schedulers under *identical*
simulated conditions, and the fault/invariant subsystem makes
byte-for-byte run determinism a load-bearing guarantee
(``tests/test_determinism.py``). This module statically prevents the
constructs that silently break it:

========  ==============================================================
 code      rule
========  ==============================================================
 KL001     absolute wall-clock access (``time.time``, ``datetime.now``,
           ...) — simulation code must use the virtual clock. Allowed
           in ``spe/tracing.py`` (observability).
 KL002     unseeded randomness: the ``random`` module,
           ``numpy.random`` module-level sampling/seeding functions,
           and seedless generator constructors
           (``default_rng()``, ``RandomState()``). Seeded generators
           passed as parameters are the sanctioned source of noise.
 KL003     iteration over an unordered set expression (``for x in
           set(...)``, ``list({...})``); set iteration order depends on
           ``PYTHONHASHSEED``, so anything ordering-sensitive downstream
           becomes run-dependent. Wrap in ``sorted(...)`` instead.
 KL004     ``id()``-based ordering (``sorted(key=id)``,
           ``id(a) < id(b)``): CPython ids are allocation addresses and
           differ across runs. (Using ``id`` as a *dict key* is fine.)
 KL005     float accumulation into watermark/slack state
           (``wm += period``): repeated float addition drifts; derive
           the value from an integer step count instead.
 KL006     monotonic/interval timer access (``time.monotonic``,
           ``time.perf_counter``, ``time.process_time``, ...): interval
           timers measure host time, not simulated time, so any value
           derived from them varies across machines and runs.
 KL007     per-element ``.sample()`` delay draws inside a loop (engine
           code under ``repro/spe/`` only): the vectorized cycle kernel
           draws a horizon's delays through ``sample_batch`` /
           ``sample_amortized``, whose value streams are pinned
           bit-identical to sequential ``sample()`` calls — a stray
           scalar draw loop silently forfeits that batching. The alias
           form (``sample = model.sample`` ... ``sample()``) is caught
           too. Deliberate scalar paths carry the inline pragma.
========  ==============================================================

A finding on a given line is suppressed with an inline pragma on that
line::

    t0 = time.time()  # klink: allow[KL001]
    slack += p * x    # klink: allow[KL005]  expectation, not a cursor
    anything()        # klink: allow[*]

Run over a tree with ``repro-lint PATH...`` (or
``python -m repro.analysis.lint``, or ``repro-bench lint``); exit code is
0 when clean, 1 when findings exist, 2 on usage errors.

The checks are intentionally syntactic (no type inference): a set bound
to a variable and iterated later is not caught. They target the patterns
that review keeps finding, not a soundness proof.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.pragmas import apply_suppressions, parse_pragmas
from repro.analysis.report import Diagnostic, Report

#: rule code -> one-line summary (rendered by ``--rules`` and the docs)
RULES: Dict[str, str] = {
    "KL000": "file could not be parsed (syntax error)",
    "KL001": "absolute wall-clock access in simulation code (use the virtual clock)",
    "KL002": "unseeded randomness (route noise through a seeded Generator)",
    "KL003": "iteration over an unordered set (order depends on PYTHONHASHSEED)",
    "KL004": "id()-based ordering (ids are allocation addresses)",
    "KL005": "float accumulation into watermark/slack state (derive from an integer step count)",
    "KL006": "monotonic/interval timer access (host time leaks into simulated values)",
    "KL007": "per-element .sample() delay draw in a loop (batch via sample_batch/sample_amortized)",
}

#: rules active only under a path fragment; everywhere else they are
#: suppressed at the file level (KL007 polices engine code — the delay
#: models themselves, tests, and tooling legitimately draw one-by-one)
RULE_SCOPES: Dict[str, str] = {
    "KL007": "spe/",
}

#: files (matched by path suffix) with rules that are allowed inside them
DEFAULT_FILE_ALLOWLIST: Dict[str, FrozenSet[str]] = {
    # Tracing annotates rows with host timestamps for log correlation;
    # nothing in the simulation consumes them.
    "spe/tracing.py": frozenset({"KL001", "KL006"}),
    # The perf harness times real wall-clock execution of the simulator;
    # its measurements never feed back into simulated state.
    "bench/perf.py": frozenset({"KL001", "KL006"}),
}

#: absolute clock reads (KL001): epoch/calendar time
_ABSOLUTE_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: monotonic / interval timer reads (KL006): host durations
_MONOTONIC_CLOCK_CALLS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
    }
)

#: numpy.random names that are fine *when called with a seed argument*
_SEEDED_CTORS = frozenset(
    {
        "default_rng",
        "RandomState",
        "Generator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: builtins that materialize/consume their argument in iteration order
_ORDER_SENSITIVE_CONSUMERS = frozenset(
    {"list", "tuple", "enumerate", "iter", "reversed", "next"}
)

#: set methods whose result is another unordered set
_SET_PRODUCING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: augmented-assignment targets matched by KL005
_KL005_NAME = re.compile(r"(watermark|slack|wm_ts)", re.IGNORECASE)


class _LintVisitor(ast.NodeVisitor):
    """Single-pass AST walk applying every rule."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.findings: List[Diagnostic] = []
        # import alias -> dotted module path ("np" -> "numpy",
        # "pc" -> "time.perf_counter" for from-imports)
        self._aliases: Dict[str, str] = {}
        # KL007 state: current for/while nesting depth, and local names
        # bound from an expression containing a ``.sample`` attribute
        # (``sample = spec.delay_model.sample``) — calling such a name in
        # a loop is the aliased form of a per-element draw.
        self._loop_depth = 0
        self._sample_aliases: set = set()

    # -- helpers -----------------------------------------------------------

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Diagnostic(
                code=code,
                message=message,
                severity="error",
                file=self.filename,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
            )
        )

    def _dotted_path(self, node: ast.expr) -> Optional[str]:
        """Resolve ``np.random.rand`` through import aliases to a dotted
        path like ``numpy.random.rand``; None for non-name-rooted chains."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # -- import tracking ---------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self._aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- KL001 / KL002: calls ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        path = self._dotted_path(node.func)
        if path is not None:
            self._check_wall_clock(node, path)
            self._check_randomness(node, path)
            self._check_order_consumer(node, path)
            self._check_id_sort_key(node, path)
        self._check_sample_in_loop(node)
        self.generic_visit(node)

    # -- KL007: per-element delay draws in loops ----------------------------

    def _check_sample_in_loop(self, node: ast.Call) -> None:
        if self._loop_depth == 0:
            return
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr != "sample":
                return
        elif isinstance(func, ast.Name):
            if func.id not in self._sample_aliases:
                return
        else:
            return
        self._flag(
            node,
            "KL007",
            "per-element .sample() draw inside a loop: draw the horizon's "
            "delays through sample_batch()/sample_amortized() (bit-identical "
            "by the pinned batching contract) or mark a deliberate scalar "
            "path with `# klink: allow[KL007]`",
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag_set_iteration(node.iter)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        # Record names bound from a ``.sample``-bearing expression; the
        # bound-method alias (also via a conditional expression choosing
        # between sample variants) is the pattern the engine's generator
        # uses, and exactly what a loop later calls.
        if any(
            isinstance(sub, ast.Attribute) and sub.attr == "sample"
            for sub in ast.walk(node.value)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._sample_aliases.add(target.id)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, path: str) -> None:
        if path in _ABSOLUTE_CLOCK_CALLS:
            self._flag(
                node,
                "KL001",
                f"wall-clock call {path}() in simulation code; use the "
                "engine's VirtualClock (or move it to spe/tracing.py)",
            )
        elif path in _MONOTONIC_CLOCK_CALLS:
            self._flag(
                node,
                "KL006",
                f"interval timer {path}() measures host time, not "
                "simulated time; use the engine's VirtualClock (or move "
                "the measurement to bench/perf.py)",
            )

    def _check_randomness(self, node: ast.Call, path: str) -> None:
        has_args = bool(node.args or node.keywords)
        if path.startswith("random."):
            name = path.split(".", 1)[1]
            if name == "Random" and has_args:
                return  # random.Random(seed) is reproducible
            self._flag(
                node,
                "KL002",
                f"{path}() draws from the process-global (unseeded) RNG; "
                "use a numpy Generator seeded from the run's seed",
            )
            return
        if path.startswith("numpy.random."):
            name = path.split(".", 2)[2]
            if name in _SEEDED_CTORS:
                if not has_args:
                    self._flag(
                        node,
                        "KL002",
                        f"{path}() without a seed is entropy-seeded; pass "
                        "an explicit seed derived from the run's seed",
                    )
                return
            self._flag(
                node,
                "KL002",
                f"module-level {path}() mutates/reads numpy's global RNG; "
                "use a seeded Generator instance instead",
            )

    # -- KL003: unordered iteration ----------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            path = self._dotted_path(node.func)
            if path in ("set", "frozenset") and node.args:
                # bare set()/frozenset() literals are empty: harmless
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_PRODUCING_METHODS
            ):
                return True
        return False

    def _flag_set_iteration(self, node: ast.expr) -> None:
        self._flag(
            node,
            "KL003",
            "iterating an unordered set: order depends on PYTHONHASHSEED "
            "and varies across runs; wrap in sorted(...)",
        )

    def _visit_comprehension(self, node: ast.expr, gens: List[ast.comprehension]) -> None:
        for gen in gens:
            if self._is_set_expr(gen.iter):
                self._flag_set_iteration(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # building another set from a set keeps it unordered: fine
        self.generic_visit(node)

    def _check_order_consumer(self, node: ast.Call, path: str) -> None:
        if path in _ORDER_SENSITIVE_CONSUMERS:
            args: Sequence[ast.expr] = node.args[:1]
        elif path == "zip":
            args = node.args
        elif path in ("map", "filter"):
            args = node.args[1:]
        else:
            return
        for arg in args:
            if self._is_set_expr(arg):
                self._flag_set_iteration(arg)

    # -- KL004: id()-based ordering ----------------------------------------

    @staticmethod
    def _contains_id_call(node: ast.expr) -> bool:
        # ``key=id`` passes the builtin itself; ``key=lambda o: id(o)``
        # buries the call one level down — match both.
        if isinstance(node, ast.Name) and node.id == "id":
            return True
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                return True
        return False

    def _check_id_sort_key(self, node: ast.Call, path: str) -> None:
        is_sort = path == "sorted" or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        )
        if not is_sort:
            return
        for kw in node.keywords:
            if kw.arg == "key" and self._contains_id_call(kw.value):
                self._flag(
                    node,
                    "KL004",
                    "sorting by id(): object addresses differ between runs; "
                    "sort by a stable attribute (name, index, sequence number)",
                )

    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        """True for a bare ``id(...)`` call (not ``d[id(x)]`` lookups)."""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        ordering = any(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in node.ops
        )
        # Only flag when an id() call is itself being ordered; indexing a
        # dict/list *by* id and comparing the stored values is legitimate.
        if ordering and any(self._is_id_call(arg) for arg in operands):
            self._flag(
                node,
                "KL004",
                "ordering comparison on id(): object addresses differ "
                "between runs; compare a stable attribute instead",
            )
        self.generic_visit(node)

    # -- KL005: float accumulation into watermark/slack state --------------

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            target = node.target
            name: Optional[str] = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is not None and _KL005_NAME.search(name):
                value_is_int = isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, int
                )
                if not value_is_int:
                    self._flag(
                        node,
                        "KL005",
                        f"float accumulation into {name!r}: repeated += "
                        "drifts; compute origin + k * period from an "
                        "integer step count",
                    )
        self.generic_visit(node)


def lint_source(
    source: str,
    filename: str = "<string>",
    allowed: AbstractSet[str] = frozenset(),
) -> Report:
    """Lint one source blob; ``allowed`` suppresses whole rule codes."""
    report = Report()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add(
            "KL000",
            f"syntax error: {exc.msg}",
            file=filename,
            line=exc.lineno or 0,
            col=exc.offset or 0,
        )
        return report
    visitor = _LintVisitor(filename)
    visitor.visit(tree)
    kept, suppressed = apply_suppressions(
        visitor.findings, parse_pragmas(source), allowed
    )
    report.diagnostics.extend(kept)
    report.record_suppressed(suppressed)
    return report


def _file_allowlist(
    path: Path, file_allowlist: Mapping[str, AbstractSet[str]]
) -> AbstractSet[str]:
    posix = path.as_posix()
    allowed: FrozenSet[str] = frozenset()
    for suffix, codes in sorted(file_allowlist.items()):
        if posix.endswith(suffix):
            allowed = allowed | frozenset(codes)
    # Scoped rules: active only under their path fragment, suppressed
    # wholesale everywhere else.
    for code, fragment in sorted(RULE_SCOPES.items()):
        if fragment not in posix:
            allowed = allowed | frozenset({code})
    return allowed


def lint_file(
    path: Path,
    file_allowlist: Mapping[str, AbstractSet[str]] = DEFAULT_FILE_ALLOWLIST,
) -> Report:
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source, filename=str(path), allowed=_file_allowlist(path, file_allowlist)
    )


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    files = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def lint_paths(
    paths: Iterable[Path],
    file_allowlist: Mapping[str, AbstractSet[str]] = DEFAULT_FILE_ALLOWLIST,
) -> Report:
    """Lint every ``*.py`` under ``paths``; returns the merged report."""
    report = Report()
    for path in iter_python_files(paths):
        report.extend(lint_file(path, file_allowlist))
    return report


def _render_rules() -> str:
    width = max(len(code) for code in RULES)
    return "\n".join(
        f"{code:{width}s}  {summary}" for code, summary in sorted(RULES.items())
    )


def run_lint(
    paths: Sequence[str],
    output_format: str = "text",
    quiet: bool = False,
    state: bool = False,
) -> Tuple[Report, int]:
    """Shared driver for the console script and ``repro-bench lint``.

    Returns ``(report, exit_code)``; prints the rendered report unless
    ``quiet``. Exit code 0 = clean, 1 = findings, 2 = no files found.
    With ``state=True`` the state-contract analyzer (KS2xx/KW3xx rules,
    :mod:`repro.analysis.statecheck`) runs over the same paths and its
    findings are merged into the report.
    """
    files = iter_python_files([Path(p) for p in paths])
    if not files:
        if not quiet:
            print(f"repro-lint: no python files under {list(paths)!r}", file=sys.stderr)
        return Report(), 2
    report = lint_paths([Path(p) for p in paths])
    if state:
        from repro.analysis import statecheck

        report.extend(statecheck.check_paths([Path(p) for p in paths]))
    if not quiet:
        if output_format == "json":
            print(report.to_json())
        elif report.diagnostics:
            print(report.render_text())
        else:
            suffix = " (lint + state contract)" if state else ""
            print(f"repro-lint: {len(files)} file(s) clean{suffix}")
    return report, (1 if report.diagnostics else 0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism linter for the Klink reproduction tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", dest="output_format"
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="CI mode: identical checks; documents the exit-code contract "
        "(0 clean, 1 findings, 2 usage error)",
    )
    parser.add_argument(
        "--state",
        action="store_true",
        help="also run the state-contract analyzer (KS2xx/KW3xx rules)",
    )
    parser.add_argument(
        "--rules", action="store_true", help="list rule codes and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.rules:
        print(_render_rules())
        return 0
    _, code = run_lint(
        args.paths, output_format=args.output_format, state=args.state
    )
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
