"""Static validation of query plans before execution.

Misconfigured query plans — cycles, dangling channels, keyed windows
without a key selector, watermark sources that can never unblock a
window — surface at runtime as confusing failures deep into a
simulation (or worse, as silently-wrong results: an event-time window
fed by a watermark-less source simply never fires). This module checks
a query's operator graph *before* ``Engine.run``, in the spirit of
dataflow well-formedness checking (Flo, Laddad et al. 2024) and
pre-deployment validation as a resiliency pillar (StreamShield 2026).

Diagnostics carry stable ``KP...`` codes (see :data:`PLAN_RULES`).
``error`` severities abort submission: :class:`PlanValidationError`
(a ``ValueError`` subclass) is raised by ``Query`` construction for
structural errors and by ``Engine``/``DistributedEngine`` for the full
check, unless constructed with ``validate=False``.

Entry points:

* :func:`check_structure` — graph-shape checks over an operator list
  (usable before a ``Query`` exists).
* :func:`check_query` — the full pass over a constructed ``Query``.
* :func:`validate_queries` — check many queries, raise on any error.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.report import Report
from repro.spe.chaining import FusedOperator, fusible_runs, is_stateless
from repro.spe.operators import (
    KeyByOperator,
    Operator,
    SinkOperator,
    WindowedAggregate,
    _WindowedOperatorBase,
)
from repro.spe.windows import CountWindows, SlidingEventTimeWindows

#: rule code -> one-line summary (rendered by the docs and ``--rules``)
PLAN_RULES: Dict[str, str] = {
    "KP101": "cycle in the operator graph",
    "KP102": "operator output feeds a channel outside the plan (dangling)",
    "KP103": "operator not wired (directly or transitively) to the sink",
    "KP104": "input channel is never fed by a source binding or upstream operator",
    "KP105": "sink misplacement (missing, not last, or has an output)",
    "KP106": "operator list is not in topological order",
    "KP110": "keyed window without a key selector upstream",
    "KP111": "event-time window unreachable by watermarks",
    "KP112": "count-window assigner on an event-time window operator",
    "KP113": "negative watermark lateness (watermarks would outrun generation)",
    "KP114": "watermark lateness below the network delay bound (late drops)",
    "KP115": "watermark period exceeds the window size (bursty firing)",
    "KP116": "fused chain contains a stateful or multi-input member",
    "KP117": "duplicate operator name",
    "KP118": "two watermark authorities (source and mid-pipeline generator)",
    "KP120": "per-event cost outside sane bounds",
    "KP121": "selectivity outside sane bounds",
    "KP122": "fusible stateless run left unfused (advice)",
}

#: sanity bounds for declared operator parameters (KP120/KP121)
MAX_SANE_COST_MS = 100.0
MAX_SANE_SELECTIVITY = 100.0


class PlanValidationError(ValueError):
    """Raised when a plan fails validation; carries the full report.

    Subclasses ``ValueError`` so existing callers catching construction
    errors keep working.
    """

    def __init__(self, report: Report) -> None:
        self.report = report
        errors = report.errors
        summary = "; ".join(d.render() for d in errors[:5])
        if len(errors) > 5:
            summary += f"; ... ({len(errors) - 5} more)"
        super().__init__(f"invalid query plan: {summary}")


# -- graph helpers -----------------------------------------------------------


def build_downstream_map(
    operators: Sequence[Operator],
) -> Tuple[Dict[Operator, Optional[Operator]], List[Operator]]:
    """Map each operator to the operator consuming its output.

    Returns ``(downstream, dangling)`` where ``dangling`` lists operators
    whose output channel is owned by no operator in the plan.
    """
    channel_owner: Dict[int, Operator] = {}
    for op in operators:
        for ch in op.inputs:
            channel_owner[id(ch)] = op
    downstream: Dict[Operator, Optional[Operator]] = {}
    dangling: List[Operator] = []
    for op in operators:
        if op.output is None:
            downstream[op] = None
        else:
            owner = channel_owner.get(id(op.output))
            downstream[op] = owner
            if owner is None:
                dangling.append(op)
    return downstream, dangling


def _upstream_map(
    operators: Sequence[Operator],
    downstream: Dict[Operator, Optional[Operator]],
) -> Dict[Operator, List[Operator]]:
    upstream: Dict[Operator, List[Operator]] = {op: [] for op in operators}
    for op in operators:
        down = downstream.get(op)
        if down is not None and down in upstream:
            upstream[down].append(op)
    return upstream


def _ancestors(
    op: Operator, upstream: Dict[Operator, List[Operator]]
) -> List[Operator]:
    """All transitive upstream operators of ``op`` (cycle-safe)."""
    seen: List[Operator] = []
    frontier = list(upstream.get(op, ()))
    while frontier:
        current = frontier.pop()
        if any(current is s for s in seen):
            continue
        seen.append(current)
        frontier.extend(upstream.get(current, ()))
    return seen


# -- structural checks -------------------------------------------------------


def check_structure(
    operators: Sequence[Operator], sink: Optional[SinkOperator] = None
) -> Report:
    """Graph-shape checks: DAG-ness, wiring, sink placement, topo order."""
    report = Report()
    operators = list(operators)
    if not operators:
        report.add("KP105", "plan has no operators", where="<plan>")
        return report
    if sink is None and isinstance(operators[-1], SinkOperator):
        sink = operators[-1]
    if sink is None or not any(op is sink for op in operators):
        report.add("KP105", "sink must appear in the operator list", where="<plan>")
        return report
    if operators[-1] is not sink:
        report.add(
            "KP105",
            "operators must be topologically ordered with the sink last",
            where=sink.name,
        )
    if sink.output is not None:
        report.add("KP105", "sink must not have an output", where=sink.name)

    downstream, dangling = build_downstream_map(operators)
    for op in dangling:
        report.add(
            "KP102",
            f"operator {op.name!r} outputs to a channel outside the query",
            where=op.name,
        )

    # Cycle detection: follow the (unique) downstream pointer from every
    # operator; revisiting a node on the same walk is a cycle.
    position = {id(op): i for i, op in enumerate(operators)}
    cyclic: List[str] = []
    for op in operators:
        slow: Optional[Operator] = op
        trail: List[int] = []
        while slow is not None:
            if id(slow) in trail:
                if op.name not in cyclic:
                    cyclic.append(op.name)
                break
            trail.append(id(slow))
            slow = downstream.get(slow)
    if cyclic:
        report.add(
            "KP101",
            f"operator graph contains a cycle through: {', '.join(cyclic)}",
            where=cyclic[0],
        )

    # Every non-sink operator must reach the sink (finite walk thanks to
    # the cycle check above: walks are cut at the first revisit).
    for op in operators:
        if op is sink or op.name in cyclic or op in dangling:
            continue
        current: Optional[Operator] = op
        visited: List[int] = []
        while current is not None and id(current) not in visited:
            visited.append(id(current))
            if current is sink:
                break
            current = downstream.get(current)
        else:
            report.add(
                "KP103",
                f"operator {op.name!r} is not wired to the sink",
                where=op.name,
            )

    # Topological order of the list (schedulers and cost propagation
    # assume upstream-before-downstream).
    for op in operators:
        down = downstream.get(op)
        if down is not None and position[id(down)] <= position[id(op)]:
            report.add(
                "KP106",
                f"operators out of topological order: {op.name} -> {down.name}",
                where=op.name,
            )

    names_seen: Dict[str, int] = {}
    for op in operators:
        names_seen[op.name] = names_seen.get(op.name, 0) + 1
    for name, count in sorted(names_seen.items()):
        if count > 1:
            report.add(
                "KP117",
                f"operator name {name!r} used {count} times; diagnostics "
                "and fault targeting match operators by name",
                severity="warning",
                where=name,
            )
    return report


# -- semantic checks ---------------------------------------------------------


def _path_downstream(
    entry: Operator, downstream: Dict[Operator, Optional[Operator]]
) -> List[Operator]:
    """Operators on the walk from ``entry`` to the plan's end (cycle-safe)."""
    path: List[Operator] = []
    current: Optional[Operator] = entry
    while current is not None and not any(current is p for p in path):
        path.append(current)
        current = downstream.get(current)
    return path


def _is_watermark_generator(op: Operator) -> bool:
    # Matched by name to keep this module import-light (chaining.py uses
    # the same trick for ReorderBuffer).
    return type(op).__name__ == "WatermarkGeneratorOperator"


def check_sources(
    bindings: Sequence[object],
    operators: Sequence[Operator],
    downstream: Dict[Operator, Optional[Operator]],
) -> Report:
    """Per-source checks: watermark reachability and lateness sanity."""
    report = Report()
    bound_channels = {id(b.channel) for b in bindings}  # type: ignore[attr-defined]

    for binding in bindings:
        spec = binding.spec  # type: ignore[attr-defined]
        entry = binding.operator  # type: ignore[attr-defined]
        where = f"source {spec.name!r}"
        path = _path_downstream(entry, downstream)
        windowed = [op for op in path if isinstance(op, _WindowedOperatorBase)]
        generators = [op for op in path if _is_watermark_generator(op)]

        if spec.lateness_ms < 0:
            report.add(
                "KP113",
                f"negative lateness {spec.lateness_ms} ms: watermarks would "
                "carry timestamps ahead of generation, declaring in-flight "
                "events late",
                where=where,
            )
        else:
            bound = getattr(spec.delay_model, "bound", None)
            if (
                bound is not None
                and math.isfinite(bound)
                and spec.lateness_ms < bound
            ):
                report.add(
                    "KP114",
                    f"lateness {spec.lateness_ms:g} ms is below the delay "
                    f"model bound {bound:g} ms: events delayed past the "
                    "allowance will be dropped as late",
                    severity="warning",
                    where=where,
                )

        if windowed:
            first_window = windowed[0]
            gen_upstream = [
                op
                for op in generators
                if path.index(op) < path.index(first_window)
            ]
            if not spec.emit_watermarks and not gen_upstream:
                report.add(
                    "KP111",
                    f"source emits no watermarks and no watermark generator "
                    f"precedes window {first_window.name!r}: its panes can "
                    "never fire",
                    where=where,
                )
            if spec.emit_watermarks and gen_upstream:
                report.add(
                    "KP118",
                    f"both the source and {gen_upstream[0].name!r} generate "
                    "watermarks; configure emit_watermarks=False so exactly "
                    "one authority drives event time",
                    severity="warning",
                    where=where,
                )
            assigner = getattr(first_window, "assigner", None)
            if (
                isinstance(assigner, SlidingEventTimeWindows)
                and spec.emit_watermarks
                and spec.watermark_period_ms > assigner.size
            ):
                report.add(
                    "KP115",
                    f"watermark period {spec.watermark_period_ms:g} ms "
                    f"exceeds the window size {assigner.size:g} ms: each "
                    "watermark sweeps multiple panes at once and output "
                    "latency is dominated by the watermark period",
                    severity="warning",
                    where=where,
                )

    # Inputs never fed by a binding or an upstream output run dry forever.
    fed_channels = set(bound_channels)
    for op in operators:
        if op.output is not None:
            fed_channels.add(id(op.output))
    for op in operators:
        for i, ch in enumerate(op.inputs):
            if id(ch) not in fed_channels:
                report.add(
                    "KP104",
                    f"input {i} of operator {op.name!r} is never fed by a "
                    "source binding or an upstream operator",
                    severity="warning",
                    where=op.name,
                )
    return report


def check_windows(
    operators: Sequence[Operator],
    downstream: Dict[Operator, Optional[Operator]],
) -> Report:
    """Window-operator checks: assigner kinds and key selectors."""
    report = Report()
    upstream = _upstream_map(operators, downstream)
    for op in operators:
        if not isinstance(op, _WindowedOperatorBase):
            continue
        if isinstance(op.assigner, CountWindows):
            report.add(
                "KP112",
                f"window operator {op.name!r} uses a CountWindows assigner, "
                "which cannot assign by event-time range; use "
                "CountWindowedAggregate for count-based windows",
                where=op.name,
            )
        if isinstance(op, WindowedAggregate) and op.output_events_per_pane > 1.0:
            keyed_upstream = any(
                isinstance(a, KeyByOperator) for a in _ancestors(op, upstream)
            )
            if op.key_by is None and not keyed_upstream:
                report.add(
                    "KP110",
                    f"window {op.name!r} emits "
                    f"{op.output_events_per_pane:g} records per pane "
                    "(per-key outputs) but declares no key selector: pass "
                    "key_by=... or place a KeyByOperator upstream",
                    where=op.name,
                )
    return report


def check_costs(operators: Sequence[Operator]) -> Report:
    """Declared cost/selectivity sanity bounds (warnings only)."""
    report = Report()
    for op in operators:
        if op.cost_per_event_ms > MAX_SANE_COST_MS:
            report.add(
                "KP120",
                f"cost {op.cost_per_event_ms:g} ms/event on {op.name!r} "
                f"exceeds {MAX_SANE_COST_MS:g} ms: a single batch would "
                "starve the scheduling cycle",
                severity="warning",
                where=op.name,
            )
        if op.selectivity > MAX_SANE_SELECTIVITY:
            report.add(
                "KP121",
                f"selectivity {op.selectivity:g} on {op.name!r} exceeds "
                f"{MAX_SANE_SELECTIVITY:g}: queue growth is explosive",
                severity="warning",
                where=op.name,
            )
    return report


def check_chaining(operators: Sequence[Operator]) -> Report:
    """Chaining legality and fusion opportunities."""
    report = Report()
    for op in operators:
        if isinstance(op, FusedOperator):
            for member in op.members:
                if not is_stateless(member):
                    report.add(
                        "KP116",
                        f"fused chain {op.name!r} contains stateful member "
                        f"{member.name!r}; stateful operators cannot be fused",
                        where=op.name,
                    )
                elif len(member.inputs) != 1:
                    report.add(
                        "KP116",
                        f"fused chain {op.name!r} contains multi-input "
                        f"member {member.name!r}",
                        where=op.name,
                    )
    for run in fusible_runs(operators):
        names = ", ".join(op.name for op in run)
        report.add(
            "KP122",
            f"stateless run [{names}] is fusible: fuse_stateless(...) would "
            "cut per-record queue handling",
            severity="advice",
            where=run[0].name,
        )
    return report


# -- entry points ------------------------------------------------------------


def check_query(query: object) -> Report:
    """Full static validation of one constructed ``Query``.

    Accepts any object exposing ``operators``, ``sink``, and ``bindings``
    (duck-typed to keep this module free of a ``repro.spe.query`` import).
    """
    operators: Sequence[Operator] = query.operators  # type: ignore[attr-defined]
    sink: SinkOperator = query.sink  # type: ignore[attr-defined]
    bindings: Sequence[object] = query.bindings  # type: ignore[attr-defined]
    report = check_structure(operators, sink)
    downstream, _ = build_downstream_map(operators)
    report.extend(check_sources(bindings, operators, downstream))
    report.extend(check_windows(operators, downstream))
    report.extend(check_costs(operators))
    report.extend(check_chaining(operators))
    return report


def validate_queries(
    queries: Iterable[object], raise_on_error: bool = True
) -> Report:
    """Validate a set of queries (as at engine submission).

    Also checks cross-query constraints (duplicate query ids). Raises
    :class:`PlanValidationError` when any error-severity diagnostic is
    found and ``raise_on_error`` is set.
    """
    report = Report()
    ids_seen: Dict[str, int] = {}
    for query in queries:
        qid = getattr(query, "query_id", "<query>")
        ids_seen[qid] = ids_seen.get(qid, 0) + 1
        for diag in check_query(query):
            where = f"{qid}: {diag.where}" if diag.where else qid
            report.add(
                diag.code,
                diag.message,
                severity=diag.severity,
                where=where,
            )
    for qid, count in sorted(ids_seen.items()):
        if count > 1:
            report.add(
                "KP117",
                f"duplicate query id {qid!r} ({count} queries)",
                where=qid,
            )
    if raise_on_error and not report.ok:
        raise PlanValidationError(report)
    return report
