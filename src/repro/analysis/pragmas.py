"""Inline-pragma parsing shared by every analysis pass.

Two pragma forms are recognised, both as trailing comments:

``# klink: allow[CODE, ...]``
    Suppresses findings with the listed rule codes on that line
    (``allow[*]`` suppresses everything). Used by the determinism
    linter (KL...), the plan validator (KP...), and the state-contract
    analyzer (KS.../KW...).

``# klink: transient[reason]``
    Declares the attribute assigned on that line *transient*: it is
    deliberately excluded from the checkpoint snapshot contract, so the
    KS201 snapshot-coverage rule skips it. The reason is mandatory and
    is echoed in ``--format json`` output so reviewers can audit why a
    field escapes capture/restore.

Suppression is counted, not silent: :func:`apply_suppressions` returns
both the surviving findings and a per-code tally of what the pragmas and
file allowlists swallowed, which the reporting layer surfaces in CI
artifacts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, List, Mapping, Tuple

from repro.analysis.report import Diagnostic

_ALLOW_PRAGMA = re.compile(r"#\s*klink:\s*allow\[([A-Za-z0-9_*,\s]+)\]")
_TRANSIENT_PRAGMA = re.compile(r"#\s*klink:\s*transient\[([^\]]*)\]")


@dataclass(frozen=True)
class Pragmas:
    """Per-line pragma annotations parsed from one source file."""

    #: line number -> rule codes allowed on that line (may contain "*")
    allow: Mapping[int, FrozenSet[str]] = field(default_factory=dict)
    #: line number -> reason string from a ``transient[...]`` pragma
    transient: Mapping[int, str] = field(default_factory=dict)

    def allows(self, line: int, code: str) -> bool:
        """True when a pragma on ``line`` suppresses ``code``."""
        codes = self.allow.get(line)
        return codes is not None and (code in codes or "*" in codes)

    def transient_reason(self, line: int) -> str:
        """The ``transient[...]`` reason on ``line``; "" when absent."""
        return self.transient.get(line, "")

    def is_transient(self, line: int) -> bool:
        return line in self.transient


def parse_pragmas(source: str) -> Pragmas:
    """Parse every ``# klink:`` pragma in ``source`` by line number."""
    allow: Dict[int, FrozenSet[str]] = {}
    transient: Dict[int, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_PRAGMA.search(line)
        if match:
            allow[lineno] = frozenset(
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            )
        match = _TRANSIENT_PRAGMA.search(line)
        if match:
            transient[lineno] = match.group(1).strip()
    return Pragmas(allow=allow, transient=transient)


def parse_allow_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    """Back-compat helper: line -> allowed rule codes (allow form only)."""
    return dict(parse_pragmas(source).allow)


def apply_suppressions(
    findings: List[Diagnostic],
    pragmas: Pragmas,
    allowed: AbstractSet[str] = frozenset(),
) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """Drop findings covered by pragmas or a whole-rule allowlist.

    Returns ``(kept, suppressed)`` where ``suppressed`` maps rule code to
    the number of findings swallowed (by either mechanism) so reports can
    account for every suppression.
    """
    kept: List[Diagnostic] = []
    suppressed: Dict[str, int] = {}
    for diag in findings:
        line = diag.line if diag.line is not None else -1
        if diag.code in allowed or pragmas.allows(line, diag.code):
            suppressed[diag.code] = suppressed.get(diag.code, 0) + 1
            continue
        kept.append(diag)
    return kept, suppressed
