"""Shared diagnostic and reporting infrastructure for analysis passes.

The analysis passes — the determinism linter (:mod:`repro.analysis.lint`),
the query-plan validator (:mod:`repro.analysis.plan_check`), and the
state-contract analyzer (:mod:`repro.analysis.statecheck`) — emit
:class:`Diagnostic` records collected into a :class:`Report`. A diagnostic
carries a stable rule code (``KL...`` for lint rules, ``KP...`` for plan
rules, ``KS...``/``KW...`` for state-contract rules), a severity, and
either a source location (file/line/col) or a plan location (``where``:
the operator or source it concerns). The code prefix determines the rule
*category* (:func:`rule_category`), surfaced in JSON output so CI
artifacts stay diffable across analyzers.

Severities:

* ``error`` — the construct is forbidden / the plan cannot run correctly.
  Errors make ``Report.ok`` false and fail CI / engine submission.
* ``warning`` — suspicious but runnable; reported, never blocking.
* ``advice`` — an optimization opportunity (e.g. a fusible operator run).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Union

SEVERITIES = ("error", "warning", "advice")

#: rule-code prefix -> category label (longest prefix wins)
CATEGORIES: Dict[str, str] = {
    "KL": "determinism",
    "KP": "plan",
    "KS": "state",
    "KW": "worker-purity",
}


def rule_category(code: str) -> str:
    """Category label for a rule code (``"other"`` for unknown prefixes)."""
    for prefix, label in CATEGORIES.items():
        if code.startswith(prefix):
            return label
    return "other"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of an analysis pass."""

    code: str
    message: str
    severity: str = "error"
    file: Optional[str] = None
    line: Optional[int] = None
    col: Optional[int] = None
    #: plan-space location (operator / source / query name) when the
    #: finding has no file position.
    where: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: CODE message``)."""
        if self.file is not None:
            line = self.line if self.line is not None else 0
            col = self.col if self.col is not None else 0
            prefix = f"{self.file}:{line}:{col}"
        elif self.where is not None:
            prefix = self.where
        else:
            prefix = "<plan>"
        return f"{prefix}: {self.code} [{self.severity}] {self.message}"

    @property
    def category(self) -> str:
        return rule_category(self.code)

    def to_dict(self) -> Dict[str, Union[str, int, None]]:
        payload = {k: v for k, v in asdict(self).items() if v is not None}
        payload["category"] = self.category
        return payload


class Report:
    """An ordered collection of diagnostics with rendering helpers."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        #: rule code -> findings swallowed by pragmas / file allowlists
        self.suppressed: Dict[str, int] = {}

    # -- collection --------------------------------------------------------

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: str = "error",
        file: Optional[str] = None,
        line: Optional[int] = None,
        col: Optional[int] = None,
        where: Optional[str] = None,
    ) -> Diagnostic:
        diag = Diagnostic(
            code=code,
            message=message,
            severity=severity,
            file=file,
            line=line,
            col=col,
            where=where,
        )
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: Union["Report", Iterable[Diagnostic]]) -> "Report":
        if isinstance(other, Report):
            self.diagnostics.extend(other.diagnostics)
            self.record_suppressed(other.suppressed)
        else:
            self.diagnostics.extend(other)
        return self

    def record_suppressed(self, counts: Dict[str, int]) -> None:
        """Merge per-code suppression tallies into this report."""
        for code, count in counts.items():
            self.suppressed[code] = self.suppressed.get(code, 0) + count

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity("error")

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity("warning")

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings/advice allowed)."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    # -- rendering ---------------------------------------------------------

    def render_text(self) -> str:
        if not self.diagnostics:
            return "no findings"
        lines = [d.render() for d in self.diagnostics]
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_adv = len(self.by_severity("advice"))
        lines.append(
            f"{len(self.diagnostics)} finding(s): "
            f"{n_err} error(s), {n_warn} warning(s), {n_adv} advice"
        )
        return "\n".join(lines)

    def category_counts(self) -> Dict[str, int]:
        """Finding counts keyed by rule category, sorted by label."""
        counts: Dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.category] = counts.get(diag.category, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "counts": {
                    sev: len(self.by_severity(sev)) for sev in SEVERITIES
                },
                "categories": self.category_counts(),
                "suppressed": dict(sorted(self.suppressed.items())),
                "suppressed_total": sum(self.suppressed.values()),
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
            sort_keys=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Report(errors={len(self.errors)}, total={len(self.diagnostics)})"
