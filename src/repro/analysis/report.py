"""Shared diagnostic and reporting infrastructure for analysis passes.

Both analysis passes — the determinism linter (:mod:`repro.analysis.lint`)
and the query-plan validator (:mod:`repro.analysis.plan_check`) — emit
:class:`Diagnostic` records collected into a :class:`Report`. A diagnostic
carries a stable rule code (``KL...`` for lint rules, ``KP...`` for plan
rules), a severity, and either a source location (file/line/col, lint) or
a plan location (``where``: the operator or source it concerns).

Severities:

* ``error`` — the construct is forbidden / the plan cannot run correctly.
  Errors make ``Report.ok`` false and fail CI / engine submission.
* ``warning`` — suspicious but runnable; reported, never blocking.
* ``advice`` — an optimization opportunity (e.g. a fusible operator run).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Union

SEVERITIES = ("error", "warning", "advice")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of an analysis pass."""

    code: str
    message: str
    severity: str = "error"
    file: Optional[str] = None
    line: Optional[int] = None
    col: Optional[int] = None
    #: plan-space location (operator / source / query name) when the
    #: finding has no file position.
    where: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: CODE message``)."""
        if self.file is not None:
            line = self.line if self.line is not None else 0
            col = self.col if self.col is not None else 0
            prefix = f"{self.file}:{line}:{col}"
        elif self.where is not None:
            prefix = self.where
        else:
            prefix = "<plan>"
        return f"{prefix}: {self.code} [{self.severity}] {self.message}"

    def to_dict(self) -> Dict[str, Union[str, int, None]]:
        return {k: v for k, v in asdict(self).items() if v is not None}


class Report:
    """An ordered collection of diagnostics with rendering helpers."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    # -- collection --------------------------------------------------------

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: str = "error",
        file: Optional[str] = None,
        line: Optional[int] = None,
        col: Optional[int] = None,
        where: Optional[str] = None,
    ) -> Diagnostic:
        diag = Diagnostic(
            code=code,
            message=message,
            severity=severity,
            file=file,
            line=line,
            col=col,
            where=where,
        )
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: Union["Report", Iterable[Diagnostic]]) -> "Report":
        if isinstance(other, Report):
            self.diagnostics.extend(other.diagnostics)
        else:
            self.diagnostics.extend(other)
        return self

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity("error")

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity("warning")

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings/advice allowed)."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    # -- rendering ---------------------------------------------------------

    def render_text(self) -> str:
        if not self.diagnostics:
            return "no findings"
        lines = [d.render() for d in self.diagnostics]
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_adv = len(self.by_severity("advice"))
        lines.append(
            f"{len(self.diagnostics)} finding(s): "
            f"{n_err} error(s), {n_warn} warning(s), {n_adv} advice"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "counts": {
                    sev: len(self.by_severity(sev)) for sev in SEVERITIES
                },
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Report(errors={len(self.errors)}, total={len(self.diagnostics)})"
