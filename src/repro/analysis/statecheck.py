"""State-contract analyzer: snapshot coverage, schema drift, worker purity.

PR 6 made failover correctness hinge on a hand-maintained contract:
:mod:`repro.resilience.checkpoint` must capture *every* mutable field of
the engine, operators, channels, bindings, schedulers, and metric
ledgers, or a restored run silently diverges from the original. This
module checks that contract structurally instead of by runtime luck.

========  ==============================================================
 code      rule
========  ==============================================================
 KS200     the contract source (``resilience/checkpoint.py``) could not
           be located or parsed under the given paths.
 KS201     snapshot coverage: a checkpointed class mutates ``self.attr``
           but no capture helper reads it and no restore helper writes
           it; annotate deliberate omissions with
           ``# klink: transient[reason]``.
 KS202     capture/restore asymmetry: a field is captured but never
           mentioned on restore, or written by restore but never
           captured.
 KS210     the captured field set changed but ``SCHEMA_VERSION`` did
           not: old snapshots would be mis-applied. Bump the version,
           then refresh the fingerprint.
 KS211     ``schema_fingerprint.json`` is missing or stale relative to
           the code; regenerate with ``--update-fingerprint``.
 KS221     ``json.dumps``/``json.dump`` without ``sort_keys=True`` in a
           canonical-serialization path (snapshot bytes must be a
           state-equality check).
 KS222     unordered dict/set iteration materialized into a *list* that
           feeds serialized output (key order does not survive a list).
 KS223     float accumulation into a serialized cursor/deadline field
           (``+=`` drift makes restored state diverge from live state).
 KW301     a function dispatched to ``run_many(jobs=N)`` worker
           processes (or cached under the code fingerprint) reads a
           module-level mutable global; spawn workers each get a fresh
           module, so the value silently differs from the parent's.
 KW302     an unpicklable callable (lambda / nested function) is handed
           to a multiprocessing pool.
========  ==============================================================

The analyzer never imports the code under test: the contract is
extracted from the AST of ``checkpoint.py`` (which attribute names each
``_*_state`` / ``_restore_*`` helper touches on its subject, including
names expanded from module-level tuples such as ``_METRIC_SCALARS``) and
compared against an AST walk of every checkpointed class. Scheduler
coverage comes from each class's ``snapshot_state``/``restore_state``
pair, resolved through single-inheritance bases.

Run it as ``python -m repro.analysis.statecheck [paths]``,
``repro-bench statecheck``, or merged into the linter with
``repro-lint --state``. Exit codes: 0 clean, 1 findings, 2 usage error
(contract source not found). ``--update-fingerprint`` rewrites
``src/repro/resilience/schema_fingerprint.json`` — but still fails with
KS210 if the field set changed without a ``SCHEMA_VERSION`` bump.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.pragmas import Pragmas, apply_suppressions, parse_pragmas
from repro.analysis.report import Diagnostic, Report

#: rule code -> one-line summary (rendered by ``--rules`` and the docs)
STATE_RULES: Dict[str, str] = {
    "KS200": "contract source resilience/checkpoint.py not found or unparsable",
    "KS201": "mutable attribute of a checkpointed class is not captured (mark transient[reason] if deliberate)",
    "KS202": "capture/restore field-set asymmetry in a snapshot helper pair",
    "KS210": "captured field set changed without a SCHEMA_VERSION bump",
    "KS211": "schema_fingerprint.json missing or stale (regenerate with --update-fingerprint)",
    "KS221": "json.dumps without sort_keys=True in a canonical-serialization path",
    "KS222": "unordered dict/set iteration materialized into serialized list output",
    "KS223": "float accumulation into a serialized cursor/deadline field",
    "KW301": "worker-dispatched function reads a module-level mutable global",
    "KW302": "unpicklable callable (lambda/nested def) dispatched to a worker pool",
}

#: path suffix of the contract source, relative to the package root
_CONTRACT_SOURCE = "resilience/checkpoint.py"
#: checked-in fingerprint of the captured field set, next to the source
_FINGERPRINT_FILE = "resilience/schema_fingerprint.json"

#: files (by package-relative path) whose json output must be canonical
_SERIALIZER_FILES = ("resilience/checkpoint.py", "bench/cache.py")

#: pool method names whose first argument runs in a worker process
_POOL_DISPATCH_METHODS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "apply", "apply_async",
     "map_async", "starmap_async"}
)

#: extra worker-purity roots: functions whose cached results stand in for
#: execution (replayed from the result cache under the code fingerprint),
#: so they must behave identically in any process
_FINGERPRINT_ROOTS = frozenset({"run_experiment"})

#: method names that mutate their receiver in place
_MUTATOR_METHODS = frozenset(
    {"append", "extend", "add", "update", "pop", "popitem", "popleft",
     "appendleft", "clear", "remove", "discard", "insert", "setdefault",
     "sort", "reverse", "rotate"}
)

#: heapq functions that mutate their first argument
_HEAP_MUTATORS = frozenset(
    {"heappush", "heappop", "heapify", "heappushpop", "heapreplace"}
)

#: captured attr names matched by KS223 (serialized time cursors)
_CURSOR_NAME = re.compile(
    r"(time|until|deadline|origin|emit|clock|timestamp|_ts)$", re.IGNORECASE
)


# -- contract declaration ----------------------------------------------------


@dataclass(frozen=True)
class _EntrySpec:
    """One capture/restore helper pair in ``checkpoint.py`` and the
    classes whose state it is responsible for."""

    name: str
    #: function names on the capture side and the restore side
    capture_fns: Tuple[str, ...]
    restore_fns: Tuple[str, ...]
    #: parameter/alias names the helpers access the subject through
    roots: Tuple[str, ...]
    #: base class whose transitive subclasses (plus itself) are covered
    base_class: str
    #: treat dataclass field declarations as state needing coverage
    dataclass_fields: bool = False


#: the snapshot contract: which helper pair owns which class family
_ENTRY_SPECS: Tuple[_EntrySpec, ...] = (
    _EntrySpec("engine", ("capture", "_schedulers"), ("restore", "_schedulers"),
               ("engine",), "Engine"),
    _EntrySpec("operator", ("_operator_state",), ("_restore_operator",),
               ("op",), "Operator"),
    _EntrySpec("channel", ("_channel_state",), ("_restore_channel",),
               ("channel",), "Channel"),
    _EntrySpec("binding", ("_binding_state",), ("_restore_binding",),
               ("binding",), "SourceBinding"),
    _EntrySpec("progress", ("_binding_state",), ("_restore_binding",),
               ("progress",), "StreamProgress"),
    _EntrySpec("cursor", ("_cursor_state",), ("_restore_cursor",),
               ("cursor",), "PeriodicCursor"),
    _EntrySpec("strategy", ("_strategy_state",), ("_restore_strategy",),
               ("strategy",), "WatermarkStrategy"),
    _EntrySpec("metrics", ("_metrics_state",), ("_restore_metrics",),
               ("metrics",), "RunMetrics", dataclass_fields=True),
    _EntrySpec("board", ("_board_state",), ("_restore_board",),
               ("board",), "ForwardingBoard"),
    _EntrySpec("lineage", ("capture_lineage",), ("restore_lineage",),
               ("tracker",), "LineageTracker"),
)


# -- parsed-module cache -----------------------------------------------------


@dataclass
class _Module:
    path: Path
    rel: str
    tree: ast.Module
    source: str
    pragmas: Pragmas
    #: module-level constants bound to tuples/lists of string literals
    str_constants: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @staticmethod
    def load(path: Path, rel: str) -> Optional["_Module"]:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError):
            return None
        module = _Module(path, rel, tree, source, parse_pragmas(source))
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, (ast.Tuple, ast.List))
            ):
                elements = node.value.elts
                if elements and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in elements
                ):
                    module.str_constants[node.targets[0].id] = tuple(
                        e.value for e in elements  # type: ignore[misc]
                    )
        return module


@dataclass
class _ClassInfo:
    name: str
    module: _Module
    node: ast.ClassDef
    bases: Tuple[str, ...]
    is_dataclass: bool


class _Tree:
    """All parsed modules of one package, with a class index."""

    def __init__(self, package_root: Path) -> None:
        self.package_root = package_root
        self.modules: List[_Module] = []
        self.classes: Dict[str, _ClassInfo] = {}
        for path in sorted(package_root.rglob("*.py")):
            rel = path.relative_to(package_root).as_posix()
            module = _Module.load(path, rel)
            if module is None:
                continue
            self.modules.append(module)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name not in self.classes:
                    self.classes[node.name] = _ClassInfo(
                        name=node.name,
                        module=module,
                        node=node,
                        bases=tuple(
                            base.id if isinstance(base, ast.Name) else base.attr
                            for base in node.bases
                            if isinstance(base, (ast.Name, ast.Attribute))
                        ),
                        is_dataclass=any(
                            (isinstance(d, ast.Name) and d.id == "dataclass")
                            or (
                                isinstance(d, ast.Call)
                                and isinstance(d.func, ast.Name)
                                and d.func.id == "dataclass"
                            )
                            for d in node.decorator_list
                        ),
                    )

    def module_for(self, rel_suffix: str) -> Optional[_Module]:
        for module in self.modules:
            if module.rel.endswith(rel_suffix):
                return module
        return None

    def family(self, base: str) -> List[_ClassInfo]:
        """``base`` plus every transitive subclass known to the tree."""
        members: List[_ClassInfo] = []
        names: Set[str] = {base}
        changed = True
        while changed:
            changed = False
            for info in self.classes.values():
                if info.name not in names and any(b in names for b in info.bases):
                    names.add(info.name)
                    changed = True
        for name in sorted(names):
            if name in self.classes:
                members.append(self.classes[name])
        return members

    def ancestors(self, name: str) -> List[_ClassInfo]:
        """``name`` then its base chain, nearest first (single-inheritance
        resolution over classes known to the tree)."""
        chain: List[_ClassInfo] = []
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            info = self.classes[current]
            chain.append(info)
            frontier.extend(info.bases)
        return chain


# -- access extraction (capture/restore helper side) -------------------------


@dataclass
class _AccessSet:
    """First-level attribute names a helper touches on its subject."""

    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)

    @property
    def all(self) -> Set[str]:
        return self.reads | self.writes

    def merge(self, other: "_AccessSet") -> None:
        self.reads |= other.reads
        self.writes |= other.writes


class _AccessVisitor(ast.NodeVisitor):
    """Collect ``root.attr`` accesses plus literal / constant-expanded
    ``getattr``/``setattr`` calls inside one function body."""

    def __init__(self, roots: FrozenSet[str], constants: Dict[str, Tuple[str, ...]]) -> None:
        self.roots = roots
        self.constants = constants
        self.access = _AccessSet()
        #: loop variable -> expansion of the constant tuple it ranges over
        self._loop_vars: Dict[str, Tuple[str, ...]] = {}

    def _bind_loop_var(self, target: ast.expr, source: ast.expr) -> None:
        if isinstance(target, ast.Name) and isinstance(source, ast.Name):
            names = self.constants.get(source.id)
            if names:
                self._loop_vars[target.id] = names

    def visit_For(self, node: ast.For) -> None:
        self._bind_loop_var(node.target, node.iter)
        self.generic_visit(node)

    def _visit_generators(self, generators: List[ast.comprehension]) -> None:
        for gen in generators:
            self._bind_loop_var(gen.target, gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_generators(node.generators)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id in self.roots:
            if isinstance(node.ctx, ast.Store):
                self.access.writes.add(node.attr)
            else:
                self.access.reads.add(node.attr)
        self.generic_visit(node)

    def _attr_arg_names(self, arg: ast.expr) -> Tuple[str, ...]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return (arg.value,)
        if isinstance(arg, ast.Name):
            if arg.id in self._loop_vars:
                return self._loop_vars[arg.id]
            if arg.id in self.constants:
                return self.constants[arg.id]
        return ()

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("getattr", "setattr")
            and len(node.args) >= 2
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in self.roots
        ):
            names = self._attr_arg_names(node.args[1])
            if node.func.id == "getattr":
                self.access.reads.update(names)
            else:
                self.access.writes.update(names)
        self.generic_visit(node)


def _function_defs(module: _Module) -> Dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in module.tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _extract_access(
    module: _Module, fn_names: Iterable[str], roots: Iterable[str]
) -> _AccessSet:
    functions = _function_defs(module)
    access = _AccessSet()
    for fn_name in fn_names:
        fn = functions.get(fn_name)
        if fn is None:
            continue
        visitor = _AccessVisitor(frozenset(roots), module.str_constants)
        for stmt in fn.body:
            visitor.visit(stmt)
        access.merge(visitor.access)
    return access


def _method_access(info: _ClassInfo, method: str) -> Optional[_AccessSet]:
    """Self-access set of one method of ``info``; None when not defined."""
    for node in info.node.body:
        if isinstance(node, ast.FunctionDef) and node.name == method:
            visitor = _AccessVisitor(frozenset({"self"}), info.module.str_constants)
            for stmt in node.body:
                visitor.visit(stmt)
            return visitor.access
    return None


# -- mutable-attribute extraction (class side) -------------------------------


@dataclass
class _MutableAttr:
    name: str
    line: int
    #: every line this attribute is assigned/mutated on (pragma anchors)
    lines: List[int]
    how: str


class _ClassStateVisitor(ast.NodeVisitor):
    """Find attributes a class mutates after construction.

    An attribute counts as *state* when the class (a) plainly assigns it
    outside ``__init__``/``__post_init__``, (b) augments it anywhere, or
    (c) writes through it (``self.x[k] = ...``, ``self.x.y = ...``) or
    calls a known in-place mutator / heapq function on it outside the
    constructor. Arbitrary method calls are deliberately not counted:
    observer attachments (``self.audit.on_cycle()``) are not state.
    """

    _INIT_METHODS = frozenset({"__init__", "__post_init__"})

    def __init__(self) -> None:
        self.attrs: Dict[str, _MutableAttr] = {}
        self._in_init = False

    def _record(self, name: str, line: int, how: str) -> None:
        entry = self.attrs.get(name)
        if entry is None:
            self.attrs[name] = _MutableAttr(name, line, [line], how)
        else:
            entry.lines.append(line)

    def _self_root(self, node: ast.expr) -> Optional[str]:
        """First-level attribute name when ``node`` is rooted at self."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            parent = node.value
            if (
                isinstance(node, ast.Attribute)
                and isinstance(parent, ast.Name)
                and parent.id == "self"
            ):
                return node.attr
            node = parent
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        was_init = self._in_init
        self._in_init = node.name in self._INIT_METHODS
        self.generic_visit(node)
        self._in_init = was_init

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _handle_store(self, target: ast.expr, line: int, augmented: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_store(element, line, augmented)
            return
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                # plain self.x = ... : state only outside the constructor
                # (augmented assignment is state anywhere)
                if augmented or not self._in_init:
                    self._record(target.attr, line, "assign")
                return
            name = self._self_root(target)
            if name is not None and not self._in_init:
                self._record(name, line, "write-through")
        elif isinstance(target, ast.Subscript):
            name = self._self_root(target)
            if name is not None and not self._in_init:
                self._record(name, line, "write-through")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_store(target, node.lineno, augmented=False)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_store(node.target, node.lineno, augmented=False)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_store(node.target, node.lineno, augmented=True)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._in_init:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
            ):
                name = self._self_root(func.value)
                if name is not None:
                    self._record(name, node.lineno, f".{func.attr}()")
            heap_name: Optional[str] = None
            if isinstance(func, ast.Name) and func.id in _HEAP_MUTATORS:
                heap_name = func.id
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _HEAP_MUTATORS
            ):
                heap_name = func.attr
            if heap_name is not None and node.args:
                name = self._self_root(node.args[0])
                if name is None and isinstance(node.args[0], ast.Attribute):
                    target = node.args[0]
                    if (
                        isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        name = target.attr
                if name is not None:
                    self._record(name, node.lineno, f"heapq.{heap_name}()")
        self.generic_visit(node)


def _mutable_attrs(info: _ClassInfo) -> Dict[str, _MutableAttr]:
    visitor = _ClassStateVisitor()
    for node in info.node.body:
        visitor.visit(node)
    return visitor.attrs


def _dataclass_fields(info: _ClassInfo) -> Dict[str, int]:
    """AnnAssign field declarations of a dataclass body (name -> line),
    skipping ClassVar annotations."""
    fields: Dict[str, int] = {}
    for node in info.node.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation)
            if "ClassVar" in annotation:
                continue
            fields[node.target.id] = node.lineno
    return fields


def _is_transient(info: _ClassInfo, attr: _MutableAttr) -> bool:
    return any(info.module.pragmas.is_transient(line) for line in attr.lines)


# -- KS201 / KS202: coverage and symmetry ------------------------------------


def _check_entry_coverage(
    tree: _Tree,
    contract_module: _Module,
    spec: _EntrySpec,
    report: Report,
) -> Set[str]:
    """Apply KS201/KS202 for one helper pair; returns the captured set."""
    capture = _extract_access(contract_module, spec.capture_fns, spec.roots)
    restore = _extract_access(contract_module, spec.restore_fns, spec.roots)

    # KS202: captured but never mentioned on restore / written by restore
    # but never captured. Restore-side pure reads (owner back-pointers,
    # maxlen lookups) are fine.
    for attr in sorted(capture.all - restore.all):
        report.add(
            "KS202",
            f"{spec.name}: field {attr!r} is captured by "
            f"{'/'.join(spec.capture_fns)} but never touched by "
            f"{'/'.join(spec.restore_fns)}",
            file=str(contract_module.path),
            where=f"{spec.name}.{attr}",
        )
    for attr in sorted(restore.writes - capture.all):
        report.add(
            "KS202",
            f"{spec.name}: field {attr!r} is written by "
            f"{'/'.join(spec.restore_fns)} but never captured by "
            f"{'/'.join(spec.capture_fns)}",
            file=str(contract_module.path),
            where=f"{spec.name}.{attr}",
        )

    covered = capture.all | restore.writes
    # KS201: every mutable attribute of every class in the family must be
    # captured or explicitly transient.
    for info in tree.family(spec.base_class):
        candidates: Dict[str, _MutableAttr] = dict(_mutable_attrs(info))
        if spec.dataclass_fields and info.is_dataclass:
            for name, line in _dataclass_fields(info).items():
                candidates.setdefault(name, _MutableAttr(name, line, [line], "field"))
        for name in sorted(candidates):
            attr = candidates[name]
            if name in covered:
                continue
            if _is_transient(info, attr):
                report.record_suppressed({"KS201": 1})
                continue
            report.add(
                "KS201",
                f"{info.name}.{name} is mutated ({attr.how}) but the "
                f"checkpoint {spec.name} contract never captures it; "
                "restored runs will diverge. Capture it in "
                f"{'/'.join(spec.capture_fns)} or mark the assignment "
                "# klink: transient[reason]",
                file=str(info.module.path),
                line=attr.line,
            )
    return covered


def _check_scheduler_coverage(tree: _Tree, report: Report) -> Dict[str, Set[str]]:
    """KS201/KS202 over every ``Scheduler.snapshot_state``/``restore_state``
    pair; returns per-class snapshot field sets for the fingerprint."""
    snapshot_sets: Dict[str, Set[str]] = {}
    for info in tree.family("Scheduler"):
        snapshot = _method_access(info, "snapshot_state")
        restore = _method_access(info, "restore_state")
        # KS202: a class overriding one side of the pair without the other
        # (base methods inherited for both sides is fine).
        if (snapshot is None) != (restore is None):
            defined, missing = (
                ("snapshot_state", "restore_state")
                if snapshot is not None
                else ("restore_state", "snapshot_state")
            )
            report.add(
                "KS202",
                f"{info.name} defines {defined} without {missing}: the "
                "checkpoint round-trip is asymmetric",
                file=str(info.module.path),
                line=info.node.lineno,
            )
        if snapshot is not None and restore is not None:
            for attr in sorted(snapshot.reads - restore.all):
                report.add(
                    "KS202",
                    f"{info.name}.snapshot_state reads {attr!r} but "
                    "restore_state never restores it",
                    file=str(info.module.path),
                    line=info.node.lineno,
                )
            for attr in sorted(restore.writes - snapshot.all):
                report.add(
                    "KS202",
                    f"{info.name}.restore_state writes {attr!r} but "
                    "snapshot_state never captures it",
                    file=str(info.module.path),
                    line=info.node.lineno,
                )
        # coverage resolves through the base chain: a subclass inheriting
        # its parent's snapshot methods is covered by the parent's fields.
        covered: Set[str] = set()
        for ancestor in tree.ancestors(info.name):
            ancestor_snapshot = _method_access(ancestor, "snapshot_state")
            ancestor_restore = _method_access(ancestor, "restore_state")
            if ancestor_snapshot is not None:
                covered |= ancestor_snapshot.all
                if ancestor_restore is not None:
                    covered |= ancestor_restore.writes
                break
        snapshot_sets[info.name] = set(
            (snapshot.all | (restore.writes if restore else set()))
            if snapshot is not None
            else covered
        )
        for name, attr in sorted(_mutable_attrs(info).items()):
            if name in covered:
                continue
            if _is_transient(info, attr):
                report.record_suppressed({"KS201": 1})
                continue
            report.add(
                "KS201",
                f"{info.name}.{name} is mutated ({attr.how}) but "
                "snapshot_state/restore_state never cover it; a restored "
                "scheduler will diverge. Capture it or mark the "
                "assignment # klink: transient[reason]",
                file=str(info.module.path),
                line=attr.line,
            )
    return snapshot_sets


# -- KS210 / KS211: schema fingerprint ---------------------------------------


def _schema_version(contract_module: _Module) -> Optional[int]:
    for node in contract_module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "SCHEMA_VERSION"
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
        ):
            return node.value.value
    return None


def build_contract(
    tree: _Tree, contract_module: _Module, scheduler_sets: Dict[str, Set[str]]
) -> Dict[str, List[str]]:
    """The captured field set per contract entry, suitable for hashing."""
    contract: Dict[str, List[str]] = {}
    for spec in _ENTRY_SPECS:
        capture = _extract_access(contract_module, spec.capture_fns, spec.roots)
        restore = _extract_access(contract_module, spec.restore_fns, spec.roots)
        contract[spec.name] = sorted(capture.all | restore.writes)
    for name, fields in sorted(scheduler_sets.items()):
        contract[f"scheduler:{name}"] = sorted(fields)
    return contract


def contract_fingerprint(schema_version: int, contract: Dict[str, List[str]]) -> str:
    payload = json.dumps(
        {"schema_version": schema_version, "contract": contract},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _check_fingerprint(
    tree: _Tree,
    contract_module: _Module,
    scheduler_sets: Dict[str, Set[str]],
    report: Report,
    update: bool = False,
) -> None:
    version = _schema_version(contract_module)
    if version is None:
        report.add(
            "KS210",
            "SCHEMA_VERSION not found in checkpoint.py (expected a "
            "module-level integer assignment)",
            file=str(contract_module.path),
        )
        return
    contract = build_contract(tree, contract_module, scheduler_sets)
    fingerprint = contract_fingerprint(version, contract)
    path = tree.package_root / _FINGERPRINT_FILE
    stored: Optional[Dict[str, object]] = None
    if path.exists():
        try:
            stored = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            stored = None
    stored_version = stored.get("schema_version") if isinstance(stored, dict) else None
    stored_contract = stored.get("contract") if isinstance(stored, dict) else None

    fields_changed = stored_contract != contract
    version_changed = stored_version != version

    if stored is None:
        if not update:
            report.add(
                "KS211",
                f"{path.name} missing or unreadable; generate it with "
                "`python -m repro.analysis.statecheck --update-fingerprint`",
                file=str(path),
            )
    elif fields_changed and not version_changed:
        drift = _describe_drift(stored_contract, contract)
        report.add(
            "KS210",
            "captured field set changed without a SCHEMA_VERSION bump "
            f"(still {version}): {drift}. Old snapshots would be "
            "mis-applied — bump SCHEMA_VERSION in checkpoint.py, then "
            "refresh the fingerprint",
            file=str(contract_module.path),
        )
        return  # never silently bless a drifted contract
    elif fields_changed or version_changed:
        if not update:
            report.add(
                "KS211",
                f"{path.name} is stale (schema_version "
                f"{stored_version} -> {version}); regenerate with "
                "`python -m repro.analysis.statecheck --update-fingerprint`",
                file=str(path),
            )
    if update:
        path.write_text(
            json.dumps(
                {
                    "comment": (
                        "Captured-field fingerprint of the checkpoint "
                        "contract; regenerated via `python -m "
                        "repro.analysis.statecheck --update-fingerprint` "
                        "after a SCHEMA_VERSION bump."
                    ),
                    "schema_version": version,
                    "contract": contract,
                    "fingerprint": fingerprint,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )


def _describe_drift(
    stored: object, current: Dict[str, List[str]]
) -> str:
    if not isinstance(stored, dict):
        return "fingerprint contract unreadable"
    changes: List[str] = []
    for name in sorted(set(stored) | set(current)):
        old = set(stored.get(name, []) or [])
        new = set(current.get(name, []))
        added = sorted(new - old)
        removed = sorted(old - new)
        if added:
            changes.append(f"{name} added {added}")
        if removed:
            changes.append(f"{name} removed {removed}")
    return "; ".join(changes) if changes else "entries reordered"


# -- KS22x: canonical serialization ------------------------------------------


class _SerializationVisitor(ast.NodeVisitor):
    def __init__(self, module: _Module) -> None:
        self.module = module
        self.findings: List[Diagnostic] = []

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Diagnostic(
                code=code,
                message=message,
                file=str(self.module.path),
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
            )
        )

    @staticmethod
    def _is_unordered_iter(node: ast.expr) -> bool:
        """``x.items()`` / ``x.keys()`` / ``x.values()`` or a set literal/
        comprehension — anything whose order is a dict/set internal."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("items", "keys", "values")
            and not node.args
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # KS221: json.dumps/json.dump without sort_keys=True
        if isinstance(func, ast.Attribute) and func.attr in ("dumps", "dump"):
            if isinstance(func.value, ast.Name) and func.value.id == "json":
                sort_keys = next(
                    (kw.value for kw in node.keywords if kw.arg == "sort_keys"),
                    None,
                )
                if not (
                    isinstance(sort_keys, ast.Constant) and sort_keys.value is True
                ):
                    self._flag(
                        node,
                        "KS221",
                        "json.%s without sort_keys=True in a canonical-"
                        "serialization path: snapshot bytes must be a "
                        "state-equality check" % func.attr,
                    )
        # KS222: list(x.items()) / tuple(x.keys()) without sorted(...)
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and node.args
            and self._is_unordered_iter(node.args[0])
        ):
            self._flag(
                node,
                "KS222",
                "unordered dict/set iteration materialized into a list "
                "feeding serialized output; wrap in sorted(...)",
            )
        self.generic_visit(node)

    def _check_comp(self, node: ast.expr, generators: List[ast.comprehension]) -> None:
        for gen in generators:
            if self._is_unordered_iter(gen.iter):
                self._flag(
                    gen.iter,
                    "KS222",
                    "unordered dict/set iteration materialized into a "
                    "list feeding serialized output; wrap in sorted(...)",
                )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comp(node, node.generators)
        self.generic_visit(node)

    # dict comprehensions are exempt: canonical dumps re-sorts dict keys,
    # so their iteration order never reaches the serialized bytes.


def _check_serialization(tree: _Tree, report: Report) -> None:
    for suffix in _SERIALIZER_FILES:
        module = tree.module_for(suffix)
        if module is None:
            continue
        visitor = _SerializationVisitor(module)
        visitor.visit(module.tree)
        kept, suppressed = apply_suppressions(visitor.findings, module.pragmas)
        report.extend(kept)
        report.record_suppressed(suppressed)


def _check_cursor_drift(
    tree: _Tree, covered_by_file: Dict[str, Set[str]], report: Report
) -> None:
    """KS223: ``self.x += non_int`` on a captured, time-like field."""
    for rel, covered in sorted(covered_by_file.items()):
        module = tree.module_for(rel)
        if module is None:
            continue
        findings: List[Diagnostic] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            target = node.target
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            name = target.attr
            if name not in covered or not _CURSOR_NAME.search(name):
                continue
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, int
            ):
                continue
            findings.append(
                Diagnostic(
                    code="KS223",
                    message=(
                        f"float accumulation into serialized cursor field "
                        f"{name!r}: += drifts, so a restored run diverges "
                        "from the live one; derive the value from an "
                        "integer step count"
                    ),
                    file=str(module.path),
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
        kept, suppressed = apply_suppressions(findings, module.pragmas)
        report.extend(kept)
        report.record_suppressed(suppressed)


# -- KW3xx: worker purity ----------------------------------------------------


def _module_mutable_globals(module: _Module) -> Set[str]:
    """Module-level names that hold mutable cross-call state: rebound via
    a ``global`` statement, or bound to a mutable container that some
    function in the module mutates."""
    container_names: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            is_container = isinstance(value, (ast.Dict, ast.List, ast.Set))
            if isinstance(value, ast.Call):
                callee = value.func
                callee_name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr
                    if isinstance(callee, ast.Attribute)
                    else ""
                )
                is_container = callee_name in (
                    "dict", "list", "set", "OrderedDict", "deque", "defaultdict",
                )
            if is_container:
                container_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            value = node.value
            if isinstance(value, ast.Call):
                callee = value.func
                callee_name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr
                    if isinstance(callee, ast.Attribute)
                    else ""
                )
                if callee_name in (
                    "dict", "list", "set", "OrderedDict", "deque", "defaultdict",
                ):
                    container_names.add(node.target.id)

    mutable: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Global):
            mutable.update(node.names)
    # containers only count when something in the module mutates them
    for node in ast.walk(module.tree):
        name: Optional[str] = None
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                # a bare-name Assign is the (re)binding itself, not a
                # mutation of the container — only write-throughs count
                if isinstance(node, ast.Assign) and isinstance(target, ast.Name):
                    continue
                while isinstance(target, (ast.Subscript, ast.Attribute)):
                    target = target.value
                if isinstance(target, ast.Name) and target.id in container_names:
                    name = target.id
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in container_names
        ):
            name = node.func.value.id
        if name is not None:
            mutable.add(name)
    return mutable


def _worker_roots(module: _Module) -> Tuple[Dict[str, ast.AST], List[Diagnostic]]:
    """Functions dispatched to pool workers, plus KW302 findings for
    unpicklable dispatch arguments."""
    roots: Dict[str, ast.AST] = {}
    findings: List[Diagnostic] = []

    def flag_unpicklable(node: ast.expr, context: str) -> None:
        findings.append(
            Diagnostic(
                code="KW302",
                message=(
                    f"{context} is a lambda/nested callable: spawn workers "
                    "pickle their task function, and only module-level "
                    "functions pickle by reference"
                ),
                file=str(module.path),
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
            )
        )

    module_functions = set(_function_defs(module))
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg == "initializer":
                if isinstance(kw.value, ast.Name):
                    roots[kw.value.id] = kw.value
                elif isinstance(kw.value, ast.Lambda):
                    flag_unpicklable(kw.value, "pool initializer")
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_DISPATCH_METHODS
            and node.args
        ):
            arg = node.args[0]
            if isinstance(arg, ast.Name):
                if arg.id in module_functions:
                    roots[arg.id] = arg
            elif isinstance(arg, ast.Lambda):
                flag_unpicklable(arg, f"pool.{func.attr} task")
    for name in _FINGERPRINT_ROOTS:
        if name in module_functions:
            fn = _function_defs(module)[name]
            roots[name] = fn
    return roots, findings


def _reachable_functions(module: _Module, roots: Iterable[str]) -> Set[str]:
    functions = _function_defs(module)
    reachable: Set[str] = set()
    frontier = [name for name in roots if name in functions]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for node in ast.walk(functions[name]):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in functions
                and node.func.id not in reachable
            ):
                frontier.append(node.func.id)
    return reachable


def _local_names(fn: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    args = fn.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names


def _check_worker_purity(tree: _Tree, report: Report) -> None:
    for module in tree.modules:
        roots, findings = _worker_roots(module)
        if not roots and not findings:
            continue
        mutable = _module_mutable_globals(module)
        functions = _function_defs(module)
        for fn_name in sorted(_reachable_functions(module, roots)):
            fn = functions[fn_name]
            locals_ = _local_names(fn)
            declared_global = {
                name
                for node in ast.walk(fn)
                if isinstance(node, ast.Global)
                for name in node.names
            }
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in mutable
                    and (node.id not in locals_ or node.id in declared_global)
                ):
                    findings.append(
                        Diagnostic(
                            code="KW301",
                            message=(
                                f"{fn_name}() runs in run_many worker "
                                f"processes (or replays from the result "
                                f"cache) but reads module global "
                                f"{node.id!r}, which is mutable state: "
                                "spawn workers import a fresh module, so "
                                "the value silently differs from the "
                                "parent's. Pass it as an argument instead"
                            ),
                            file=str(module.path),
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )
        kept, suppressed = apply_suppressions(findings, module.pragmas)
        report.extend(kept)
        report.record_suppressed(suppressed)


# -- driver ------------------------------------------------------------------


def _find_package_root(paths: Sequence[Path]) -> Optional[Path]:
    """Locate the package root: the directory two levels above the
    contract source (``<root>/resilience/checkpoint.py``)."""
    candidates: List[Path] = []
    for path in paths:
        if path.is_file() and path.as_posix().endswith(_CONTRACT_SOURCE):
            candidates.append(path)
        elif path.is_dir():
            candidates.extend(sorted(path.rglob("checkpoint.py")))
    for candidate in candidates:
        if candidate.as_posix().endswith(_CONTRACT_SOURCE):
            return candidate.parent.parent
    return None


def check_paths(
    paths: Sequence[Path], update_fingerprint: bool = False
) -> Report:
    """Run every KS2xx/KW3xx rule over the package found under ``paths``."""
    report = Report()
    package_root = _find_package_root(list(paths))
    if package_root is None:
        report.add(
            "KS200",
            f"no {_CONTRACT_SOURCE} found under {[str(p) for p in paths]}; "
            "point the state checker at the repro package root",
        )
        return report
    tree = _Tree(package_root)
    contract_module = tree.module_for(_CONTRACT_SOURCE)
    if contract_module is None:
        report.add(
            "KS200",
            f"{_CONTRACT_SOURCE} exists but could not be parsed",
            file=str(package_root / _CONTRACT_SOURCE),
        )
        return report

    covered_by_file: Dict[str, Set[str]] = {}
    for spec in _ENTRY_SPECS:
        covered = _check_entry_coverage(tree, contract_module, spec, report)
        for info in tree.family(spec.base_class):
            covered_by_file.setdefault(info.module.rel, set()).update(covered)
    scheduler_sets = _check_scheduler_coverage(tree, report)
    _check_fingerprint(
        tree, contract_module, scheduler_sets, report, update=update_fingerprint
    )
    _check_serialization(tree, report)
    _check_cursor_drift(tree, covered_by_file, report)
    _check_worker_purity(tree, report)
    return report


def run_statecheck(
    paths: Sequence[str],
    output_format: str = "text",
    quiet: bool = False,
    update_fingerprint: bool = False,
) -> Tuple[Report, int]:
    """Driver shared by the console script and ``repro-bench statecheck``.

    Returns ``(report, exit_code)``: 0 clean, 1 findings, 2 usage error
    (no contract source under ``paths``).
    """
    report = check_paths([Path(p) for p in paths], update_fingerprint)
    usage_error = any(d.code == "KS200" for d in report.diagnostics)
    if not quiet:
        if output_format == "json":
            print(report.to_json())
        elif report.diagnostics:
            print(report.render_text())
        else:
            suppressed = sum(report.suppressed.values())
            note = f" ({suppressed} transient/pragma suppression(s))" if suppressed else ""
            print(f"repro-statecheck: state contract clean{note}")
    if usage_error:
        return report, 2
    return report, (1 if report.diagnostics else 0)


def _render_rules() -> str:
    width = max(len(code) for code in STATE_RULES)
    return "\n".join(
        f"{code:{width}s}  {summary}"
        for code, summary in sorted(STATE_RULES.items())
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-statecheck",
        description="state-contract analyzer for the Klink reproduction tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="package roots to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", dest="output_format"
    )
    parser.add_argument(
        "--update-fingerprint",
        action="store_true",
        help="rewrite resilience/schema_fingerprint.json from the current "
        "contract (refused with KS210 if the field set changed without a "
        "SCHEMA_VERSION bump)",
    )
    parser.add_argument(
        "--rules", action="store_true", help="list rule codes and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.rules:
        print(_render_rules())
        return 0
    _, code = run_statecheck(
        args.paths,
        output_format=args.output_format,
        update_fingerprint=args.update_fingerprint,
    )
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
