"""Experiment harness regenerating the paper's evaluation figures."""

from repro.bench.cache import (
    CacheStats,
    ResultCache,
    cacheable,
    code_fingerprint,
    config_key,
    resolve_cache_dir,
)
from repro.bench.runner import (
    DEFAULT_DURATION_MS,
    ExperimentConfig,
    ExperimentResult,
    SCHEDULER_NAMES,
    WORKLOAD_MEMORY_GB,
    cache_stats,
    clear_cache,
    configure_cache,
    default_cache,
    make_scheduler,
    run_cached,
    run_experiment,
    run_many,
    simulation_count,
    sweep,
)
from repro.bench.estimation import estimator_accuracy

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_cached",
    "run_many",
    "sweep",
    "make_scheduler",
    "SCHEDULER_NAMES",
    "WORKLOAD_MEMORY_GB",
    "DEFAULT_DURATION_MS",
    "estimator_accuracy",
    "CacheStats",
    "ResultCache",
    "cacheable",
    "code_fingerprint",
    "config_key",
    "resolve_cache_dir",
    "cache_stats",
    "clear_cache",
    "configure_cache",
    "default_cache",
    "simulation_count",
]
