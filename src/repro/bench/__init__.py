"""Experiment harness regenerating the paper's evaluation figures."""

from repro.bench.runner import (
    DEFAULT_DURATION_MS,
    ExperimentConfig,
    ExperimentResult,
    SCHEDULER_NAMES,
    WORKLOAD_MEMORY_GB,
    make_scheduler,
    run_cached,
    run_experiment,
)
from repro.bench.estimation import estimator_accuracy

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_cached",
    "make_scheduler",
    "SCHEDULER_NAMES",
    "WORKLOAD_MEMORY_GB",
    "DEFAULT_DURATION_MS",
    "estimator_accuracy",
]
