"""Persistent, content-addressed experiment result cache.

One cache entry is one finished :class:`~repro.bench.runner.ExperimentResult`,
keyed by a stable hash of

* the full :class:`~repro.bench.runner.ExperimentConfig` (every field,
  serialized explicitly — no reliance on dataclass ``hash``/identity
  semantics), and
* a *code fingerprint*: the SHA-256 of every ``.py`` file in the installed
  ``repro`` package.

Because the simulator is seed-deterministic, a (config, code) pair fully
determines the run's output, so replaying a cached result is
indistinguishable from re-simulating it — which is what makes warm re-runs
of the figure suite and CI near-instant. Any source change anywhere in the
package invalidates every entry (coarse, but sound: scheduling output can
depend on any module), which is the cache's only invalidation rule besides
an explicit :meth:`ResultCache.clear`.

Entries are pickles written atomically (``os.replace``), so concurrent
sweep workers racing on the same key simply overwrite each other with
identical bytes. The cache directory is trusted local state: entries are
unpickled on load, so never point ``--cache-dir`` at untrusted files.

Configs that stream side effects to disk (``trace_path``) are never
cached — replaying them would skip writing the trace.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: bump to invalidate all existing cache entries on format changes
CACHE_FORMAT_VERSION = 1

#: default cache directory (relative to the working directory)
DEFAULT_CACHE_DIR = ".bench_cache"

#: environment variable overriding the default cache directory
CACHE_DIR_ENV = "REPRO_BENCH_CACHE"

_FINGERPRINT_MEMO: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package.

    Computed once per process (the package does not change under a running
    interpreter); ``refresh=True`` forces a recomputation (tests).
    """
    global _FINGERPRINT_MEMO
    if _FINGERPRINT_MEMO is not None and not refresh:
        return _FINGERPRINT_MEMO
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as fh:
                digest.update(hashlib.sha256(fh.read()).digest())
    _FINGERPRINT_MEMO = digest.hexdigest()
    return _FINGERPRINT_MEMO


def config_identity(config: Any) -> str:
    """Canonical JSON identity of an ExperimentConfig (all fields, sorted
    keys) — the explicit cache key, independent of dataclass identity or
    field declaration order."""
    fields = dataclasses.asdict(config)
    return json.dumps(fields, sort_keys=True, default=list)


def config_key(config: Any, fingerprint: Optional[str] = None) -> str:
    """Content address of one experiment point: config + code version."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    payload = json.dumps(
        {
            "format": CACHE_FORMAT_VERSION,
            "config": config_identity(config),
            "code": fingerprint,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def cacheable(config: Any) -> bool:
    """True when a config's result may be replayed from the cache.

    Traced runs are excluded: their observable output includes the JSONL
    file streamed to ``trace_path``, which a cache replay would not write.
    """
    return getattr(config, "trace_path", None) is None


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
        }


class ResultCache:
    """Directory of pickled experiment results, one file per config key.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` (fan-out subdirectories keep
    any single directory small). Files carry the full key and the config
    identity, verified on load.
    """

    def __init__(self, root: str, fingerprint: Optional[str] = None) -> None:
        self.root = os.path.abspath(root)
        self._fingerprint = fingerprint
        self.stats = CacheStats()

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = code_fingerprint()
        return self._fingerprint

    def key(self, config: Any) -> str:
        return config_key(config, self.fingerprint)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    # -- lookup -------------------------------------------------------------

    def get(self, config: Any) -> Optional[Any]:
        """Cached ExperimentResult for ``config``, or None on a miss.

        A corrupt or mismatched entry counts as a miss (and an error) —
        the caller re-simulates and overwrites it.
        """
        if not cacheable(config):
            return None
        key = self.key(config)
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CACHE_FORMAT_VERSION
            or entry.get("key") != key
        ):
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["result"]

    # -- store --------------------------------------------------------------

    def put(self, config: Any, result: Any) -> bool:
        """Persist one result; returns False (never raises) when the
        result cannot be pickled or the directory cannot be written."""
        if not cacheable(config):
            return False
        key = self.key(config)
        path = self._path(key)
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "identity": config_identity(config),
            "result": result,
        }
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)  # atomic: racing writers are safe
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        return True

    # -- maintenance --------------------------------------------------------

    def entries(self) -> List[str]:
        """Keys of every entry currently on disk (sorted)."""
        keys = []
        if not os.path.isdir(self.root):
            return keys
        for dirpath, dirnames, filenames in sorted(os.walk(self.root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if filename.endswith(".pkl"):
                    keys.append(filename[: -len(".pkl")])
        return sorted(keys)

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in self.entries():
            try:
                os.unlink(self._path(key))
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultCache({self.root!r}, entries={len(self)})"


def resolve_cache_dir(cache_dir: Optional[str] = None) -> str:
    """Effective cache directory: explicit arg > env var > default."""
    if cache_dir:
        return cache_dir
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
