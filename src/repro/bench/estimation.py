"""Estimator-level harness for Fig. 9c (SWM ingestion estimation accuracy).

The paper measures "the fraction of times an SWM is ingested within
Klink's estimated time range" under Uniform and Zipf network delays, for
confidence values f = 90 and 95, against a gradient-descent linear
regression baseline.

This harness drives a :class:`~repro.spe.query.StreamProgress` tracker
epoch by epoch exactly as the engine would — events of each epoch carry
delays drawn from the distribution, the closing watermark samples its own
delay — and asks the estimator for the next SWM's confidence interval
*before* the epoch's SWM arrives, then scores whether the actual ingestion
fell inside it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimator import SwmIngestionEstimator
from repro.net.delays import DelayModel
from repro.spe.query import SourceBinding, SourceSpec
from repro.spe.operators import MapOperator
from repro.spe.windows import TumblingEventTimeWindows


@dataclass
class AccuracyResult:
    """Outcome of an estimator accuracy evaluation."""

    accuracy: float          # fraction of SWMs inside the predicted interval
    n_epochs: int
    mean_interval_ms: float  # average width of the predicted interval


def estimator_accuracy(
    estimator: SwmIngestionEstimator,
    delay_model: DelayModel,
    *,
    n_epochs: int = 400,
    warmup_epochs: int = 20,
    window_ms: float = 3_000.0,
    watermark_period_ms: float = 1_000.0,
    events_per_epoch: int = 50,
    seed: int = 0,
) -> AccuracyResult:
    """Measure interval coverage of ``estimator`` under ``delay_model``.

    Epoch ``n`` spans one window period: its events' delays are observed
    by the progress tracker, and its closing watermark (the SWM) arrives
    at ``generation + delay`` with an independently sampled delay. The
    estimator predicts the ingestion range at the *start* of the epoch
    (before any of the epoch's own data is complete), matching how Klink
    uses the estimate for scheduling.
    """
    if n_epochs <= warmup_epochs:
        raise ValueError("need more epochs than warmup")
    rng = np.random.default_rng(seed)
    del rng  # delay_model carries its own stream; kept for future extensions

    assigner = TumblingEventTimeWindows(window_ms)
    spec = SourceSpec(
        name="estimation-harness",
        rate_eps=events_per_epoch / (window_ms / 1000.0),
        watermark_period_ms=watermark_period_ms,
        lateness_ms=delay_model.bound,
        delay_model=delay_model,
    )
    op = MapOperator("probe", 0.0)
    binding = SourceBinding(spec, op)
    binding.bind_progress(assigner)
    progress = binding.progress

    hits = 0
    scored = 0
    widths = []
    for epoch in range(n_epochs):
        deadline = progress.next_deadline
        estimate = estimator.estimate(binding)
        # Events of this epoch: delays observed as they are ingested.
        for _ in range(events_per_epoch):
            progress.observe_delay(delay_model.sample())
        # The sweeping watermark: first watermark generated with
        # timestamp >= deadline, i.e. generated at deadline + lateness
        # (rounded up to the watermark grid), delayed through the network.
        generation = SwmIngestionEstimator.swm_generation_time(
            deadline, watermark_period_ms, spec.lateness_ms
        )
        actual_ingestion = generation + delay_model.sample()
        progress.observe_watermark(generation - spec.lateness_ms, actual_ingestion)
        if epoch >= warmup_epochs and estimate is not None:
            scored += 1
            widths.append(estimate.t_max - estimate.t_min)
            if estimate.contains(actual_ingestion):
                hits += 1
    return AccuracyResult(
        accuracy=hits / scored if scored else float("nan"),
        n_epochs=scored,
        mean_interval_ms=float(np.mean(widths)) if widths else 0.0,
    )
