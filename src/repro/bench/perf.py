"""Wall-clock performance harness for the simulator itself.

Everything else in ``repro.bench`` measures *simulated* metrics on the
virtual clock; this module measures how fast the simulator *runs* on the
host — the quantity the engine hot-path work (pane-deadline heap, queue
memoization) and the parallel sweep executor exist to improve.

``run_perf`` times a pinned grid of experiment points (YSB and LRB under
the Default and Klink policies) with caching disabled, so every number is
a real simulation. Each point is timed best-of-``repeats`` to damp host
scheduling noise. With ``jobs > 1`` an additional pass times the same
grid through the parallel executor and reports the speedup.

The result is packaged as a ``BENCH_perf.json`` snapshot in the
``repro.obs.compare`` format, so the existing regression tooling applies
unchanged: per-point wall milliseconds ride in the ``latency_ms``
percentiles and the ``hottest_operators`` table (one "operator" per grid
point), and simulated-events-per-wall-second rides in
``throughput_eps``. ``repro-bench compare BASELINE CURRENT`` then flags
a slowdown exactly like it flags a simulated regression. Wall time is
machine-dependent: only compare snapshots from comparable hosts, and
treat CI comparisons as advisory (the CI job is warn-only).

This file is allowlisted for lint rule KL001 (wall-clock access): the
harness reads the host clock *about* the simulator, never inside it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.runner import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_many,
)

#: pinned measurement grid — change it only deliberately: timings are
#: comparable across runs (and against the checked-in baseline) only
#: while the grid stays fixed. ~10 s of serial wall time on one core.
PERF_SEED = 11
PERF_DURATION_MS = 60_000.0
PERF_N_QUERIES = 20
PERF_GRID: List[ExperimentConfig] = [
    ExperimentConfig(
        workload=workload,
        scheduler=scheduler,
        n_queries=PERF_N_QUERIES,
        duration_ms=PERF_DURATION_MS,
        seed=PERF_SEED,
    )
    for workload in ("ysb", "lrb")
    for scheduler in ("Default", "Klink")
]


def point_label(config: ExperimentConfig) -> str:
    return f"{config.workload}/{config.scheduler}/n{config.n_queries}"


class CyclePhaseProfiler:
    """Wall-clock breakdown of one engine run into cycle phases.

    Installed on ``Engine.phase_profiler``; the engine calls
    :meth:`cycle_start` at the top of each cycle, :meth:`lap` after each
    phase, and :meth:`cycle_end` at the bottom. The profiler is a pure
    observer of host time — the simulation never reads it, so profiled
    and unprofiled runs produce byte-identical outputs (modulo wall
    clock). Phases: generate (source record synthesis), deliver (network
    → channel ingestion), schedule (collect + plan + audit), execute
    (operator work), drain (metrics, telemetry, checkpoints, tracing).
    """

    PHASES = ("generate", "deliver", "schedule", "execute", "drain")

    def __init__(self) -> None:
        self.totals_ms: Dict[str, float] = {p: 0.0 for p in self.PHASES}
        self.cycles = 0
        self._mark = 0.0

    def cycle_start(self) -> None:
        self._mark = time.perf_counter()

    def lap(self, phase: str) -> None:
        t = time.perf_counter()
        self.totals_ms[phase] += 1000.0 * (t - self._mark)
        self._mark = t

    def cycle_end(self) -> None:
        self.cycles += 1

    def per_cycle_ms(self) -> Dict[str, float]:
        """Mean milliseconds spent in each phase per scheduling cycle."""
        if self.cycles == 0:
            return {p: 0.0 for p in self.PHASES}
        return {p: self.totals_ms[p] / self.cycles for p in self.PHASES}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cycles": self.cycles,
            "totals_ms": dict(self.totals_ms),
            "per_cycle_ms": self.per_cycle_ms(),
        }


@dataclass(frozen=True)
class PerfPoint:
    """Timing of one grid point (best of ``repeats`` serial runs)."""

    label: str
    wall_ms: float
    simulated_ms: float
    events: float
    #: optional CyclePhaseProfiler.to_dict() of the fastest repeat
    phases: Optional[Dict[str, Any]] = None

    @property
    def events_per_wall_sec(self) -> float:
        if self.wall_ms <= 0.0:
            return 0.0
        return self.events / (self.wall_ms / 1000.0)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "label": self.label,
            "wall_ms": self.wall_ms,
            "simulated_ms": self.simulated_ms,
            "events": self.events,
            "events_per_wall_sec": self.events_per_wall_sec,
        }
        if self.phases is not None:
            out["phases"] = self.phases
        return out


def _time_point(
    config: ExperimentConfig, repeats: int, profile: bool = False
) -> PerfPoint:
    best: Optional[float] = None
    result: Optional[ExperimentResult] = None
    best_profiler: Optional[CyclePhaseProfiler] = None
    for _ in range(repeats):
        profiler = CyclePhaseProfiler() if profile else None
        t0 = time.perf_counter()
        result = run_experiment(config, phase_profiler=profiler)
        elapsed_ms = 1000.0 * (time.perf_counter() - t0)
        if best is None or elapsed_ms < best:
            best = elapsed_ms
            best_profiler = profiler
    assert best is not None and result is not None
    return PerfPoint(
        label=point_label(config),
        wall_ms=best,
        simulated_ms=config.duration_ms,
        events=result.metrics.total_events_processed,
        phases=best_profiler.to_dict() if best_profiler is not None else None,
    )


def _percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (pct / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def run_perf(
    *,
    jobs: int = 1,
    repeats: int = 1,
    grid: Optional[Sequence[ExperimentConfig]] = None,
    profile: bool = False,
) -> Dict[str, Any]:
    """Time the pinned grid; return a BENCH_perf snapshot dict.

    Caching is bypassed throughout (every timed run is a real
    simulation). ``repeats`` re-times each point serially and keeps the
    fastest run. ``jobs > 1`` additionally times one parallel
    ``run_many`` pass over the whole grid and records the speedup
    relative to the serial total.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    configs = list(PERF_GRID if grid is None else grid)
    if not configs:
        raise ValueError("perf grid is empty")
    points = [_time_point(config, repeats, profile=profile) for config in configs]
    serial_ms = sum(p.wall_ms for p in points)
    total_events = sum(p.events for p in points)
    total_simulated = sum(p.simulated_ms for p in points)

    parallel: Optional[Dict[str, Any]] = None
    if jobs > 1:
        t0 = time.perf_counter()
        run_many(configs, jobs=jobs, cache=None)
        parallel_ms = 1000.0 * (time.perf_counter() - t0)
        parallel = {
            "jobs": jobs,
            "wall_ms": parallel_ms,
            "speedup": (serial_ms / parallel_ms) if parallel_ms > 0 else 0.0,
            "cpus": os.cpu_count(),
        }

    walls = sorted(p.wall_ms for p in points)
    snapshot: Dict[str, Any] = {
        "snapshot_version": 1,
        "workload": "perf",
        "scheduler": "grid",
        "n_queries": sum(c.n_queries for c in configs),
        "seed": PERF_SEED,
        "duration_ms": total_simulated,
        "cores": configs[0].cores,
        "cycle_ms": configs[0].cycle_ms,
        "latency_ms": {
            "mean": serial_ms / len(points),
            "p50": _percentile(walls, 50.0),
            "p90": _percentile(walls, 90.0),
            "p99": _percentile(walls, 99.0),
        },
        "throughput_eps": (
            total_events / (serial_ms / 1000.0) if serial_ms > 0 else 0.0
        ),
        "deadline_misses": 0,
        "watermark_lag_ms": {"mean": None, "max": None},
        "alerts": {"total": 0, "by_rule": {}},
        "series_count": len(points),
        "hottest_operators": [
            {"name": p.label, "cpu_ms": p.wall_ms}
            for p in sorted(points, key=lambda p: (-p.wall_ms, p.label))
        ],
        "points": [p.to_dict() for p in points],
        "repeats": repeats,
    }
    if parallel is not None:
        snapshot["parallel"] = parallel
    return snapshot


def render_perf(snapshot: Dict[str, Any]) -> str:
    """Human-readable table of one perf snapshot."""
    lines = ["=== simulator perf (wall clock) ==="]
    lines.append(
        f"  {'point':24s} {'wall(ms)':>10s} {'sim(s)':>8s} "
        f"{'Mev/wall-s':>11s}"
    )
    for row in snapshot.get("points", []):
        lines.append(
            f"  {row['label']:24s} {row['wall_ms']:10.1f} "
            f"{row['simulated_ms'] / 1000.0:8.1f} "
            f"{row['events_per_wall_sec'] / 1e6:11.2f}"
        )
    latency = snapshot.get("latency_ms", {})
    lines.append(
        f"  per-point wall ms: mean={latency.get('mean', 0.0):.1f} "
        f"p50={latency.get('p50', 0.0):.1f} p90={latency.get('p90', 0.0):.1f}"
    )
    lines.append(
        f"  simulated events per wall second: "
        f"{snapshot.get('throughput_eps', 0.0) / 1e6:.2f}M"
    )
    parallel = snapshot.get("parallel")
    if parallel:
        lines.append(
            f"  parallel pass (jobs={parallel['jobs']}, "
            f"cpus={parallel['cpus']}): {parallel['wall_ms']:.1f} ms, "
            f"speedup {parallel['speedup']:.2f}x over serial"
        )
    if any("phases" in row for row in snapshot.get("points", [])):
        lines.append("  phase breakdown (ms/cycle):")
        header = CyclePhaseProfiler.PHASES
        lines.append(
            "  " + f"{'point':24s}" + "".join(f"{p:>10s}" for p in header)
        )
        for row in snapshot.get("points", []):
            phases = row.get("phases")
            if not phases:
                continue
            per_cycle = phases["per_cycle_ms"]
            lines.append(
                "  "
                + f"{row['label']:24s}"
                + "".join(f"{per_cycle[p]:10.4f}" for p in header)
            )
    return "\n".join(lines)
