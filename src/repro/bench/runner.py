"""Experiment runner: one call = one engine run = one data point.

The paper's evaluation (Sec. 6) sweeps the number of deployed queries,
the offered throughput, the scheduling policy, the node count, and the
network delay distribution, measuring mean/tail output latency,
throughput, slowdown, and memory/CPU utilization. This module pins the
calibrated experiment configuration (per-workload memory scale, cores,
cycle length) and provides a session-level cache so the per-figure bench
modules can share sweep points instead of re-simulating them.

Scale note: the paper runs 20-minute experiments on a 24-core Xeon with
17.5 GB of usable heap; the simulator runs 2 simulated minutes with a
proportionally scaled memory capacity (see DESIGN.md). Absolute numbers
differ; the comparisons between policies are the reproduced object.
"""

from __future__ import annotations

import multiprocessing
import os
import re
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.cache import (
    CacheStats,
    ResultCache,
    cacheable,
    config_key,
    resolve_cache_dir,
)

from repro.core.baselines import (
    DefaultScheduler,
    FCFSScheduler,
    HighestRateScheduler,
    RoundRobinScheduler,
    StreamBoxScheduler,
)
from repro.core.klink import KlinkScheduler
from repro.core.scheduler import Scheduler
from repro.faults import FaultPlan, InvariantMonitor
from repro.obs import (
    AuditLog,
    ChainProfile,
    LineageTracker,
    OperatorProfiler,
    TelemetryConfig,
    TelemetrySampler,
    Trace,
    TraceWriter,
    parse_rules,
)
from repro.obs.alerts import DEFAULT_RULE_TEXTS
from repro.resilience import (
    CheckpointCoordinator,
    RecoveryConfig,
    RecoveryManager,
)
from repro.spe.engine import Engine
from repro.spe.memory import GIB, MemoryConfig
from repro.spe.metrics import RunMetrics
from repro.workloads import WorkloadParams, build_queries

#: simulated experiment length (the paper runs 20 real minutes)
DEFAULT_DURATION_MS = 120_000.0

#: checkpoint period used when recovery is requested without an explicit
#: ``--checkpoint-period`` (Flink's conventional default is seconds-scale)
DEFAULT_CHECKPOINT_PERIOD_MS = 5_000.0

#: calibrated memory capacity per workload (GiB). LRB's windowed join
#: legitimately buffers raw events (its standing state is several hundred
#: MB at high query counts), so it gets a larger budget; see DESIGN.md.
WORKLOAD_MEMORY_GB: Dict[str, float] = {
    "ysb": 1.0,
    "lrb": 2.0,
    "nyt": 1.0,
}

_SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "Default": DefaultScheduler,
    "FCFS": FCFSScheduler,
    "RR": RoundRobinScheduler,
    "HR": HighestRateScheduler,
    "SBox": StreamBoxScheduler,
    "Klink": KlinkScheduler,
    "Klink (w/o MM)": lambda: KlinkScheduler(enable_memory_management=False),
}

SCHEDULER_NAMES: Tuple[str, ...] = tuple(_SCHEDULER_FACTORIES)


def make_scheduler(name: str, **overrides) -> Scheduler:
    """Instantiate a scheduling policy by its paper name."""
    factory = _SCHEDULER_FACTORIES.get(name)
    if factory is None:
        raise ValueError(f"unknown scheduler {name!r}; known: {SCHEDULER_NAMES}")
    if overrides:
        if name == "Klink (w/o MM)":
            return KlinkScheduler(enable_memory_management=False, **overrides)
        if name == "Klink":
            return KlinkScheduler(**overrides)
        raise ValueError(f"scheduler {name!r} accepts no overrides")
    return factory()


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell: (workload, policy, load, environment)."""

    workload: str = "ysb"
    scheduler: str = "Klink"
    n_queries: int = 60
    duration_ms: float = DEFAULT_DURATION_MS
    cores: int = 24
    cycle_ms: float = 120.0
    delay: str = "uniform"
    rate_scale: float = 1.0
    seed: int = 1
    memory_gb: Optional[float] = None  # None -> per-workload default
    confidence: Optional[float] = None  # Klink's f (None -> 95)
    fault_seed: Optional[int] = None  # None -> no fault injection
    check_invariants: bool = False  # attach an InvariantMonitor
    validate: bool = True  # static plan validation at submission
    audit: bool = False  # attach a scheduler-decision AuditLog
    profile: bool = False  # attach a per-operator OperatorProfiler
    audit_max_rows: int = 50_000  # AuditLog in-memory bound
    trace_path: Optional[str] = None  # stream a full run trace to this file
    # in-run telemetry (repro.obs.timeseries); traced runs always sample
    telemetry: bool = False  # attach a TelemetrySampler
    telemetry_period_ms: float = 200.0  # virtual-clock sample period
    deadline_slo_ms: float = 1000.0  # latency above this = deadline miss
    alert_rules: Tuple[str, ...] = DEFAULT_RULE_TEXTS  # rule texts (hashable)
    # resilience (repro.resilience): periodic checkpointing and the
    # recovery strategy for node failures (None keeps legacy semantics)
    checkpoint_period_ms: Optional[float] = None
    recover: Optional[str] = None  # "restart" | "standby" | "none"
    # rows coalesced per channel queue entry (1 = per-event reference
    # path); execution is byte-identical for every value, so this is a
    # pure wall-clock knob and safe to default on
    batch_size: int = 64
    # hash-based lineage sampling rate (0 = off). Tracing is a pure
    # observer: any rate leaves summaries, scheduler decisions, and
    # checkpoint bytes identical to an untraced run.
    lineage_sample_rate: float = 0.0
    # vectorized cycle kernel (batched delay draws + calendar-queue
    # network). False runs the scalar reference path; both paths are
    # byte-identical by contract, so this too is a pure wall-clock knob.
    vectorized: bool = True

    def resolved_memory_gb(self) -> float:
        if self.memory_gb is not None:
            return self.memory_gb
        return WORKLOAD_MEMORY_GB[self.workload.lower()]


@dataclass
class ExperimentResult:
    """Metrics of one run plus the engine-independent headline numbers."""

    config: ExperimentConfig
    metrics: RunMetrics
    monitor: Optional[InvariantMonitor] = None
    audit: Optional[AuditLog] = None
    chain_profiles: List[ChainProfile] = field(default_factory=list)
    telemetry: Optional[TelemetrySampler] = None
    lineage: Optional[LineageTracker] = None

    @property
    def summary(self) -> Dict[str, float]:
        return self.metrics.summary()

    def row(self) -> str:
        """One formatted table row (used by bench output)."""
        s = self.summary
        return (
            f"{self.config.scheduler:16s} n={self.config.n_queries:3d} "
            f"mean={s['mean_latency_ms'] / 1000:6.2f}s "
            f"p90={s['p90_latency_ms'] / 1000:6.2f}s "
            f"p99={s['p99_latency_ms'] / 1000:6.2f}s "
            f"thr={s['throughput_eps'] / 1e5:5.2f}x1e5ev/s "
            f"cpu={s['mean_cpu_pct']:5.1f}% "
            f"mem={s['mean_memory_gb']:5.2f}GB"
        )


def trace_meta(config: ExperimentConfig) -> Dict[str, object]:
    """The experiment identity recorded in a trace's ``meta`` record."""
    from repro.obs import SCHEMA_VERSION

    return {
        "schema_version": SCHEMA_VERSION,
        "workload": config.workload,
        "scheduler": config.scheduler,
        "n_queries": config.n_queries,
        "duration_ms": config.duration_ms,
        "cores": config.cores,
        "cycle_ms": config.cycle_ms,
        "delay": config.delay,
        "rate_scale": config.rate_scale,
        "seed": config.seed,
    }


def trace_summary(metrics: RunMetrics) -> Dict[str, object]:
    """The end-of-run ``summary`` record of a trace (headline numbers
    plus the latency CDF points the report renders)."""
    summary: Dict[str, object] = dict(metrics.summary())
    summary["cycles"] = metrics.cycles
    summary["backpressure_cycles"] = metrics.backpressure_cycles
    summary["total_events_processed"] = metrics.total_events_processed
    summary["events_shed"] = metrics.events_shed
    summary["late_events_dropped"] = metrics.late_events_dropped
    summary["latency_cdf"] = [list(point) for point in metrics.latency_cdf()]
    if (
        metrics.recoveries
        or metrics.events_lost_to_failures
        or metrics.recovery_events
    ):
        summary["resilience"] = metrics.resilience_summary()
    return summary


def trace_from_result(result: ExperimentResult) -> Trace:
    """Assemble an in-memory run trace from an audited/profiled result.

    Requires the experiment to have run with ``audit=True``; operator
    and chain sections are filled when ``profile=True`` was also set,
    series/alert sections when ``telemetry=True``.
    """
    if result.audit is None:
        raise ValueError(
            "experiment ran without an audit log; re-run with audit=True"
        )
    sampler = result.telemetry
    tracker = result.lineage
    return Trace(
        meta=trace_meta(result.config),
        cycles=[record.to_dict() for record in result.audit.rows],
        operators=[p.to_dict() for p in result.metrics.operator_profiles],
        chains=[c.to_dict() for c in result.chain_profiles],
        series=sampler.series_rows() if sampler is not None else [],
        alerts=sampler.alert_rows() if sampler is not None else [],
        lineage=tracker.lineage_rows() if tracker is not None else [],
        swm_forecast=tracker.swm_forecast_rows() if tracker is not None else [],
        lineage_summary=tracker.summary_row() if tracker is not None else {},
        summary=trace_summary(result.metrics),
    )


def run_experiment(
    config: ExperimentConfig, *, phase_profiler: object = None
) -> ExperimentResult:
    """Build the workload, run the engine, return metrics.

    ``phase_profiler`` optionally installs a
    :class:`repro.bench.perf.CyclePhaseProfiler` on the engine — a pure
    wall-clock observer; simulated output is unaffected.
    """
    params = WorkloadParams(
        delay=config.delay, rate_scale=config.rate_scale, seed=config.seed
    )
    queries = build_queries(config.workload, config.n_queries, params)
    overrides = {}
    if config.confidence is not None and config.scheduler.startswith("Klink"):
        overrides["confidence"] = config.confidence
    scheduler = make_scheduler(config.scheduler, **overrides)
    faults = None
    if config.fault_seed is not None:
        faults = FaultPlan.random(
            config.fault_seed,
            config.duration_ms,
            query_ids=[q.query_id for q in queries],
        )
    monitor = InvariantMonitor() if config.check_invariants else None
    writer = None
    if config.trace_path is not None:
        writer = TraceWriter(config.trace_path, meta=trace_meta(config))
    audit = None
    if config.audit or writer is not None:
        audit = AuditLog(max_rows=config.audit_max_rows, stream=writer)
    profiler = None
    if config.profile or writer is not None:
        profiler = OperatorProfiler()
    sampler = None
    if config.telemetry or writer is not None:
        # Traced runs always sample: the trace's v2 ``series`` section is
        # what `repro-bench compare` and the CI telemetry gate consume.
        sampler = TelemetrySampler(
            TelemetryConfig(
                period_ms=config.telemetry_period_ms,
                deadline_slo_ms=config.deadline_slo_ms,
            ),
            rules=parse_rules(config.alert_rules),
        )
    lineage = None
    if config.lineage_sample_rate > 0.0:
        lineage = LineageTracker(config.lineage_sample_rate, seed=config.seed)
        if isinstance(scheduler, KlinkScheduler):
            # Pure observer of the estimates Klink computes anyway; the
            # scheduler's decisions are untouched.
            scheduler.forecast_audit = lineage.forecast
    checkpoints = None
    recovery = None
    if config.checkpoint_period_ms is not None:
        checkpoints = CheckpointCoordinator(config.checkpoint_period_ms)
    if config.recover is not None:
        if config.recover != "none" and checkpoints is None:
            checkpoints = CheckpointCoordinator(DEFAULT_CHECKPOINT_PERIOD_MS)
        recovery = RecoveryManager(RecoveryConfig(config.recover), checkpoints)
    engine = Engine(
        queries,
        scheduler,
        cores=config.cores,
        cycle_ms=config.cycle_ms,
        memory=MemoryConfig(capacity_bytes=config.resolved_memory_gb() * GIB),
        seed=config.seed,
        audit=audit,
        profiler=profiler,
        faults=faults,
        invariants=monitor,
        telemetry=sampler,
        checkpoints=checkpoints,
        recovery=recovery,
        validate=config.validate,
        batch_size=config.batch_size,
        lineage=lineage,
        vectorized=config.vectorized,
    )
    if phase_profiler is not None:
        engine.phase_profiler = phase_profiler
    metrics = engine.run(config.duration_ms)
    chains = profiler.chain_profiles(queries) if profiler is not None else []
    if writer is not None:
        writer.finalize(
            operators=[p.to_dict() for p in metrics.operator_profiles],
            chains=[c.to_dict() for c in chains],
            series=sampler.series_rows() if sampler is not None else (),
            alerts=sampler.alert_rows() if sampler is not None else (),
            lineage=lineage.lineage_rows() if lineage is not None else (),
            swm_forecast=(
                lineage.swm_forecast_rows() if lineage is not None else ()
            ),
            lineage_summary=(
                lineage.summary_row() if lineage is not None else None
            ),
            summary=trace_summary(metrics),
        )
    return ExperimentResult(
        config=config,
        metrics=metrics,
        monitor=monitor,
        audit=audit,
        chain_profiles=chains,
        telemetry=sampler,
        lineage=lineage,
    )


# ---------------------------------------------------------------------------
# Result caching (in-memory L1 + optional persistent L2) and parallel sweeps
# ---------------------------------------------------------------------------

#: in-memory session cache, keyed by the *explicit* content address from
#: repro.bench.cache (config fields + code fingerprint), not by dataclass
#: identity. LRU-bounded so a long pytest session cannot grow it without
#: limit; the figure-suite grid is ~150 points, well under the bound.
_MEMORY_CACHE: "OrderedDict[str, ExperimentResult]" = OrderedDict()
_MEMORY_CACHE_LIMIT = 512

#: module-default persistent cache; ``_UNSET`` sentinel distinguishes
#: "use the configured default" from an explicit ``cache=None`` (disable).
_UNSET = object()
_DEFAULT_CACHE: Optional[ResultCache] = None

#: experiments actually simulated (cache misses) this process — parallel
#: points run in worker processes still count here, via the parent.
_SIMULATIONS = 0

#: cumulative in-memory cache hits (parallel to ResultCache.stats.hits)
_MEMORY_HITS = 0


def configure_cache(
    cache_dir: Optional[str] = None, enabled: bool = True
) -> Optional[ResultCache]:
    """Set the module-default persistent cache used by ``run_cached`` /
    ``sweep`` when no explicit ``cache=`` is passed.

    ``configure_cache()`` enables it at the conventional location
    (``.bench_cache/``, or ``$REPRO_BENCH_CACHE``); ``enabled=False``
    disables persistent caching. Returns the active cache (or None).
    """
    global _DEFAULT_CACHE
    if not enabled:
        _DEFAULT_CACHE = None
        return None
    _DEFAULT_CACHE = ResultCache(resolve_cache_dir(cache_dir))
    return _DEFAULT_CACHE


def default_cache() -> Optional[ResultCache]:
    """The configured persistent cache (None when disabled, the default)."""
    return _DEFAULT_CACHE


def _resolve_cache(cache: object) -> Optional[ResultCache]:
    if cache is _UNSET:
        return _DEFAULT_CACHE
    return cache  # type: ignore[return-value]


def clear_cache(persistent: bool = False) -> None:
    """Drop every in-memory cached result (and reset its counters).

    With ``persistent=True`` the configured on-disk cache is wiped too.
    Exposed for test isolation — see the autouse-able fixture in
    ``tests/conftest.py``.
    """
    global _MEMORY_HITS, _SIMULATIONS
    _MEMORY_CACHE.clear()
    _MEMORY_HITS = 0
    _SIMULATIONS = 0
    if persistent and _DEFAULT_CACHE is not None:
        _DEFAULT_CACHE.clear()
        _DEFAULT_CACHE.stats = CacheStats()


def simulation_count() -> int:
    """Experiments actually simulated (not replayed) by this process."""
    return _SIMULATIONS


def cache_stats() -> Dict[str, int]:
    """Combined cache accounting: memory hits/size plus persistent stats."""
    stats: Dict[str, int] = {
        "memory_hits": _MEMORY_HITS,
        "memory_entries": len(_MEMORY_CACHE),
        "simulations": _SIMULATIONS,
    }
    if _DEFAULT_CACHE is not None:
        for name, value in _DEFAULT_CACHE.stats.as_dict().items():
            stats[f"persistent_{name}"] = value
    return stats


def _memory_get(key: str) -> Optional[ExperimentResult]:
    global _MEMORY_HITS
    result = _MEMORY_CACHE.get(key)
    if result is not None:
        _MEMORY_CACHE.move_to_end(key)
        _MEMORY_HITS += 1
    return result


def _memory_put(key: str, result: ExperimentResult) -> None:
    _MEMORY_CACHE[key] = result
    _MEMORY_CACHE.move_to_end(key)
    while len(_MEMORY_CACHE) > _MEMORY_CACHE_LIMIT:
        _MEMORY_CACHE.popitem(last=False)


def run_cached(
    config: ExperimentConfig, *, cache: object = _UNSET
) -> ExperimentResult:
    """Run an experiment once; reuse across figures, sessions, and CI.

    Figures 6a/6c/6d, for example, are different projections of the same
    query-count sweep; the in-memory cache shares points within a session
    and the persistent cache (when configured) shares them across
    processes. Traced configs always run (see ``cache.cacheable``).
    """
    persistent = _resolve_cache(cache)
    fingerprint = persistent.fingerprint if persistent is not None else None
    key = config_key(config, fingerprint)
    if cacheable(config):
        result = _memory_get(key)
        if result is not None:
            return result
        if persistent is not None:
            result = persistent.get(config)
            if result is not None:
                _memory_put(key, result)
                return result
    result = _run_counted(config)
    if cacheable(config):
        _memory_put(key, result)
        if persistent is not None:
            persistent.put(config, result)
    return result


def _run_counted(config: ExperimentConfig) -> ExperimentResult:
    global _SIMULATIONS
    _SIMULATIONS += 1
    return run_experiment(config)


def _pool_worker_init(sys_path: List[str]) -> None:
    """Align a spawned worker's module search path with the parent's, so
    workers resolve the same ``repro`` package the parent runs."""
    import sys

    sys.path[:] = sys_path


def _pool_worker_run(config: ExperimentConfig) -> ExperimentResult:
    return run_experiment(config)


def run_many(
    configs: Sequence[ExperimentConfig],
    *,
    jobs: int = 1,
    cache: object = _UNSET,
) -> List[ExperimentResult]:
    """Run many independent experiment points, cached and optionally in
    parallel.

    Points already cached (memory or persistent) are replayed; the
    remaining misses are simulated — serially for ``jobs <= 1``, else
    fanned out over ``jobs`` spawn-based worker processes. Results come
    back in input order regardless of completion order, and every run is
    seed-deterministic in its own process, so the output (summaries and
    any JSONL traces) is byte-identical whatever ``jobs`` is.

    Duplicate configs are simulated once. ``spawn`` (not ``fork``) is
    used so workers start from a clean interpreter on every platform —
    no inherited caches, RNG state, or open trace files.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    global _SIMULATIONS
    persistent = _resolve_cache(cache)
    fingerprint = persistent.fingerprint if persistent is not None else None
    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    pending: "OrderedDict[str, List[int]]" = OrderedDict()
    pending_configs: List[ExperimentConfig] = []
    for index, config in enumerate(configs):
        key = config_key(config, fingerprint)
        if cacheable(config):
            result = _memory_get(key)
            if result is None and persistent is not None:
                result = persistent.get(config)
                if result is not None:
                    _memory_put(key, result)
            if result is not None:
                results[index] = result
                continue
            if key in pending:  # duplicate point: simulate once
                pending[key].append(index)
                continue
        else:
            # Traced configs are never deduplicated or cached: each one
            # must actually run to produce its side-effect file.
            key = f"uncached-{index}"
        pending[key] = [index]
        pending_configs.append(config)
    if pending_configs:
        _SIMULATIONS += len(pending_configs)
        if jobs == 1 or len(pending_configs) == 1:
            fresh = [run_experiment(cfg) for cfg in pending_configs]
        else:
            import sys

            ctx = multiprocessing.get_context("spawn")
            workers = min(jobs, len(pending_configs))
            with ctx.Pool(
                processes=workers,
                initializer=_pool_worker_init,
                initargs=(list(sys.path),),
            ) as pool:
                fresh = pool.map(_pool_worker_run, pending_configs)
        for (key, indexes), config, result in zip(
            pending.items(), pending_configs, fresh
        ):
            if cacheable(config):
                _memory_put(key, result)
                if persistent is not None:
                    persistent.put(config, result)
            for index in indexes:
                results[index] = result
    out = [result for result in results if result is not None]
    assert len(out) == len(configs)
    return out


def _trace_name(config: ExperimentConfig) -> str:
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", config.scheduler).strip("-")
    return f"{config.workload}_{safe}_n{config.n_queries}.jsonl"


def sweep(
    base: ExperimentConfig,
    schedulers: List[str],
    n_queries: List[int],
    *,
    jobs: int = 1,
    cache: object = _UNSET,
    trace_dir: Optional[str] = None,
) -> Dict[Tuple[str, int], ExperimentResult]:
    """Run a (scheduler x query-count) sweep, cached and parallel.

    With ``trace_dir`` set, every point streams its full JSONL run trace
    to ``<trace_dir>/<workload>_<scheduler>_n<N>.jsonl`` (such points
    always simulate; traced runs are not cacheable).
    """
    grid = [
        replace(base, scheduler=name, n_queries=n)
        for name in schedulers
        for n in n_queries
    ]
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        grid = [
            replace(cfg, trace_path=os.path.join(trace_dir, _trace_name(cfg)))
            for cfg in grid
        ]
    results = run_many(grid, jobs=jobs, cache=cache)
    return {
        (cfg.scheduler, cfg.n_queries): result
        for cfg, result in zip(grid, results)
    }
