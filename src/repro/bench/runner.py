"""Experiment runner: one call = one engine run = one data point.

The paper's evaluation (Sec. 6) sweeps the number of deployed queries,
the offered throughput, the scheduling policy, the node count, and the
network delay distribution, measuring mean/tail output latency,
throughput, slowdown, and memory/CPU utilization. This module pins the
calibrated experiment configuration (per-workload memory scale, cores,
cycle length) and provides a session-level cache so the per-figure bench
modules can share sweep points instead of re-simulating them.

Scale note: the paper runs 20-minute experiments on a 24-core Xeon with
17.5 GB of usable heap; the simulator runs 2 simulated minutes with a
proportionally scaled memory capacity (see DESIGN.md). Absolute numbers
differ; the comparisons between policies are the reproduced object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.baselines import (
    DefaultScheduler,
    FCFSScheduler,
    HighestRateScheduler,
    RoundRobinScheduler,
    StreamBoxScheduler,
)
from repro.core.klink import KlinkScheduler
from repro.core.scheduler import Scheduler
from repro.faults import FaultPlan, InvariantMonitor
from repro.obs import (
    AuditLog,
    ChainProfile,
    OperatorProfiler,
    TelemetryConfig,
    TelemetrySampler,
    Trace,
    TraceWriter,
    parse_rules,
)
from repro.obs.alerts import DEFAULT_RULE_TEXTS
from repro.spe.engine import Engine
from repro.spe.memory import GIB, MemoryConfig
from repro.spe.metrics import RunMetrics
from repro.workloads import WorkloadParams, build_queries

#: simulated experiment length (the paper runs 20 real minutes)
DEFAULT_DURATION_MS = 120_000.0

#: calibrated memory capacity per workload (GiB). LRB's windowed join
#: legitimately buffers raw events (its standing state is several hundred
#: MB at high query counts), so it gets a larger budget; see DESIGN.md.
WORKLOAD_MEMORY_GB: Dict[str, float] = {
    "ysb": 1.0,
    "lrb": 2.0,
    "nyt": 1.0,
}

_SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "Default": DefaultScheduler,
    "FCFS": FCFSScheduler,
    "RR": RoundRobinScheduler,
    "HR": HighestRateScheduler,
    "SBox": StreamBoxScheduler,
    "Klink": KlinkScheduler,
    "Klink (w/o MM)": lambda: KlinkScheduler(enable_memory_management=False),
}

SCHEDULER_NAMES: Tuple[str, ...] = tuple(_SCHEDULER_FACTORIES)


def make_scheduler(name: str, **overrides) -> Scheduler:
    """Instantiate a scheduling policy by its paper name."""
    factory = _SCHEDULER_FACTORIES.get(name)
    if factory is None:
        raise ValueError(f"unknown scheduler {name!r}; known: {SCHEDULER_NAMES}")
    if overrides:
        if name == "Klink (w/o MM)":
            return KlinkScheduler(enable_memory_management=False, **overrides)
        if name == "Klink":
            return KlinkScheduler(**overrides)
        raise ValueError(f"scheduler {name!r} accepts no overrides")
    return factory()


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell: (workload, policy, load, environment)."""

    workload: str = "ysb"
    scheduler: str = "Klink"
    n_queries: int = 60
    duration_ms: float = DEFAULT_DURATION_MS
    cores: int = 24
    cycle_ms: float = 120.0
    delay: str = "uniform"
    rate_scale: float = 1.0
    seed: int = 1
    memory_gb: Optional[float] = None  # None -> per-workload default
    confidence: Optional[float] = None  # Klink's f (None -> 95)
    fault_seed: Optional[int] = None  # None -> no fault injection
    check_invariants: bool = False  # attach an InvariantMonitor
    validate: bool = True  # static plan validation at submission
    audit: bool = False  # attach a scheduler-decision AuditLog
    profile: bool = False  # attach a per-operator OperatorProfiler
    audit_max_rows: int = 50_000  # AuditLog in-memory bound
    trace_path: Optional[str] = None  # stream a full run trace to this file
    # in-run telemetry (repro.obs.timeseries); traced runs always sample
    telemetry: bool = False  # attach a TelemetrySampler
    telemetry_period_ms: float = 200.0  # virtual-clock sample period
    deadline_slo_ms: float = 1000.0  # latency above this = deadline miss
    alert_rules: Tuple[str, ...] = DEFAULT_RULE_TEXTS  # rule texts (hashable)

    def resolved_memory_gb(self) -> float:
        if self.memory_gb is not None:
            return self.memory_gb
        return WORKLOAD_MEMORY_GB[self.workload.lower()]


@dataclass
class ExperimentResult:
    """Metrics of one run plus the engine-independent headline numbers."""

    config: ExperimentConfig
    metrics: RunMetrics
    monitor: Optional[InvariantMonitor] = None
    audit: Optional[AuditLog] = None
    chain_profiles: List[ChainProfile] = field(default_factory=list)
    telemetry: Optional[TelemetrySampler] = None

    @property
    def summary(self) -> Dict[str, float]:
        return self.metrics.summary()

    def row(self) -> str:
        """One formatted table row (used by bench output)."""
        s = self.summary
        return (
            f"{self.config.scheduler:16s} n={self.config.n_queries:3d} "
            f"mean={s['mean_latency_ms'] / 1000:6.2f}s "
            f"p90={s['p90_latency_ms'] / 1000:6.2f}s "
            f"p99={s['p99_latency_ms'] / 1000:6.2f}s "
            f"thr={s['throughput_eps'] / 1e5:5.2f}x1e5ev/s "
            f"cpu={s['mean_cpu_pct']:5.1f}% "
            f"mem={s['mean_memory_gb']:5.2f}GB"
        )


def trace_meta(config: ExperimentConfig) -> Dict[str, object]:
    """The experiment identity recorded in a trace's ``meta`` record."""
    from repro.obs import SCHEMA_VERSION

    return {
        "schema_version": SCHEMA_VERSION,
        "workload": config.workload,
        "scheduler": config.scheduler,
        "n_queries": config.n_queries,
        "duration_ms": config.duration_ms,
        "cores": config.cores,
        "cycle_ms": config.cycle_ms,
        "delay": config.delay,
        "rate_scale": config.rate_scale,
        "seed": config.seed,
    }


def trace_summary(metrics: RunMetrics) -> Dict[str, object]:
    """The end-of-run ``summary`` record of a trace (headline numbers
    plus the latency CDF points the report renders)."""
    summary: Dict[str, object] = dict(metrics.summary())
    summary["cycles"] = metrics.cycles
    summary["backpressure_cycles"] = metrics.backpressure_cycles
    summary["total_events_processed"] = metrics.total_events_processed
    summary["events_shed"] = metrics.events_shed
    summary["late_events_dropped"] = metrics.late_events_dropped
    summary["latency_cdf"] = [list(point) for point in metrics.latency_cdf()]
    return summary


def trace_from_result(result: ExperimentResult) -> Trace:
    """Assemble an in-memory run trace from an audited/profiled result.

    Requires the experiment to have run with ``audit=True``; operator
    and chain sections are filled when ``profile=True`` was also set,
    series/alert sections when ``telemetry=True``.
    """
    if result.audit is None:
        raise ValueError(
            "experiment ran without an audit log; re-run with audit=True"
        )
    sampler = result.telemetry
    return Trace(
        meta=trace_meta(result.config),
        cycles=[record.to_dict() for record in result.audit.rows],
        operators=[p.to_dict() for p in result.metrics.operator_profiles],
        chains=[c.to_dict() for c in result.chain_profiles],
        series=sampler.series_rows() if sampler is not None else [],
        alerts=sampler.alert_rows() if sampler is not None else [],
        summary=trace_summary(result.metrics),
    )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Build the workload, run the engine, return metrics."""
    params = WorkloadParams(
        delay=config.delay, rate_scale=config.rate_scale, seed=config.seed
    )
    queries = build_queries(config.workload, config.n_queries, params)
    overrides = {}
    if config.confidence is not None and config.scheduler.startswith("Klink"):
        overrides["confidence"] = config.confidence
    scheduler = make_scheduler(config.scheduler, **overrides)
    faults = None
    if config.fault_seed is not None:
        faults = FaultPlan.random(
            config.fault_seed,
            config.duration_ms,
            query_ids=[q.query_id for q in queries],
        )
    monitor = InvariantMonitor() if config.check_invariants else None
    writer = None
    if config.trace_path is not None:
        writer = TraceWriter(config.trace_path, meta=trace_meta(config))
    audit = None
    if config.audit or writer is not None:
        audit = AuditLog(max_rows=config.audit_max_rows, stream=writer)
    profiler = None
    if config.profile or writer is not None:
        profiler = OperatorProfiler()
    sampler = None
    if config.telemetry or writer is not None:
        # Traced runs always sample: the trace's v2 ``series`` section is
        # what `repro-bench compare` and the CI telemetry gate consume.
        sampler = TelemetrySampler(
            TelemetryConfig(
                period_ms=config.telemetry_period_ms,
                deadline_slo_ms=config.deadline_slo_ms,
            ),
            rules=parse_rules(config.alert_rules),
        )
    engine = Engine(
        queries,
        scheduler,
        cores=config.cores,
        cycle_ms=config.cycle_ms,
        memory=MemoryConfig(capacity_bytes=config.resolved_memory_gb() * GIB),
        seed=config.seed,
        audit=audit,
        profiler=profiler,
        faults=faults,
        invariants=monitor,
        telemetry=sampler,
        validate=config.validate,
    )
    metrics = engine.run(config.duration_ms)
    chains = profiler.chain_profiles(queries) if profiler is not None else []
    if writer is not None:
        writer.finalize(
            operators=[p.to_dict() for p in metrics.operator_profiles],
            chains=[c.to_dict() for c in chains],
            series=sampler.series_rows() if sampler is not None else (),
            alerts=sampler.alert_rows() if sampler is not None else (),
            summary=trace_summary(metrics),
        )
    return ExperimentResult(
        config=config,
        metrics=metrics,
        monitor=monitor,
        audit=audit,
        chain_profiles=chains,
        telemetry=sampler,
    )


_CACHE: Dict[ExperimentConfig, ExperimentResult] = {}


def run_cached(config: ExperimentConfig) -> ExperimentResult:
    """Run an experiment once per session; reuse across figures.

    Figures 6a/6c/6d, for example, are different projections of the same
    query-count sweep; caching keeps the full bench suite tractable.
    """
    if config not in _CACHE:
        _CACHE[config] = run_experiment(config)
    return _CACHE[config]


def sweep(
    base: ExperimentConfig,
    schedulers: List[str],
    n_queries: List[int],
) -> Dict[Tuple[str, int], ExperimentResult]:
    """Run a (scheduler x query-count) sweep with caching."""
    out = {}
    for name in schedulers:
        for n in n_queries:
            cfg = replace(base, scheduler=name, n_queries=n)
            out[(name, n)] = run_cached(cfg)
    return out
