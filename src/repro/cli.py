"""Command-line interface for running reproduction experiments.

Usage (installed as ``repro-bench``, or ``python -m repro.cli``)::

    repro-bench run --workload ysb --scheduler Klink --queries 60
    repro-bench sweep --workload lrb --queries 20 40 60 --schedulers Default Klink
    repro-bench sweep --workload ysb --jobs 4 --no-cache
    repro-bench perf --jobs 4 --out benchmarks/results/BENCH_perf.json
    repro-bench report --workload ysb --scheduler Klink --queries 8 --duration 30
    repro-bench report --trace trace.jsonl --format json
    repro-bench report --trace trace.jsonl --chrome flame.json
    repro-bench compare trace.jsonl --emit BENCH_ysb.json
    repro-bench compare BENCH_ysb.json fresh_trace.jsonl
    repro-bench estimate --delay zipf --confidence 95
    repro-bench check-plan --workload ysb --queries 4
    repro-bench lint src/repro
    repro-bench list

Every command prints a human-readable table; ``--csv PATH`` additionally
writes machine-readable rows.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from dataclasses import replace
from typing import List, Optional

from repro.bench.estimation import estimator_accuracy
from repro.bench.runner import (
    ExperimentConfig,
    SCHEDULER_NAMES,
    WORKLOAD_MEMORY_GB,
    configure_cache,
    run_cached,
    run_experiment,
    sweep,
    trace_from_result,
)
from repro.core.estimator import SwmIngestionEstimator
from repro.core.lr import LinearRegressionEstimator
from repro.workloads import (
    WorkloadParams,
    build_queries,
    make_delay_model,
    workload_names,
)

_SUMMARY_FIELDS = [
    "workload",
    "scheduler",
    "n_queries",
    "mean_latency_ms",
    "p90_latency_ms",
    "p99_latency_ms",
    "throughput_eps",
    "mean_memory_gb",
    "mean_cpu_pct",
    "overhead_pct",
]


def _write_csv(path: str, rows: List[dict]) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_SUMMARY_FIELDS)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in _SUMMARY_FIELDS})


def _summary_row(res) -> dict:
    row = dict(res.summary)
    row["workload"] = res.config.workload
    row["scheduler"] = res.config.scheduler
    row["n_queries"] = res.config.n_queries
    row.pop("mean_slowdown", None)
    return row


def _report_monitors(results: List) -> int:
    """Print invariant reports for monitored runs; 1 if any violated."""
    exit_code = 0
    for res in results:
        if res.monitor is None:
            continue
        label = f"{res.config.scheduler}/n={res.config.n_queries}"
        print(f"[invariants {label}] {res.monitor.report()}")
        if not res.monitor.ok:
            exit_code = 1
    return exit_code


def _print_rows(rows: List[dict]) -> None:
    print(
        f"{'workload':9s} {'scheduler':16s} {'n':>4s} {'mean':>8s} "
        f"{'p90':>8s} {'p99':>8s} {'thr(ev/s)':>12s} {'mem(GB)':>8s} {'cpu%':>6s}"
    )
    for r in rows:
        print(
            f"{r['workload']:9s} {r['scheduler']:16s} {r['n_queries']:4d} "
            f"{r['mean_latency_ms'] / 1000:7.2f}s "
            f"{r['p90_latency_ms'] / 1000:7.2f}s "
            f"{r['p99_latency_ms'] / 1000:7.2f}s "
            f"{r['throughput_eps']:12,.0f} "
            f"{r['mean_memory_gb']:8.3f} "
            f"{r['mean_cpu_pct']:6.1f}"
        )


def _fault_seed(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"fault seed must be non-negative: {value}"
        )
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="ysb", choices=workload_names())
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds (default 120)")
    parser.add_argument("--cores", type=int, default=24)
    parser.add_argument("--cycle", type=float, default=120.0,
                        help="scheduling cycle r in ms (default 120)")
    parser.add_argument("--delay", default="uniform", choices=["uniform", "zipf"])
    parser.add_argument("--memory-gb", type=float, default=None,
                        help="memory capacity (default: per-workload)")
    parser.add_argument("--rate-scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--csv", default=None, help="write results as CSV")
    parser.add_argument(
        "--faults", type=_fault_seed, default=None, metavar="SEED",
        help="inject a randomized (but reproducible) fault schedule "
             "generated from SEED: source stalls, watermark stragglers "
             "and drops, operator slowdowns, memory spikes",
    )
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="attach an InvariantMonitor asserting conservation, "
             "watermark-monotonicity, window-firing, and CPU-budget "
             "invariants every cycle; non-zero exit on any violation",
    )
    parser.add_argument(
        "--no-validate", action="store_true",
        help="skip static query-plan validation at engine submission",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="attach a virtual-clock telemetry sampler (queue depth, "
             "watermark lag, slack, SWM-delay moments, memory-mode "
             "occupancy, latency series + SLO alert rules)",
    )
    parser.add_argument(
        "--telemetry-period", type=float, default=200.0, metavar="MS",
        help="telemetry sample period in virtual ms (default 200)",
    )
    parser.add_argument(
        "--slo-ms", type=float, default=1000.0, metavar="MS",
        help="end-to-end latency SLO; latencies above it count as "
             "deadline misses (default 1000)",
    )
    parser.add_argument(
        "--alert", action="append", default=None, metavar="RULE",
        help="alert rule, e.g. 'latency_recent_p99_ms > 1000 for 5s' or "
             "'queue_depth growing for 10 samples'; repeatable "
             "(default: the built-in SLO rule set)",
    )
    parser.add_argument(
        "--checkpoint-period", type=float, default=None, metavar="MS",
        help="take a deterministic engine checkpoint every MS of virtual "
             "time (repro.resilience); enables restart/standby recovery "
             "and the checkpoint metrics in the trace summary",
    )
    parser.add_argument(
        "--recover", default=None, choices=["restart", "standby", "none"],
        help="recovery strategy for injected node failures: 'restart' "
             "rolls back to the last checkpoint when the node returns, "
             "'standby' promotes a hot standby at detection, 'none' "
             "models a crash that loses the node's volatile state "
             "(default: legacy lossless pause). restart/standby imply "
             "--checkpoint-period 5000 unless one is given",
    )
    parser.add_argument(
        "--batch-size", type=int, default=64, metavar="N",
        help="rows coalesced per channel queue entry (default 64); "
             "1 selects the per-event reference path. Execution is "
             "byte-identical for every value — summaries and traces "
             "match batch-size 1 exactly — so this only trades memory "
             "for simulation wall-clock",
    )
    parser.add_argument(
        "--scalar-kernel", action="store_true",
        help="run the scalar reference cycle kernel (per-record delay "
             "draws + global network heap) instead of the vectorized "
             "one (batched draws + calendar queue). Both kernels are "
             "byte-identical by contract — this flag exists for the "
             "equivalence gate and for bisecting kernel regressions",
    )
    parser.add_argument(
        "--lineage-sample-rate", type=float, default=0.0, metavar="RATE",
        help="trace a deterministic hash-sampled fraction of records "
             "end-to-end (network/queue/execute/window/emit latency "
             "waterfall + SWM-forecast audit); a pure observer — any "
             "rate leaves summaries and checkpoints byte-identical to "
             "an untraced run (default 0 = off)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result-cache directory (default: "
             "$REPRO_BENCH_CACHE or .bench_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache: every point simulates "
             "and nothing is written to the cache directory",
    )


def _configure_cli_cache(args: argparse.Namespace) -> None:
    """Apply the run/sweep caching flags to the module-default cache."""
    configure_cache(args.cache_dir, enabled=not args.no_cache)


def _telemetry_fields(args: argparse.Namespace) -> dict:
    """ExperimentConfig kwargs shared by run/sweep telemetry flags."""
    fields = {
        "telemetry": args.telemetry,
        "telemetry_period_ms": args.telemetry_period,
        "deadline_slo_ms": args.slo_ms,
    }
    if args.alert:
        fields["alert_rules"] = tuple(args.alert)
    return fields


def _report_alerts(results: List) -> None:
    """Print fired-alert summaries for telemetry-sampled runs."""
    for res in results:
        sampler = res.telemetry
        if sampler is None or not sampler.alerts.events:
            continue
        label = f"{res.config.scheduler}/n={res.config.n_queries}"
        counts = sampler.alerts.counts()
        body = ", ".join(f"{rule}={n}" for rule, n in counts.items())
        print(f"[alerts {label}] {len(sampler.alerts.events)} fired: {body}")


def cmd_run(args: argparse.Namespace) -> int:
    cfg = ExperimentConfig(
        workload=args.workload,
        scheduler=args.scheduler,
        n_queries=args.queries,
        duration_ms=args.duration * 1000.0,
        cores=args.cores,
        cycle_ms=args.cycle,
        delay=args.delay,
        rate_scale=args.rate_scale,
        seed=args.seed,
        memory_gb=args.memory_gb,
        fault_seed=args.faults,
        check_invariants=args.check_invariants,
        validate=not args.no_validate,
        trace_path=args.trace,
        checkpoint_period_ms=args.checkpoint_period,
        recover=args.recover,
        batch_size=args.batch_size,
        lineage_sample_rate=args.lineage_sample_rate,
        vectorized=not args.scalar_kernel,
        **_telemetry_fields(args),
    )
    if args.bench_json:
        # Snapshots are summarized from the full trace sections.
        cfg = replace(cfg, audit=True, profile=True, telemetry=True)
    _configure_cli_cache(args)
    res = run_cached(cfg)
    if args.trace:
        print(f"[trace] wrote {args.trace}")
    if args.bench_json:
        from repro.obs.compare import snapshot_from_trace, write_snapshot

        snapshot = snapshot_from_trace(trace_from_result(res))
        write_snapshot(args.bench_json, snapshot)
        print(f"[bench] wrote {args.bench_json}")
    rows = [_summary_row(res)]
    _print_rows(rows)
    if args.csv:
        _write_csv(args.csv, rows)
    _report_alerts([res])
    return _report_monitors([res])


def cmd_sweep(args: argparse.Namespace) -> int:
    base = ExperimentConfig(
        workload=args.workload,
        duration_ms=args.duration * 1000.0,
        cores=args.cores,
        cycle_ms=args.cycle,
        delay=args.delay,
        rate_scale=args.rate_scale,
        seed=args.seed,
        memory_gb=args.memory_gb,
        fault_seed=args.faults,
        check_invariants=args.check_invariants,
        validate=not args.no_validate,
        checkpoint_period_ms=args.checkpoint_period,
        recover=args.recover,
        batch_size=args.batch_size,
        lineage_sample_rate=args.lineage_sample_rate,
        vectorized=not args.scalar_kernel,
        **_telemetry_fields(args),
    )
    _configure_cli_cache(args)
    grid = sweep(base, args.schedulers, args.queries, jobs=args.jobs)
    rows = []
    results = []
    for scheduler in args.schedulers:
        for n in args.queries:
            res = grid[(scheduler, n)]
            results.append(res)
            rows.append(_summary_row(res))
    _print_rows(rows)
    if args.csv:
        _write_csv(args.csv, rows)
    _report_alerts(results)
    return _report_monitors(results)


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import build_report, jsonify, read_trace, render_text
    from repro.obs.report import render_waterfall
    from repro.obs.schema import (
        SchemaError,
        validate_alert,
        validate_cycle,
        validate_lineage,
        validate_lineage_summary,
        validate_operator,
        validate_report,
        validate_series,
        validate_swm_forecast,
    )

    if args.trace is not None:
        try:
            trace = read_trace(args.trace)
        except (OSError, ValueError) as exc:
            print(f"[report] ERROR: cannot read trace: {exc}", file=sys.stderr)
            return 1
        if not trace.meta:
            print(
                f"[report] ERROR: {args.trace}: missing meta record "
                "(not a run trace?)",
                file=sys.stderr,
            )
            return 1
        if not trace.summary:
            # A finalized trace always ends with its summary record; a
            # missing one means the run died mid-write (truncated file).
            print(
                f"[report] ERROR: {args.trace}: truncated trace "
                "(no summary record)",
                file=sys.stderr,
            )
            return 1
    else:
        cfg = ExperimentConfig(
            workload=args.workload,
            scheduler=args.scheduler,
            n_queries=args.queries,
            duration_ms=args.duration * 1000.0,
            cores=args.cores,
            cycle_ms=args.cycle,
            delay=args.delay,
            rate_scale=args.rate_scale,
            seed=args.seed,
            memory_gb=args.memory_gb,
            audit=True,
            profile=True,
            telemetry=True,
            trace_path=args.save_trace,
            lineage_sample_rate=args.lineage_sample_rate,
        )
        res = run_experiment(cfg)
        trace = trace_from_result(res)
    report = build_report(trace, top_k=args.top_k)
    payload = json.loads(report.to_json())
    if args.check_schema:
        try:
            validate_report(payload)
            for row in trace.cycles:
                validate_cycle(jsonify(row))
            for row in trace.operators:
                validate_operator(jsonify(row))
            for row in trace.series:
                validate_series(jsonify(row))
            for row in trace.alerts:
                validate_alert(jsonify(row))
            for row in trace.lineage:
                validate_lineage(jsonify(row))
            for row in trace.swm_forecast:
                validate_swm_forecast(jsonify(row))
            if trace.lineage_summary:
                validate_lineage_summary(jsonify(trace.lineage_summary))
        except SchemaError as exc:
            print(f"[schema] FAIL: {exc}", file=sys.stderr)
            return 1
        print(
            f"[schema] OK: report + {len(trace.cycles)} cycle, "
            f"{len(trace.operators)} operator, {len(trace.series)} series, "
            f"{len(trace.alerts)} alert, and {len(trace.lineage)} "
            "lineage records",
            file=sys.stderr,
        )
    if args.chrome:
        from repro.obs.flame import write_chrome_trace

        try:
            write_chrome_trace(args.chrome, trace)
        except SchemaError as exc:
            print(f"[chrome] FAIL: {exc}", file=sys.stderr)
            return 1
        print(f"[chrome] wrote {args.chrome}", file=sys.stderr)
    if args.waterfall:
        print(render_waterfall(report))
    elif args.format == "json":
        print(report.to_json())
    else:
        print(render_text(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs.compare import (
        CompareThresholds,
        check_snapshot,
        compare_snapshots,
        dumps_snapshot,
        load_input,
        render_comparison,
        write_snapshot,
    )

    if len(args.paths) not in (1, 2):
        print("[compare] ERROR: pass one input (with --emit) or two "
              "inputs to diff", file=sys.stderr)
        return 2
    try:
        snapshots = [load_input(path) for path in args.paths]
    except (OSError, ValueError) as exc:
        print(f"[compare] ERROR: {exc}", file=sys.stderr)
        return 2
    if args.check:
        failed = False
        for path, snapshot in zip(args.paths, snapshots):
            problems = check_snapshot(snapshot)
            for problem in problems:
                print(f"[check] {path}: {problem}", file=sys.stderr)
            if problems:
                failed = True
            else:
                print(f"[check] OK: {path}", file=sys.stderr)
        if failed:
            return 1
    current = snapshots[-1]
    if args.emit:
        write_snapshot(args.emit, current)
        print(f"[compare] wrote {args.emit}", file=sys.stderr)
    if len(snapshots) == 1:
        if not args.emit and not args.check:
            print(dumps_snapshot(current), end="")
        return 0
    thresholds = CompareThresholds(
        latency_pct=args.latency_threshold,
        throughput_pct=args.throughput_threshold,
        operator_cpu_pct=args.operator_cpu_threshold,
        max_new_alerts=args.max_new_alerts,
        max_new_deadline_misses=args.max_new_deadline_misses,
    )
    result = compare_snapshots(snapshots[0], current, thresholds)
    if args.format == "json":
        from repro.obs import dumps_line

        print(dumps_line(result.to_dict()))
    else:
        print(render_comparison(result))
    return 0 if result.ok else 1


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.bench.perf import render_perf, run_perf
    from repro.obs.compare import (
        compare_snapshots,
        load_snapshot,
        render_comparison,
        write_snapshot,
    )

    try:
        snapshot = run_perf(
            jobs=args.jobs, repeats=args.repeats, profile=args.profile
        )
    except ValueError as exc:
        print(f"[perf] ERROR: {exc}", file=sys.stderr)
        return 2
    print(render_perf(snapshot))
    if args.out:
        write_snapshot(args.out, snapshot)
        print(f"[perf] wrote {args.out}", file=sys.stderr)
    if args.baseline:
        try:
            baseline = load_snapshot(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"[perf] ERROR: {exc}", file=sys.stderr)
            return 2
        result = compare_snapshots(baseline, snapshot)
        print(render_comparison(result))
        # Wall time is machine-dependent; callers decide whether a
        # regression verdict is binding (CI runs this warn-only).
        return 0 if result.ok else 1
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    if args.estimator == "lr":
        estimator = LinearRegressionEstimator()
        label = "LR (gradient descent)"
    else:
        estimator = SwmIngestionEstimator(confidence=args.confidence)
        label = f"Klink (f={args.confidence:g})"
    accs = []
    for seed in range(args.repetitions):
        model = make_delay_model(args.delay, seed)
        r = estimator_accuracy(estimator, model, n_epochs=args.epochs, seed=seed)
        accs.append(r.accuracy)
    mean_acc = 100.0 * sum(accs) / len(accs)
    print(f"{label} under {args.delay}: accuracy {mean_acc:.1f}% "
          f"({args.repetitions} seeds x {args.epochs} epochs)")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import run_lint

    _, exit_code = run_lint(
        args.paths,
        output_format=args.format,
        quiet=args.quiet,
        state=args.state,
    )
    return exit_code


def cmd_statecheck(args: argparse.Namespace) -> int:
    from repro.analysis.statecheck import run_statecheck

    _, exit_code = run_statecheck(
        args.paths,
        output_format=args.format,
        update_fingerprint=args.update_fingerprint,
    )
    return exit_code


def cmd_check_plan(args: argparse.Namespace) -> int:
    from repro.analysis.plan_check import PlanValidationError, validate_queries

    params = WorkloadParams(delay=args.delay, seed=args.seed)
    try:
        queries = build_queries(args.workload, args.queries, params)
        report = validate_queries(queries, raise_on_error=False)
    except PlanValidationError as exc:
        # Structural errors surface while the Query objects are built.
        print(exc.report.render_text())
        return 1
    if args.format == "json":
        print(report.to_json())
    else:
        text = report.render_text()
        if text:
            print(text)
        print(
            f"{args.workload}/{args.queries} queries: "
            f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        )
    return 1 if report.errors else 0


def cmd_list(args: argparse.Namespace) -> int:
    print("workloads  :", ", ".join(workload_names()))
    print("schedulers :", ", ".join(SCHEDULER_NAMES))
    print("memory/GiB :", ", ".join(
        f"{k}={v}" for k, v in WORKLOAD_MEMORY_GB.items()
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Klink reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a single experiment")
    _add_common(run_p)
    run_p.add_argument("--scheduler", default="Klink", choices=SCHEDULER_NAMES)
    run_p.add_argument("--queries", type=int, default=60)
    run_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="stream a full run trace (scheduler decisions, operator "
             "profiles, telemetry series, summary) to PATH as JSONL, "
             "for repro-bench report / compare",
    )
    run_p.add_argument(
        "--bench-json", default=None, metavar="PATH",
        help="emit a BENCH_<workload>.json telemetry snapshot of the run "
             "(implies audit/profile/telemetry), for repro-bench compare",
    )
    run_p.set_defaults(func=cmd_run)

    report_p = sub.add_parser(
        "report",
        help="render a run report (decision timeline, per-operator "
             "profile, latency CDF) from a saved trace or a fresh run",
    )
    report_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="read a trace written by 'run --trace' instead of running",
    )
    report_p.add_argument("--workload", default="ysb", choices=workload_names())
    report_p.add_argument("--scheduler", default="Klink",
                          choices=SCHEDULER_NAMES)
    report_p.add_argument("--queries", type=int, default=8)
    report_p.add_argument("--duration", type=float, default=30.0,
                          help="simulated seconds (default 30)")
    report_p.add_argument("--cores", type=int, default=24)
    report_p.add_argument("--cycle", type=float, default=120.0)
    report_p.add_argument("--delay", default="uniform",
                          choices=["uniform", "zipf"])
    report_p.add_argument("--rate-scale", type=float, default=1.0)
    report_p.add_argument("--seed", type=int, default=1)
    report_p.add_argument("--memory-gb", type=float, default=None)
    report_p.add_argument("--save-trace", default=None, metavar="PATH",
                          help="also stream the run's trace to PATH")
    report_p.add_argument("--top-k", type=int, default=10,
                          help="hottest operators to list (default 10)")
    report_p.add_argument("--format", default="text",
                          choices=["text", "json"])
    report_p.add_argument("--out", default=None, metavar="PATH",
                          help="also write the JSON report to PATH")
    report_p.add_argument(
        "--check-schema", action="store_true",
        help="validate the report and trace records against the "
             "documented schemas; non-zero exit on mismatch",
    )
    report_p.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="also export a Chrome trace-event (chrome://tracing / "
             "Perfetto) flame chart of the run to PATH",
    )
    report_p.add_argument(
        "--lineage-sample-rate", type=float, default=0.0, metavar="RATE",
        help="for fresh runs: trace a deterministic hash-sampled "
             "fraction of records for the latency waterfall and "
             "SWM-forecast audit (default 0 = off)",
    )
    report_p.add_argument(
        "--waterfall", action="store_true",
        help="print only the lineage sections: latency waterfall, "
             "SWM-forecast accuracy, and tracing overhead",
    )
    report_p.set_defaults(func=cmd_report)

    compare_p = sub.add_parser(
        "compare",
        help="emit/diff BENCH_<workload>.json telemetry snapshots; "
             "nonzero exit when the second input regresses the first",
    )
    compare_p.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="traces (.jsonl) or snapshots (.json): one input with "
             "--emit to snapshot it, two inputs (baseline, current) "
             "to diff",
    )
    compare_p.add_argument("--emit", default=None, metavar="PATH",
                           help="write the (last) input's snapshot to PATH")
    compare_p.add_argument("--latency-threshold", type=float, default=10.0,
                           metavar="PCT",
                           help="allowed latency increase in %% (default 10)")
    compare_p.add_argument("--throughput-threshold", type=float, default=10.0,
                           metavar="PCT",
                           help="allowed throughput decrease in %% (default 10)")
    compare_p.add_argument("--operator-cpu-threshold", type=float,
                           default=25.0, metavar="PCT",
                           help="allowed per-operator CPU growth in %% "
                                "(default 25)")
    compare_p.add_argument("--max-new-alerts", type=int, default=0,
                           help="allowed alert-count increase (default 0)")
    compare_p.add_argument("--max-new-deadline-misses", type=int, default=0,
                           help="allowed deadline-miss increase (default 0)")
    compare_p.add_argument("--format", default="text",
                           choices=["text", "json"])
    compare_p.add_argument(
        "--check", action="store_true",
        help="structurally validate every input snapshot (shape, finite "
             "numbers, non-negative counts); non-zero exit on problems",
    )
    compare_p.set_defaults(func=cmd_compare)

    sweep_p = sub.add_parser("sweep", help="sweep query counts x schedulers")
    _add_common(sweep_p)
    sweep_p.add_argument("--schedulers", nargs="+", default=["Default", "Klink"],
                         choices=SCHEDULER_NAMES)
    sweep_p.add_argument("--queries", nargs="+", type=int,
                         default=[20, 40, 60, 80])
    sweep_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan cache-miss points over N worker processes (results "
             "are byte-identical to a serial run; default 1)",
    )
    sweep_p.set_defaults(func=cmd_sweep)

    perf_p = sub.add_parser(
        "perf",
        help="time the simulator itself (wall clock) over a pinned "
             "YSB/LRB grid and emit a BENCH_perf.json snapshot",
    )
    perf_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="also time a parallel pass with N workers and report the "
             "speedup over serial (default 1: serial only)",
    )
    perf_p.add_argument(
        "--repeats", type=int, default=1, metavar="N",
        help="time each grid point N times and keep the fastest "
             "(default 1)",
    )
    perf_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the perf snapshot (BENCH_perf.json format) to PATH",
    )
    perf_p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against a baseline perf snapshot; non-zero exit "
             "on regression (advisory: wall time is machine-dependent)",
    )
    perf_p.add_argument(
        "--profile", action="store_true",
        help="attach a cycle-phase profiler to every timed run and "
             "report generate/deliver/schedule/execute/drain wall "
             "milliseconds per cycle (pure observer: simulated output "
             "is unchanged)",
    )
    perf_p.set_defaults(func=cmd_perf)

    est_p = sub.add_parser("estimate", help="SWM estimator accuracy")
    est_p.add_argument("--estimator", default="klink", choices=["klink", "lr"])
    est_p.add_argument("--confidence", type=float, default=95.0)
    est_p.add_argument("--delay", default="uniform", choices=["uniform", "zipf"])
    est_p.add_argument("--epochs", type=int, default=400)
    est_p.add_argument("--repetitions", type=int, default=3)
    est_p.set_defaults(func=cmd_estimate)

    lint_p = sub.add_parser(
        "lint", help="run the determinism linter (KL rules) over source trees"
    )
    lint_p.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default src/repro)")
    lint_p.add_argument("--format", default="text", choices=["text", "json"])
    lint_p.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    lint_p.add_argument("--state", action="store_true",
                        help="also run the state-contract analyzer "
                        "(KS2xx/KW3xx rules)")
    lint_p.set_defaults(func=cmd_lint)

    state_p = sub.add_parser(
        "statecheck",
        help="check the checkpoint state contract (KS2xx/KW3xx rules)",
    )
    state_p.add_argument("paths", nargs="*", default=["src/repro"],
                         help="package roots to analyze (default src/repro)")
    state_p.add_argument("--format", default="text", choices=["text", "json"])
    state_p.add_argument("--update-fingerprint", action="store_true",
                         help="rewrite resilience/schema_fingerprint.json "
                         "from the current contract")
    state_p.set_defaults(func=cmd_statecheck)

    check_p = sub.add_parser(
        "check-plan",
        help="statically validate a workload's query plans (KP rules)",
    )
    check_p.add_argument("--workload", default="ysb", choices=workload_names())
    check_p.add_argument("--queries", type=int, default=4)
    check_p.add_argument("--delay", default="uniform",
                         choices=["uniform", "zipf"])
    check_p.add_argument("--seed", type=int, default=1)
    check_p.add_argument("--format", default="text", choices=["text", "json"])
    check_p.set_defaults(func=cmd_check_plan)

    list_p = sub.add_parser("list", help="list workloads and schedulers")
    list_p.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
