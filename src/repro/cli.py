"""Command-line interface for running reproduction experiments.

Usage (installed as ``repro-bench``, or ``python -m repro.cli``)::

    repro-bench run --workload ysb --scheduler Klink --queries 60
    repro-bench sweep --workload lrb --queries 20 40 60 --schedulers Default Klink
    repro-bench report --workload ysb --scheduler Klink --queries 8 --duration 30
    repro-bench report --trace trace.jsonl --format json
    repro-bench estimate --delay zipf --confidence 95
    repro-bench check-plan --workload ysb --queries 4
    repro-bench lint src/repro
    repro-bench list

Every command prints a human-readable table; ``--csv PATH`` additionally
writes machine-readable rows.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from dataclasses import replace
from typing import List, Optional

from repro.bench.estimation import estimator_accuracy
from repro.bench.runner import (
    ExperimentConfig,
    SCHEDULER_NAMES,
    WORKLOAD_MEMORY_GB,
    run_experiment,
    trace_from_result,
)
from repro.core.estimator import SwmIngestionEstimator
from repro.core.lr import LinearRegressionEstimator
from repro.workloads import (
    WorkloadParams,
    build_queries,
    make_delay_model,
    workload_names,
)

_SUMMARY_FIELDS = [
    "workload",
    "scheduler",
    "n_queries",
    "mean_latency_ms",
    "p90_latency_ms",
    "p99_latency_ms",
    "throughput_eps",
    "mean_memory_gb",
    "mean_cpu_pct",
    "overhead_pct",
]


def _write_csv(path: str, rows: List[dict]) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_SUMMARY_FIELDS)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in _SUMMARY_FIELDS})


def _summary_row(res) -> dict:
    row = dict(res.summary)
    row["workload"] = res.config.workload
    row["scheduler"] = res.config.scheduler
    row["n_queries"] = res.config.n_queries
    row.pop("mean_slowdown", None)
    return row


def _report_monitors(results: List) -> int:
    """Print invariant reports for monitored runs; 1 if any violated."""
    exit_code = 0
    for res in results:
        if res.monitor is None:
            continue
        label = f"{res.config.scheduler}/n={res.config.n_queries}"
        print(f"[invariants {label}] {res.monitor.report()}")
        if not res.monitor.ok:
            exit_code = 1
    return exit_code


def _print_rows(rows: List[dict]) -> None:
    print(
        f"{'workload':9s} {'scheduler':16s} {'n':>4s} {'mean':>8s} "
        f"{'p90':>8s} {'p99':>8s} {'thr(ev/s)':>12s} {'mem(GB)':>8s} {'cpu%':>6s}"
    )
    for r in rows:
        print(
            f"{r['workload']:9s} {r['scheduler']:16s} {r['n_queries']:4d} "
            f"{r['mean_latency_ms'] / 1000:7.2f}s "
            f"{r['p90_latency_ms'] / 1000:7.2f}s "
            f"{r['p99_latency_ms'] / 1000:7.2f}s "
            f"{r['throughput_eps']:12,.0f} "
            f"{r['mean_memory_gb']:8.3f} "
            f"{r['mean_cpu_pct']:6.1f}"
        )


def _fault_seed(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"fault seed must be non-negative: {value}"
        )
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="ysb", choices=workload_names())
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds (default 120)")
    parser.add_argument("--cores", type=int, default=24)
    parser.add_argument("--cycle", type=float, default=120.0,
                        help="scheduling cycle r in ms (default 120)")
    parser.add_argument("--delay", default="uniform", choices=["uniform", "zipf"])
    parser.add_argument("--memory-gb", type=float, default=None,
                        help="memory capacity (default: per-workload)")
    parser.add_argument("--rate-scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--csv", default=None, help="write results as CSV")
    parser.add_argument(
        "--faults", type=_fault_seed, default=None, metavar="SEED",
        help="inject a randomized (but reproducible) fault schedule "
             "generated from SEED: source stalls, watermark stragglers "
             "and drops, operator slowdowns, memory spikes",
    )
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="attach an InvariantMonitor asserting conservation, "
             "watermark-monotonicity, window-firing, and CPU-budget "
             "invariants every cycle; non-zero exit on any violation",
    )
    parser.add_argument(
        "--no-validate", action="store_true",
        help="skip static query-plan validation at engine submission",
    )


def cmd_run(args: argparse.Namespace) -> int:
    cfg = ExperimentConfig(
        workload=args.workload,
        scheduler=args.scheduler,
        n_queries=args.queries,
        duration_ms=args.duration * 1000.0,
        cores=args.cores,
        cycle_ms=args.cycle,
        delay=args.delay,
        rate_scale=args.rate_scale,
        seed=args.seed,
        memory_gb=args.memory_gb,
        fault_seed=args.faults,
        check_invariants=args.check_invariants,
        validate=not args.no_validate,
        trace_path=args.trace,
    )
    res = run_experiment(cfg)
    if args.trace:
        print(f"[trace] wrote {args.trace}")
    rows = [_summary_row(res)]
    _print_rows(rows)
    if args.csv:
        _write_csv(args.csv, rows)
    return _report_monitors([res])


def cmd_sweep(args: argparse.Namespace) -> int:
    base = ExperimentConfig(
        workload=args.workload,
        duration_ms=args.duration * 1000.0,
        cores=args.cores,
        cycle_ms=args.cycle,
        delay=args.delay,
        rate_scale=args.rate_scale,
        seed=args.seed,
        memory_gb=args.memory_gb,
        fault_seed=args.faults,
        check_invariants=args.check_invariants,
        validate=not args.no_validate,
    )
    rows = []
    results = []
    for scheduler in args.schedulers:
        for n in args.queries:
            cfg = replace(base, scheduler=scheduler, n_queries=n)
            res = run_experiment(cfg)
            results.append(res)
            rows.append(_summary_row(res))
    _print_rows(rows)
    if args.csv:
        _write_csv(args.csv, rows)
    return _report_monitors(results)


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import build_report, jsonify, read_trace, render_text
    from repro.obs.schema import (
        SchemaError,
        validate_cycle,
        validate_operator,
        validate_report,
    )

    if args.trace is not None:
        trace = read_trace(args.trace)
    else:
        cfg = ExperimentConfig(
            workload=args.workload,
            scheduler=args.scheduler,
            n_queries=args.queries,
            duration_ms=args.duration * 1000.0,
            cores=args.cores,
            cycle_ms=args.cycle,
            delay=args.delay,
            rate_scale=args.rate_scale,
            seed=args.seed,
            memory_gb=args.memory_gb,
            audit=True,
            profile=True,
            trace_path=args.save_trace,
        )
        res = run_experiment(cfg)
        trace = trace_from_result(res)
    report = build_report(trace, top_k=args.top_k)
    payload = json.loads(report.to_json())
    if args.check_schema:
        try:
            validate_report(payload)
            for row in trace.cycles:
                validate_cycle(jsonify(row))
            for row in trace.operators:
                validate_operator(jsonify(row))
        except SchemaError as exc:
            print(f"[schema] FAIL: {exc}", file=sys.stderr)
            return 1
        print(
            f"[schema] OK: report + {len(trace.cycles)} cycle and "
            f"{len(trace.operators)} operator records",
            file=sys.stderr,
        )
    if args.format == "json":
        print(report.to_json())
    else:
        print(render_text(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    if args.estimator == "lr":
        estimator = LinearRegressionEstimator()
        label = "LR (gradient descent)"
    else:
        estimator = SwmIngestionEstimator(confidence=args.confidence)
        label = f"Klink (f={args.confidence:g})"
    accs = []
    for seed in range(args.repetitions):
        model = make_delay_model(args.delay, seed)
        r = estimator_accuracy(estimator, model, n_epochs=args.epochs, seed=seed)
        accs.append(r.accuracy)
    mean_acc = 100.0 * sum(accs) / len(accs)
    print(f"{label} under {args.delay}: accuracy {mean_acc:.1f}% "
          f"({args.repetitions} seeds x {args.epochs} epochs)")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import run_lint

    _, exit_code = run_lint(
        args.paths, output_format=args.format, quiet=args.quiet
    )
    return exit_code


def cmd_check_plan(args: argparse.Namespace) -> int:
    from repro.analysis.plan_check import PlanValidationError, validate_queries

    params = WorkloadParams(delay=args.delay, seed=args.seed)
    try:
        queries = build_queries(args.workload, args.queries, params)
        report = validate_queries(queries, raise_on_error=False)
    except PlanValidationError as exc:
        # Structural errors surface while the Query objects are built.
        print(exc.report.render_text())
        return 1
    if args.format == "json":
        print(report.to_json())
    else:
        text = report.render_text()
        if text:
            print(text)
        print(
            f"{args.workload}/{args.queries} queries: "
            f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        )
    return 1 if report.errors else 0


def cmd_list(args: argparse.Namespace) -> int:
    print("workloads  :", ", ".join(workload_names()))
    print("schedulers :", ", ".join(SCHEDULER_NAMES))
    print("memory/GiB :", ", ".join(
        f"{k}={v}" for k, v in WORKLOAD_MEMORY_GB.items()
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Klink reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a single experiment")
    _add_common(run_p)
    run_p.add_argument("--scheduler", default="Klink", choices=SCHEDULER_NAMES)
    run_p.add_argument("--queries", type=int, default=60)
    run_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="stream a full run trace (scheduler decisions, operator "
             "profiles, summary) to PATH as JSONL, for repro-bench report",
    )
    run_p.set_defaults(func=cmd_run)

    report_p = sub.add_parser(
        "report",
        help="render a run report (decision timeline, per-operator "
             "profile, latency CDF) from a saved trace or a fresh run",
    )
    report_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="read a trace written by 'run --trace' instead of running",
    )
    report_p.add_argument("--workload", default="ysb", choices=workload_names())
    report_p.add_argument("--scheduler", default="Klink",
                          choices=SCHEDULER_NAMES)
    report_p.add_argument("--queries", type=int, default=8)
    report_p.add_argument("--duration", type=float, default=30.0,
                          help="simulated seconds (default 30)")
    report_p.add_argument("--cores", type=int, default=24)
    report_p.add_argument("--cycle", type=float, default=120.0)
    report_p.add_argument("--delay", default="uniform",
                          choices=["uniform", "zipf"])
    report_p.add_argument("--rate-scale", type=float, default=1.0)
    report_p.add_argument("--seed", type=int, default=1)
    report_p.add_argument("--memory-gb", type=float, default=None)
    report_p.add_argument("--save-trace", default=None, metavar="PATH",
                          help="also stream the run's trace to PATH")
    report_p.add_argument("--top-k", type=int, default=10,
                          help="hottest operators to list (default 10)")
    report_p.add_argument("--format", default="text",
                          choices=["text", "json"])
    report_p.add_argument("--out", default=None, metavar="PATH",
                          help="also write the JSON report to PATH")
    report_p.add_argument(
        "--check-schema", action="store_true",
        help="validate the report and trace records against the "
             "documented schemas; non-zero exit on mismatch",
    )
    report_p.set_defaults(func=cmd_report)

    sweep_p = sub.add_parser("sweep", help="sweep query counts x schedulers")
    _add_common(sweep_p)
    sweep_p.add_argument("--schedulers", nargs="+", default=["Default", "Klink"],
                         choices=SCHEDULER_NAMES)
    sweep_p.add_argument("--queries", nargs="+", type=int,
                         default=[20, 40, 60, 80])
    sweep_p.set_defaults(func=cmd_sweep)

    est_p = sub.add_parser("estimate", help="SWM estimator accuracy")
    est_p.add_argument("--estimator", default="klink", choices=["klink", "lr"])
    est_p.add_argument("--confidence", type=float, default=95.0)
    est_p.add_argument("--delay", default="uniform", choices=["uniform", "zipf"])
    est_p.add_argument("--epochs", type=int, default=400)
    est_p.add_argument("--repetitions", type=int, default=3)
    est_p.set_defaults(func=cmd_estimate)

    lint_p = sub.add_parser(
        "lint", help="run the determinism linter (KL rules) over source trees"
    )
    lint_p.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default src/repro)")
    lint_p.add_argument("--format", default="text", choices=["text", "json"])
    lint_p.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    lint_p.set_defaults(func=cmd_lint)

    check_p = sub.add_parser(
        "check-plan",
        help="statically validate a workload's query plans (KP rules)",
    )
    check_p.add_argument("--workload", default="ysb", choices=workload_names())
    check_p.add_argument("--queries", type=int, default=4)
    check_p.add_argument("--delay", default="uniform",
                         choices=["uniform", "zipf"])
    check_p.add_argument("--seed", type=int, default=1)
    check_p.add_argument("--format", default="text", choices=["text", "json"])
    check_p.set_defaults(func=cmd_check_plan)

    list_p = sub.add_parser("list", help="list workloads and schedulers")
    list_p.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
