"""Klink and baseline scheduling policies (the paper's contribution)."""

from repro.core.baselines import (
    ALL_BASELINES,
    DefaultScheduler,
    FCFSScheduler,
    HighestRateScheduler,
    RoundRobinScheduler,
    StreamBoxScheduler,
)
from repro.core.classes import ClassBasedScheduler
from repro.core.estimator import (
    SwmEstimate,
    SwmIngestionEstimator,
    Z_SCORES,
    z_for_confidence,
)
from repro.core.klink import KlinkScheduler
from repro.core.lr import GradientDescentLinearRegression, LinearRegressionEstimator
from repro.core.memory_policy import PrefixPlan, best_prefix
from repro.core.scheduler import Allocation, Plan, Scheduler, SchedulerContext
from repro.core.slack import expected_slack, gaussian_q, interval_probability, survival

__all__ = [
    "KlinkScheduler",
    "DefaultScheduler",
    "FCFSScheduler",
    "RoundRobinScheduler",
    "HighestRateScheduler",
    "StreamBoxScheduler",
    "ALL_BASELINES",
    "ClassBasedScheduler",
    "Scheduler",
    "SchedulerContext",
    "Plan",
    "Allocation",
    "SwmEstimate",
    "SwmIngestionEstimator",
    "LinearRegressionEstimator",
    "GradientDescentLinearRegression",
    "Z_SCORES",
    "z_for_confidence",
    "expected_slack",
    "gaussian_q",
    "interval_probability",
    "survival",
    "PrefixPlan",
    "best_prefix",
]
