"""Baseline scheduling policies (Sec. 6.1.3).

* **Default** — Flink's scheduler performs no query-level runtime
  prioritization: operator threads share cores under the JVM/OS scheduler.
  Modelled as processor-sharing across all queries with queued work.
* **FCFS** — processes input in event arrival order: the query holding the
  oldest queued record runs first.
* **RR** — Round-Robin over the queries, a fixed core-slice each, avoiding
  starvation.
* **HR (Highest Rate)** [Sharaf et al., TODS 2008] — prioritizes the query
  (path) with the highest global output rate: output events produced per
  unit of CPU time, computed from per-operator selectivities and costs.
* **SBox (StreamBox)** [Miao et al., ATC 2017] — prioritizes the query
  whose window deadline is closest (the substream with the earliest
  watermark), scheduling it until a watermark is processed.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.scheduler import Allocation, Plan, Scheduler, SchedulerContext
from repro.spe.query import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.audit import QueryDecision


def _rank_by_keys(queries: List[Query], keys: List[float]) -> List[Query]:
    """Stable argsort of ``queries`` by the parallel SoA ``keys`` column.

    Equivalent ordering to ``sorted(queries, key=...)`` — Python's sort is
    stable, so ties preserve the input order under both formulations — but
    the key is a plain list index instead of a per-comparison callback.
    """
    order = sorted(range(len(queries)), key=keys.__getitem__)
    return [queries[i] for i in order]


def _explain_scored(
    plan: Plan, reason: str, score_of: Callable[[Query], Optional[float]]
) -> "List[QueryDecision]":
    """Audit-trail decisions for a policy ranked by one scalar key."""
    from repro.obs.audit import QueryDecision

    decisions = []
    for rank, alloc in enumerate(plan.allocations):
        query = alloc.query
        score = score_of(query)
        decisions.append(
            QueryDecision(
                query_id=query.query_id,
                rank=rank,
                reason=reason,
                score=score if score is None or math.isfinite(score) else None,
                memory_bytes=query.memory_bytes,
                queued_events=query.queued_events,
            )
        )
    return decisions


class DefaultScheduler(Scheduler):
    """Flink default: processor-sharing, no prioritization."""

    name = "Default"

    def plan(self, ctx: SchedulerContext) -> Plan:
        allocations = [Allocation(q) for q in ctx.queries]
        return Plan(allocations, mode="share")

    def explain_plan(
        self, ctx: SchedulerContext, plan: Plan
    ) -> "List[QueryDecision]":
        return _explain_scored(plan, "processor-share", lambda q: None)


class FCFSScheduler(Scheduler):
    """First-Come-First-Served over queued record arrival times."""

    name = "FCFS"

    def plan(self, ctx: SchedulerContext) -> Plan:
        queries = ctx.queries
        arrivals: List[float] = []
        for q in queries:
            arrival = q.oldest_queued_arrival()
            arrivals.append(arrival if arrival is not None else math.inf)
        ordered = _rank_by_keys(queries, arrivals)
        return Plan([Allocation(q) for q in ordered], mode="priority")

    def explain_plan(
        self, ctx: SchedulerContext, plan: Plan
    ) -> "List[QueryDecision]":
        # score: engine time of the oldest queued record (the ranking key)
        return _explain_scored(
            plan, "fcfs-oldest-arrival", lambda q: q.oldest_queued_arrival()
        )


class RoundRobinScheduler(Scheduler):
    """Fixed-quantum rotation over the deployed queries."""

    name = "RR"

    def __init__(self) -> None:
        self._cursor = 0

    def plan(self, ctx: SchedulerContext) -> Plan:
        queries = list(ctx.queries)
        if not queries:
            return Plan([], mode="priority")
        start = self._cursor % len(queries)
        rotation = queries[start:] + queries[:start]
        self._cursor = (start + ctx.cores) % len(queries)
        return Plan([Allocation(q) for q in rotation], mode="priority")

    def explain_plan(
        self, ctx: SchedulerContext, plan: Plan
    ) -> "List[QueryDecision]":
        return _explain_scored(plan, "rr-rotation", lambda q: None)

    def reset(self) -> None:
        self._cursor = 0

    def snapshot_state(self) -> Dict[str, object]:
        return {"cursor": self._cursor}

    def restore_state(self, state: Dict[str, object]) -> None:
        self._cursor = int(state["cursor"])  # type: ignore[arg-type]


class HighestRateScheduler(Scheduler):
    """Highest Rate: output events per CPU millisecond, descending.

    For a pipeline o_1..o_m the productivity of admitting one event is
    ``prod(sel_i) / sum_i(cost_i * prod_{j<i} sel_j)`` — the global output
    rate of the path. Measured selectivities/costs are used once observed,
    as HR's runtime implementation would.
    """

    name = "HR"

    @staticmethod
    def productivity(query: Query) -> float:
        out_fraction = 1.0
        cpu = 0.0
        for op in query.operators:
            cpu += out_fraction * op.cost_per_event_ms
            sel = (
                op.stats.measured_selectivity
                if op.stats.events_in > 0
                else op.selectivity
            )
            out_fraction *= sel
        if cpu <= 0:
            return math.inf
        return out_fraction / cpu

    def plan(self, ctx: SchedulerContext) -> Plan:
        # SoA ranking on negated productivity: sorted(reverse=True) keeps
        # ties in input order (stability is direction-independent), and so
        # does an ascending stable sort on the negated key, because
        # negation never collapses distinct float keys (inf stays -inf).
        queries = ctx.queries
        keys = [-self.productivity(q) for q in queries]
        ordered = _rank_by_keys(queries, keys)
        return Plan([Allocation(q) for q in ordered], mode="priority")

    def explain_plan(
        self, ctx: SchedulerContext, plan: Plan
    ) -> "List[QueryDecision]":
        return _explain_scored(plan, "hr-productivity", self.productivity)


class StreamBoxScheduler(Scheduler):
    """StreamBox: earliest upcoming window deadline first.

    SBox allocates resources to the substream with the earliest watermark;
    at query granularity this is the query whose pending window deadline is
    closest. It is agnostic of queue sizes and network delay (the paper's
    critique), so a query whose deadline is near but whose input cannot
    complete for a long time still hoards resources.
    """

    name = "SBox"

    def plan(self, ctx: SchedulerContext) -> Plan:
        queries = ctx.queries
        deadlines: List[float] = []
        for q in queries:
            ddl = q.next_window_deadline()
            deadlines.append(ddl if not math.isnan(ddl) else math.inf)
        ordered = _rank_by_keys(queries, deadlines)
        return Plan([Allocation(q) for q in ordered], mode="priority")

    def explain_plan(
        self, ctx: SchedulerContext, plan: Plan
    ) -> "List[QueryDecision]":
        # score: the pending window deadline the ranking used
        return _explain_scored(
            plan, "sbox-deadline", lambda q: q.next_window_deadline()
        )


ALL_BASELINES = {
    "Default": DefaultScheduler,
    "FCFS": FCFSScheduler,
    "RR": RoundRobinScheduler,
    "HR": HighestRateScheduler,
    "SBox": StreamBoxScheduler,
}
