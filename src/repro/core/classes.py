"""Class-based (SLA) scheduling composition.

The paper's related work (Sec. 7) discusses policies that prioritize
queries "by using user-defined values or by specifying an SLA" and notes
that "Klink's algorithm can be complementarily used with such policies":
the SLA policy decides *between* service classes, the inner policy
decides *within* a class.

:class:`ClassBasedScheduler` implements that composition: every query is
assigned a service class (0 = most important). Each cycle the inner
policy produces its ordering as usual; allocations are then stably
re-sorted by class, so class 0's queries always run first but keep the
inner policy's relative order (Klink's least-slack, SBox's deadlines,
...). Share-mode inner policies (Default) are passed through per class
in class order.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.scheduler import Plan, Scheduler, SchedulerContext


class ClassBasedScheduler(Scheduler):
    """Strict-priority service classes around an inner scheduling policy."""

    def __init__(
        self,
        inner: Scheduler,
        query_classes: Optional[Dict[str, int]] = None,
        default_class: int = 0,
    ) -> None:
        if default_class < 0:
            raise ValueError(f"negative default class: {default_class}")
        self.inner = inner
        self.query_classes = dict(query_classes or {})
        self.default_class = default_class
        self.name = f"Class({inner.name})"

    def class_of(self, query_id: str) -> int:
        return self.query_classes.get(query_id, self.default_class)

    def assign(self, query_id: str, service_class: int) -> None:
        """Assign (or update) a query's service class."""
        if service_class < 0:
            raise ValueError(f"negative service class: {service_class}")
        self.query_classes[query_id] = service_class

    def plan(self, ctx: SchedulerContext) -> Plan:
        inner_plan = self.inner.plan(ctx)
        ordered = sorted(
            inner_plan.allocations,
            key=lambda alloc: self.class_of(alloc.query.query_id),
        )  # sort is stable: ties keep the inner policy's order
        return Plan(
            ordered,
            mode=inner_plan.mode,
            overhead_ms=inner_plan.overhead_ms,
            throttle_ingestion=inner_plan.throttle_ingestion,
        )

    def overhead_ms(self, ctx: SchedulerContext) -> float:
        return self.inner.overhead_ms(ctx)

    def explain_plan(self, ctx: SchedulerContext, plan: Plan):
        """Audit decisions come from the inner policy; only the class
        re-sort changed the ranks, so re-rank the inner explanations in
        this plan's allocation order."""
        inner = {
            d.query_id: d for d in self.inner.explain_plan(ctx, plan)
        }
        from dataclasses import replace

        out = []
        for rank, alloc in enumerate(plan.allocations):
            decision = inner.get(alloc.query.query_id)
            if decision is not None:
                out.append(replace(decision, rank=rank))
        return out

    def snapshot_state(self) -> Dict[str, object]:
        """Class assignments change at runtime (:meth:`assign`), so they
        are checkpoint state — as is the inner policy's own state."""
        return {
            "query_classes": dict(self.query_classes),
            "inner": self.inner.snapshot_state(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        classes = state["query_classes"]
        assert isinstance(classes, dict)
        self.query_classes = {str(k): int(v) for k, v in classes.items()}
        inner = state["inner"]
        assert isinstance(inner, dict)
        self.inner.restore_state(inner)

    def reset(self) -> None:
        self.inner.reset()
