"""SWM ingestion estimation (Sec. 3.1).

Klink predicts when the next sweeping watermark (SWM) of each input stream
will be ingested. The prediction decomposes into:

* a deterministic part — the generation time of the watermark that will
  sweep the next window deadline, known from the SPE's watermark
  configuration (period ``p_q`` and lateness allowance, Sec. 2.2); and
* a stochastic part — the network delay ``d_n`` that watermark will
  experience, estimated from the per-epoch delay statistics collected by
  the runtime data-acquisition module (Eqs. 3-4).

Following Eq. 5, the expected ingestion time adds the expected delay to
the deterministic base; following Eq. 6 (which, under the per-epoch mean
definitions of Eqs. 3-4, reduces to the population variance of the delay:
``E[d^2] - E[d]^2`` with both moments averaged over the last ``h``
epochs), the spread of the ingestion time is the delay's standard
deviation. Algorithm 1 then takes a ``>= f%`` confidence interval around
the mean (lines 4-6 use two standard deviations for f = 95).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.spe.query import SourceBinding, StreamProgress

#: z-scores for the confidence values the paper evaluates (Figs. 9c, 9d).
Z_SCORES = {
    100.0: 3.5,   # "all" — practically the full support of a normal
    99.0: 2.576,
    95.0: 2.0,    # Algorithm 1 line 4 uses 2 sigma for >= 95%
    90.0: 1.645,
    67.0: 0.974,
}

#: variance floor (ms^2) so a zero-variance history still yields an interval
_MIN_STD_MS = 1.0


def z_for_confidence(confidence: float) -> float:
    """z-score for a confidence value in percent (interpolating if needed)."""
    if confidence in Z_SCORES:
        return Z_SCORES[confidence]
    if not 0 < confidence <= 100:
        raise ValueError(f"confidence must be in (0, 100]: {confidence}")
    # Inverse normal CDF via scipy for non-tabulated values.
    from scipy.stats import norm

    return float(norm.ppf(0.5 + confidence / 200.0))


class SwmEstimate:
    """Distribution of the next SWM's ingestion time (engine clock ms).

    A ``__slots__`` value class (the scheduler builds one per stream per
    cycle): ``mean``/``std`` parameterize the normal distribution,
    ``[t_min, t_max]`` is Algorithm 1's confidence interval,
    ``deadline`` is the window deadline this SWM sweeps and
    ``swm_generation`` the deterministic base (generation time).
    """

    __slots__ = ("mean", "std", "t_min", "t_max", "deadline", "swm_generation")

    def __init__(
        self,
        mean: float,
        std: float,
        t_min: float,
        t_max: float,
        deadline: float,
        swm_generation: float,
    ) -> None:
        self.mean = mean
        self.std = std
        self.t_min = t_min
        self.t_max = t_max
        self.deadline = deadline
        self.swm_generation = swm_generation

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SwmEstimate):
            return NotImplemented
        return (
            self.mean == other.mean
            and self.std == other.std
            and self.t_min == other.t_min
            and self.t_max == other.t_max
            and self.deadline == other.deadline
            and self.swm_generation == other.swm_generation
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"SwmEstimate(mean={self.mean!r}, std={self.std!r}, "
            f"t_min={self.t_min!r}, t_max={self.t_max!r}, "
            f"deadline={self.deadline!r}, swm_generation={self.swm_generation!r})"
        )

    def contains(self, ingestion_time: float) -> bool:
        """True when an observed ingestion falls inside the interval."""
        return self.t_min <= ingestion_time <= self.t_max


class SwmIngestionEstimator:
    """Estimates next-SWM ingestion for one input stream (Sec. 3.1)."""

    def __init__(self, history: int = 400, confidence: float = 95.0) -> None:
        if history < 1:
            raise ValueError(f"history must be >= 1: {history}")
        self.history = history
        self.confidence = confidence
        self.z = z_for_confidence(confidence)

    # -- delay moments (Eqs. 3-6) -------------------------------------------

    def delay_moments(self, progress: StreamProgress) -> tuple:
        """(mu, chi) averaged over the last ``h`` epochs plus the in-flight
        epoch's observations (the two branches of Eqs. 3-4).

        Cold start: before the stream has produced a single delay
        observation or finalized epoch there is no history to average
        (previously this degenerated to a meaningless all-zero estimate).
        The defined contract is to fall back to the stream's watermark
        period as the expected delay — a watermark can be at most one
        period "fresher" than the state it sweeps, making the period a
        sensible pessimistic prior — with zero spread, which
        :meth:`delay_std` floors at ``_MIN_STD_MS``. The fallback is
        replaced by measured moments as soon as the first observation
        arrives.
        """
        if not progress.has_observations:
            period = progress.watermark_period_ms
            return period, period * period
        # Memoized on the progress tracker: planning, slack estimation,
        # and the audit trail all re-read the moments between ingestions.
        # The tracker bumps its version on every mutation, so a hit is
        # exactly what a fresh recomputation would return.
        memo = progress._moments_memo
        if (
            memo is not None
            and memo[0] == progress._version
            and memo[1] == self.history
        ):
            return memo[2], memo[3]
        # The finalized-epoch side of the average only changes when an
        # epoch closes; its sums are memoized per (epoch_index, history).
        # ``sum(mus + [cur_mu])`` is a left fold, so it equals
        # ``sum(mus) + cur_mu`` bit-for-bit — appending the in-flight
        # epoch to the cached history sum reproduces the full
        # recomputation exactly.
        hist = progress._hist_sums_memo
        if (
            hist is None
            or hist[0] != progress.epoch_index
            or hist[1] != self.history
        ):
            mus = progress.mu_history()[-self.history:]
            chis = progress.chi_history()[-self.history:]
            hist = (
                progress.epoch_index,
                self.history,
                len(mus),
                sum(mus),
                sum(chis),
            )
            progress._hist_sums_memo = hist
        cur_mu, cur_chi = progress.current_epoch_mean()
        n = hist[2] + 1
        mu = (hist[3] + cur_mu) / n
        chi = (hist[4] + cur_chi) / n
        progress._moments_memo = (progress._version, self.history, mu, chi)
        return mu, chi

    def delay_std(self, progress: StreamProgress) -> float:
        """Standard deviation of the delay per Eq. 6's reduced form."""
        mu, chi = self.delay_moments(progress)
        var = max(chi - mu * mu, 0.0)
        return max(math.sqrt(var), _MIN_STD_MS)

    # -- next-SWM prediction (Eq. 5 + Alg. 1 lines 1-8) ------------------------

    @staticmethod
    def swm_generation_time(
        deadline: float,
        watermark_period: float,
        lateness: float,
        phase: float = 0.0,
    ) -> float:
        """Generation time of the first watermark whose timestamp covers
        ``deadline``: the earliest grid point ``g`` (period ``p``, offset
        ``phase``) with ``g - lateness >= deadline``."""
        if watermark_period <= 0:
            raise ValueError(f"period must be positive: {watermark_period}")
        target = deadline + lateness
        k = math.ceil((target - phase) / watermark_period)
        g = phase + k * watermark_period
        if g < target - 1e-9:  # guard float rounding
            g += watermark_period
        return g

    def estimate_scalars(
        self,
        binding: SourceBinding,
        *,
        phase: float = 0.0,
        deadline: Optional[float] = None,
    ) -> Optional[tuple]:
        """``(mean, std, t_min, t_max, deadline, generation)`` for the next
        SWM, or ``None`` for streams with no downstream window operator.

        The allocation-free core of :meth:`estimate`: the scheduler's hot
        loop evaluates every (query, binding) pair each cycle and only
        needs the scalars, not a :class:`SwmEstimate` object.
        """
        progress = binding.progress
        if progress is None or progress.next_deadline is None:
            return None
        ddl = progress.next_deadline if deadline is None else deadline
        spec = binding.spec
        generation = self.swm_generation_time(
            ddl, spec.watermark_period_ms, spec.lateness_ms, phase
        )
        # Compute both moments once; the std expression below is the
        # same arithmetic as delay_std (Eq. 6's reduced form).
        mu, chi = self.delay_moments(progress)
        var = max(chi - mu * mu, 0.0)
        std = max(math.sqrt(var), _MIN_STD_MS)
        mean = generation + mu
        return (
            mean,
            std,
            mean - self.z * std,
            mean + self.z * std,
            ddl,
            generation,
        )

    def estimate(
        self,
        binding: SourceBinding,
        *,
        phase: float = 0.0,
        deadline: Optional[float] = None,
    ) -> Optional[SwmEstimate]:
        """Predict the next SWM ingestion for ``binding``'s stream.

        Returns ``None`` for streams with no downstream window operator
        (no deadlines, hence no SWMs).
        """
        scalars = self.estimate_scalars(binding, phase=phase, deadline=deadline)
        if scalars is None:
            return None
        mean, std, t_min, t_max, ddl, generation = scalars
        return SwmEstimate(
            mean=mean,
            std=std,
            t_min=t_min,
            t_max=t_max,
            deadline=ddl,
            swm_generation=generation,
        )
