"""SWM ingestion estimation (Sec. 3.1).

Klink predicts when the next sweeping watermark (SWM) of each input stream
will be ingested. The prediction decomposes into:

* a deterministic part — the generation time of the watermark that will
  sweep the next window deadline, known from the SPE's watermark
  configuration (period ``p_q`` and lateness allowance, Sec. 2.2); and
* a stochastic part — the network delay ``d_n`` that watermark will
  experience, estimated from the per-epoch delay statistics collected by
  the runtime data-acquisition module (Eqs. 3-4).

Following Eq. 5, the expected ingestion time adds the expected delay to
the deterministic base; following Eq. 6 (which, under the per-epoch mean
definitions of Eqs. 3-4, reduces to the population variance of the delay:
``E[d^2] - E[d]^2`` with both moments averaged over the last ``h``
epochs), the spread of the ingestion time is the delay's standard
deviation. Algorithm 1 then takes a ``>= f%`` confidence interval around
the mean (lines 4-6 use two standard deviations for f = 95).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.spe.query import SourceBinding, StreamProgress

#: z-scores for the confidence values the paper evaluates (Figs. 9c, 9d).
Z_SCORES = {
    100.0: 3.5,   # "all" — practically the full support of a normal
    99.0: 2.576,
    95.0: 2.0,    # Algorithm 1 line 4 uses 2 sigma for >= 95%
    90.0: 1.645,
    67.0: 0.974,
}

#: variance floor (ms^2) so a zero-variance history still yields an interval
_MIN_STD_MS = 1.0


def z_for_confidence(confidence: float) -> float:
    """z-score for a confidence value in percent (interpolating if needed)."""
    if confidence in Z_SCORES:
        return Z_SCORES[confidence]
    if not 0 < confidence <= 100:
        raise ValueError(f"confidence must be in (0, 100]: {confidence}")
    # Inverse normal CDF via scipy for non-tabulated values.
    from scipy.stats import norm

    return float(norm.ppf(0.5 + confidence / 200.0))


@dataclass
class SwmEstimate:
    """Distribution of the next SWM's ingestion time (engine clock ms)."""

    mean: float
    std: float
    t_min: float
    t_max: float
    deadline: float           # the window deadline this SWM sweeps
    swm_generation: float     # deterministic base (generation time)

    def contains(self, ingestion_time: float) -> bool:
        """True when an observed ingestion falls inside the interval."""
        return self.t_min <= ingestion_time <= self.t_max


class SwmIngestionEstimator:
    """Estimates next-SWM ingestion for one input stream (Sec. 3.1)."""

    def __init__(self, history: int = 400, confidence: float = 95.0) -> None:
        if history < 1:
            raise ValueError(f"history must be >= 1: {history}")
        self.history = history
        self.confidence = confidence
        self.z = z_for_confidence(confidence)

    # -- delay moments (Eqs. 3-6) -------------------------------------------

    def delay_moments(self, progress: StreamProgress) -> tuple:
        """(mu, chi) averaged over the last ``h`` epochs plus the in-flight
        epoch's observations (the two branches of Eqs. 3-4).

        Cold start: before the stream has produced a single delay
        observation or finalized epoch there is no history to average
        (previously this degenerated to a meaningless all-zero estimate).
        The defined contract is to fall back to the stream's watermark
        period as the expected delay — a watermark can be at most one
        period "fresher" than the state it sweeps, making the period a
        sensible pessimistic prior — with zero spread, which
        :meth:`delay_std` floors at ``_MIN_STD_MS``. The fallback is
        replaced by measured moments as soon as the first observation
        arrives.
        """
        if not progress.has_observations:
            period = progress.watermark_period_ms
            return period, period * period
        mus = progress.mu_history()[-self.history:]
        chis = progress.chi_history()[-self.history:]
        cur_mu, cur_chi = progress.current_epoch_mean()
        mus = mus + [cur_mu]
        chis = chis + [cur_chi]
        mu = sum(mus) / len(mus)
        chi = sum(chis) / len(chis)
        return mu, chi

    def delay_std(self, progress: StreamProgress) -> float:
        """Standard deviation of the delay per Eq. 6's reduced form."""
        mu, chi = self.delay_moments(progress)
        var = max(chi - mu * mu, 0.0)
        return max(math.sqrt(var), _MIN_STD_MS)

    # -- next-SWM prediction (Eq. 5 + Alg. 1 lines 1-8) ------------------------

    @staticmethod
    def swm_generation_time(
        deadline: float,
        watermark_period: float,
        lateness: float,
        phase: float = 0.0,
    ) -> float:
        """Generation time of the first watermark whose timestamp covers
        ``deadline``: the earliest grid point ``g`` (period ``p``, offset
        ``phase``) with ``g - lateness >= deadline``."""
        if watermark_period <= 0:
            raise ValueError(f"period must be positive: {watermark_period}")
        target = deadline + lateness
        k = math.ceil((target - phase) / watermark_period)
        g = phase + k * watermark_period
        if g < target - 1e-9:  # guard float rounding
            g += watermark_period
        return g

    def estimate(
        self,
        binding: SourceBinding,
        *,
        phase: float = 0.0,
        deadline: Optional[float] = None,
    ) -> Optional[SwmEstimate]:
        """Predict the next SWM ingestion for ``binding``'s stream.

        Returns ``None`` for streams with no downstream window operator
        (no deadlines, hence no SWMs).
        """
        progress = binding.progress
        if progress is None or progress.next_deadline is None:
            return None
        ddl = progress.next_deadline if deadline is None else deadline
        spec = binding.spec
        generation = self.swm_generation_time(
            ddl, spec.watermark_period_ms, spec.lateness_ms, phase
        )
        mu, _ = self.delay_moments(progress)
        std = self.delay_std(progress)
        mean = generation + mu
        return SwmEstimate(
            mean=mean,
            std=std,
            t_min=mean - self.z * std,
            t_max=mean + self.z * std,
            deadline=ddl,
            swm_generation=generation,
        )
