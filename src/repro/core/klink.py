"""The Klink scheduler (Sec. 3).

Klink's evaluator runs once per scheduling cycle. Under normal operation
it applies **SWM prioritization**: every query's slack — the idle time it
can absorb without missing its next window deadline — is computed from the
estimated ingestion time of its next sweeping watermark (Sec. 3.1/3.2),
and queries execute in least-slack order. For windowed joins, a slack
value is computed per input stream and the query's slack is the minimum
(Sec. 3.3). When memory utilization reaches the bound ``b``, Klink
transiently switches to **memory management** (Sec. 3.4), scheduling the
pipeline prefixes that release the most in-flight events, until either
half of the consumed memory is freed or a time budget elapses.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.audit import QueryDecision
    from repro.obs.lineage import SwmForecastAudit

from repro.core.estimator import SwmEstimate, SwmIngestionEstimator
from repro.core.memory_policy import best_prefix
from repro.core.scheduler import Allocation, Plan, Scheduler, SchedulerContext
from repro.core.slack import (
    expected_slack,
    expected_slack_scalars,
    interval_steps,
    interval_steps_scalars,
)
from repro.spe.query import Query


class KlinkScheduler(Scheduler):
    """Progress-aware least-slack scheduler with memory management."""

    name = "Klink"

    #: modelled CPU cost of one slide of Algorithm 1's probability window
    step_overhead_ms = 0.02
    #: modelled per-query fixed evaluation cost per cycle (runtime data
    #: collection + priority bookkeeping)
    per_query_overhead_ms = 0.05

    #: optional SWM-forecast accuracy audit (repro.obs.SwmForecastAudit),
    #: installed by the bench runner when lineage tracing is enabled. A
    #: pure observer of the estimates Klink computes anyway — it is kept
    #: out of snapshot_state so checkpoint bytes are unchanged by tracing.
    forecast_audit: Optional["SwmForecastAudit"] = None

    def __init__(
        self,
        *,
        confidence: float = 95.0,
        history: int = 400,
        memory_threshold: float = 0.2,
        mm_release_fraction: float = 0.5,
        mm_max_ms: float = 3000.0,
        enable_memory_management: bool = True,
        estimator: Optional[SwmIngestionEstimator] = None,
    ) -> None:
        self.confidence = confidence
        self.history = history
        self.memory_threshold = memory_threshold
        self.mm_release_fraction = mm_release_fraction
        self.mm_max_ms = mm_max_ms
        self.enable_memory_management = enable_memory_management
        self.estimator = estimator or SwmIngestionEstimator(
            history=history, confidence=confidence
        )
        if enable_memory_management:
            self.name = "Klink"
        else:
            self.name = "Klink (w/o MM)"
        # memory-management episode state
        self._mm_active = False
        self._mm_entry_util = 0.0
        self._mm_entry_time = 0.0
        # diagnostics
        self.last_slacks: Dict[str, float] = {}
        self.mm_episodes = 0
        self._last_overhead_ms = 0.0
        # SoA scratch for plan(): per-query slack values aligned with
        # ctx.queries, reused across cycles (rebuilt, never carried over).
        self._slack_soa: List[float] = []

    # -- slack evaluation (Algorithm 1) ------------------------------------

    def query_slack(self, query: Query, ctx: SchedulerContext) -> Tuple[float, int]:
        """Minimum slack over the query's input streams, plus the number of
        Algorithm-1 window slides performed (for the overhead model).

        Two regimes:

        * An SWM has already been *ingested* but not yet propagated to the
          window operator (it sits queued behind data events). Its window
          deadline has elapsed: every millisecond now adds directly to
          output latency, so the slack is the (negative) age of the SWM
          minus the queued work — minimizing SWM propagation delay
          (observation (i) of Sec. 2.2).
        * Otherwise the SWM is still in flight, and the expected slack of
          Algorithm 1 applies: schedule the query early enough that its
          queues are drained by the time the SWM arrives (observation (ii)).
        """
        urgent = self._pending_swm_slack(query, ctx.now)
        if urgent is not None:
            return urgent, 0
        cost = query.pending_cost_ms()
        slacks: List[float] = []
        steps = 0
        audit = self.forecast_audit
        if audit is None:
            # Fused fast path: the estimator hands back the distribution's
            # scalars directly and the slack/steps cores consume them, so
            # no SwmEstimate is allocated per (query, binding) per cycle.
            # The arithmetic — and its operation order — is identical to
            # the audited path below; decision logs stay byte-equal.
            estimate_scalars = self.estimator.estimate_scalars
            now = ctx.now
            cycle_ms = ctx.cycle_ms
            phase = query.deployed_at
            for binding in query.bindings:
                scalars = estimate_scalars(binding, phase=phase)
                if scalars is None:
                    continue
                mean, std, t_min, t_max = scalars[0], scalars[1], scalars[2], scalars[3]
                slacks.append(
                    expected_slack_scalars(
                        mean, std, t_min, t_max, now, cost, cycle_ms
                    )
                )
                steps += interval_steps_scalars(t_min, t_max, now, cycle_ms)
        else:
            for binding in query.bindings:
                estimate = self.estimator.estimate(
                    binding, phase=query.deployed_at
                )
                if estimate is None:
                    continue
                audit.on_prediction(
                    query.query_id, binding.source_id, estimate, binding, ctx.now
                )
                slacks.append(
                    expected_slack(estimate, ctx.now, cost, ctx.cycle_ms)
                )
                steps += interval_steps(estimate, ctx.now, ctx.cycle_ms)
        if not slacks:
            # No window operator downstream: the query has no deadline to
            # protect. It is scheduled after deadline-bearing queries.
            return math.inf, steps
        return min(slacks), steps

    @staticmethod
    def _pending_swm_slack(query: Query, now: float) -> Optional[float]:
        """Slack when an ingested-but-unprocessed SWM is queued, else None.

        An unprocessed SWM exists when some window operator still buffers a
        pane whose deadline is covered by the watermarks every input stream
        has already delivered to the engine (for joins: the minimum across
        inputs, Sec. 3.3). Overdue queries are ranked purely by elapsed
        deadline (earliest-deadline-first): the queued work is sunk cost
        that must be paid whichever order is chosen, and subtracting it
        (Eq. 1 with the known past ``w``) would bias against large queues
        and starve them.
        """
        progresses = [b.progress for b in query.bindings if b.progress is not None]
        if not progresses:
            return None
        ingested_wm = min(p.last_watermark_ts for p in progresses)
        swept_deadline = math.inf
        for op in query.windowed_operators():
            # The pane heap's head is the earliest pending deadline (due
            # panes pop as soon as the event clock advances), so the full
            # sorted listing is not needed here.
            heap = op._pane_heap
            if heap and heap[0][0] <= ingested_wm:
                swept_deadline = min(swept_deadline, heap[0][0])
        if math.isinf(swept_deadline):
            return None
        return swept_deadline - now

    # -- memory-management mode transitions (Sec. 3.4) ------------------------

    def _update_mm_state(self, ctx: SchedulerContext) -> bool:
        if not self.enable_memory_management:
            return False
        util = ctx.memory_utilization
        if not self._mm_active:
            if util >= self.memory_threshold:
                self._mm_active = True
                self._mm_entry_util = util
                self._mm_entry_time = ctx.now
                self.mm_episodes += 1
        else:
            freed_enough = util <= self._mm_entry_util * (
                1.0 - self.mm_release_fraction
            )
            timed_out = (ctx.now - self._mm_entry_time) >= self.mm_max_ms
            if freed_enough or timed_out:
                self._mm_active = False
        return self._mm_active

    # -- plan -----------------------------------------------------------------

    def plan(self, ctx: SchedulerContext) -> Plan:
        mm = self._update_mm_state(ctx)
        queries = ctx.queries
        slack_soa = self._slack_soa  # klink: transient[scratch ranking buffer rebuilt every plan()]
        del slack_soa[:]
        total_steps = 0
        for query in queries:
            slack, steps = self.query_slack(query, ctx)
            slack_soa.append(slack)
            total_steps += steps
        slack_of = dict(zip((q.query_id for q in queries), slack_soa))
        self.last_slacks = slack_of
        self._last_overhead_ms = (
            self.per_query_overhead_ms * len(queries)
            + self.step_overhead_ms * total_steps
        )
        # Stable argsort over the SoA column: identical ordering to sorting
        # the queries by a slack lookup (query_ids are unique, ties keep
        # ctx.queries order under both formulations).
        order = sorted(range(len(queries)), key=slack_soa.__getitem__)
        ordered = [queries[i] for i in order]
        if not mm:
            return Plan([Allocation(q) for q in ordered], mode="priority")
        # Memory management (Sec. 3.4): run each query's memory-releasing
        # prefix, prioritizing the queries providing the largest potential
        # reduction in memory utilization; slack breaks ties so latency is
        # still protected among equal releases.
        scored: List[Tuple[float, float, Allocation]] = []
        for query in ordered:
            prefix = best_prefix(query, ctx.cycle_ms)
            if prefix is None:
                continue
            if prefix.worthwhile:
                ops = list(prefix.operators)
                if query.sink not in ops:
                    # The output operator always runs: window results and
                    # SWMs emitted by the prefix must reach it (invariant
                    # (ii), Sec. 2.2), and sinks are nearly free to run.
                    ops.append(query.sink)
                allocation = Allocation(query, ops)
                release = prefix.achievable_removal(ctx.cycle_ms)
            else:
                allocation = Allocation(query)
                release = 0.0
            scored.append((release, slack_of[query.query_id], allocation))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return Plan(
            [alloc for _, _, alloc in scored],
            mode="priority",
            # Prefix-only scheduling stalls the sources feeding the
            # unscheduled suffix operators (credit-based flow control), so
            # input is throttled while memory management runs.
            throttle_ingestion=True,
        )

    def overhead_ms(self, ctx: SchedulerContext) -> float:
        return self._last_overhead_ms

    # -- observability --------------------------------------------------------

    def _delay_profile(
        self, query: Query
    ) -> Tuple[Optional[float], Optional[float]]:
        """(mean, std) of the estimated SWM network delay across the
        query's input streams (averaged for joins, Sec. 3.3)."""
        means: List[float] = []
        stds: List[float] = []
        for binding in query.bindings:
            progress = binding.progress
            if progress is None:
                continue
            mu, _ = self.estimator.delay_moments(progress)
            means.append(mu)
            stds.append(self.estimator.delay_std(progress))
        if not means:
            return None, None
        return sum(means) / len(means), sum(stds) / len(stds)

    def explain_plan(
        self, ctx: SchedulerContext, plan: Plan
    ) -> "List[QueryDecision]":
        """Audit-trail explanation: why each query holds its rank.

        Reasons: ``memory-release`` / ``memory-mode-full`` while the
        memory-management episode is active (Sec. 3.4), ``overdue-swm``
        for EDF-ranked queries whose ingested SWM awaits processing,
        ``no-deadline`` for deadline-free queries (infinite slack), and
        ``slack-order`` for the normal least-expected-slack ranking.
        """
        from repro.obs.audit import QueryDecision

        decisions: List[QueryDecision] = []
        for rank, alloc in enumerate(plan.allocations):
            query = alloc.query
            slack = self.last_slacks.get(query.query_id)
            finite_slack = (
                slack if slack is not None and math.isfinite(slack) else None
            )
            if self._mm_active:
                reason = (
                    "memory-release"
                    if alloc.operators is not None
                    else "memory-mode-full"
                )
            elif slack is not None and math.isinf(slack):
                reason = "no-deadline"
            elif self._pending_swm_slack(query, ctx.now) is not None:
                reason = "overdue-swm"
            else:
                reason = "slack-order"
            mean, std = self._delay_profile(query)
            decisions.append(
                QueryDecision(
                    query_id=query.query_id,
                    rank=rank,
                    reason=reason,
                    slack_ms=finite_slack,
                    swm_delay_mean_ms=mean,
                    swm_delay_std_ms=std,
                    score=finite_slack,
                    memory_bytes=query.memory_bytes,
                    queued_events=query.queued_events,
                )
            )
        return decisions

    def reset(self) -> None:
        self._mm_active = False
        self._mm_entry_util = 0.0
        self._mm_entry_time = 0.0
        self.last_slacks = {}
        self.mm_episodes = 0
        self._last_overhead_ms = 0.0

    def snapshot_state(self) -> Dict[str, object]:
        # The estimator itself is stateless (it reads StreamProgress, which
        # checkpoints with the bindings); only the MM episode machine and
        # the diagnostics carry across cycles.
        return {
            "mm_active": self._mm_active,
            "mm_entry_util": self._mm_entry_util,
            "mm_entry_time": self._mm_entry_time,
            "last_slacks": dict(self.last_slacks),
            "mm_episodes": self.mm_episodes,
            "last_overhead_ms": self._last_overhead_ms,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._mm_active = bool(state["mm_active"])
        self._mm_entry_util = float(state["mm_entry_util"])  # type: ignore[arg-type]
        self._mm_entry_time = float(state["mm_entry_time"])  # type: ignore[arg-type]
        self.last_slacks = {
            str(k): float(v) for k, v in dict(state["last_slacks"]).items()  # type: ignore[call-overload]
        }
        self.mm_episodes = int(state["mm_episodes"])  # type: ignore[arg-type]
        self._last_overhead_ms = float(state["last_overhead_ms"])  # type: ignore[arg-type]
