"""Linear-regression SWM ingestion estimator (the LR baseline of Fig. 9c).

The paper compares Klink's distribution-based estimator against "gradient
descent, a simple linear regression technique (LR)". This baseline fits
``delay ~ a * epoch_index + b`` over the recent epoch delay means using
batch gradient descent, predicts the next epoch's delay by extrapolation,
and brackets it with a fixed band of two residual standard deviations.

Why it loses to Klink: a straight line chases transient trends in the
delay sequence and its residual band is estimated from the same small
window, so under heavy-tailed (Zipf) delays the point prediction drifts
and the band under-covers — exactly the degradation Fig. 9c reports.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.estimator import SwmEstimate, SwmIngestionEstimator
from repro.spe.query import SourceBinding


class GradientDescentLinearRegression:
    """Batch gradient descent fit of y = a*x + b."""

    def __init__(self, learning_rate: float = 0.05, iterations: int = 200):
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive: {learning_rate}")
        if iterations < 1:
            raise ValueError(f"need at least one iteration: {iterations}")
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.a = 0.0
        self.b = 0.0

    def fit(self, ys: Sequence[float]) -> "GradientDescentLinearRegression":
        """Fit against x = 0..n-1. Features are scaled to [0, 1] internally
        so a single learning rate behaves across history lengths."""
        y = np.asarray(ys, dtype=float)
        n = len(y)
        if n == 0:
            raise ValueError("cannot fit with no data")
        if n == 1:
            self.a, self.b = 0.0, float(y[0])
            return self
        x = np.linspace(0.0, 1.0, n)
        a, b = 0.0, float(y.mean())
        lr = self.learning_rate
        for _ in range(self.iterations):
            pred = a * x + b
            err = pred - y
            grad_a = 2.0 * float((err * x).mean())
            grad_b = 2.0 * float(err.mean())
            a -= lr * grad_a
            b -= lr * grad_b
        # Convert back from the scaled feature to per-index slope.
        self.a = a / (n - 1)
        self.b = b
        return self

    def predict(self, index: int, n_fit: int) -> float:
        """Predict y at integer index given the fit covered ``n_fit`` points."""
        return self.a * index + self.b

    def residual_std(self, ys: Sequence[float]) -> float:
        y = np.asarray(ys, dtype=float)
        n = len(y)
        if n < 2:
            return 1.0
        x = np.arange(n, dtype=float)
        pred = self.a * x + self.b
        return float(np.std(y - pred)) or 1.0


class LinearRegressionEstimator(SwmIngestionEstimator):
    """Drop-in replacement for :class:`SwmIngestionEstimator` using LR.

    Shares the deterministic base (watermark grid) with Klink's estimator —
    both know the SPE's watermark configuration — and differs in how the
    stochastic delay component is predicted and bounded: a gradient-descent
    line is fit through the last ``history`` observed SWM ingestion delays
    (one sample per epoch) and extrapolated one epoch ahead, bracketed by
    two standard deviations of the fit's residuals. With a short window
    the slope chases transient trends and the residual band is itself a
    noisy estimate, which is what costs LR coverage — most severely under
    heavy-tailed (Zipf) delays whose tail rarely appears in a small
    window (Fig. 9c).
    """

    def __init__(
        self,
        history: int = 8,
        band_sigmas: float = 2.0,
        learning_rate: float = 0.05,
        iterations: int = 200,
    ) -> None:
        super().__init__(history=history, confidence=95.0)
        self.band_sigmas = band_sigmas
        self._lr = GradientDescentLinearRegression(learning_rate, iterations)

    @staticmethod
    def swm_delay_history(binding: SourceBinding, limit: int) -> list:
        """Observed per-epoch SWM ingestion delays (ingest - generation)."""
        progress = binding.progress
        if progress is None:
            return []
        lateness = binding.spec.lateness_ms
        return [
            e.swm_ingest_time - (e.swm_timestamp + lateness)
            for e in list(progress.epochs)[-limit:]
        ]

    def estimate(
        self,
        binding: SourceBinding,
        *,
        phase: float = 0.0,
        deadline: Optional[float] = None,
    ) -> Optional[SwmEstimate]:
        progress = binding.progress
        if progress is None or progress.next_deadline is None:
            return None
        ddl = progress.next_deadline if deadline is None else deadline
        spec = binding.spec
        generation = self.swm_generation_time(
            ddl, spec.watermark_period_ms, spec.lateness_ms, phase
        )
        ys = self.swm_delay_history(binding, self.history)
        if not ys:
            cur_mu, _ = progress.current_epoch_mean()
            ys = [cur_mu]
        self._lr.fit(ys)
        predicted_delay = self._lr.predict(len(ys), len(ys))
        band = self.band_sigmas * self._lr.residual_std(ys)
        band = max(band, 1.0)
        mean = generation + predicted_delay
        return SwmEstimate(
            mean=mean,
            std=band / self.band_sigmas,
            t_min=mean - band,
            t_max=mean + band,
            deadline=ddl,
            swm_generation=generation,
        )
