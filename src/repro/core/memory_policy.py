"""Klink's memory-management prioritization (Sec. 3.4).

When memory utilization crosses the bound ``b``, Klink switches from
least-slack scheduling to a policy that maximizes the number of in-flight
events *removed* from the system: it prefers pipeline prefixes ending at
low-selectivity operators (filters, windows with partial aggregation),
because pushing queued events through them shrinks the queue mass.

For a query ``q`` with operators ``o_1..o_m`` (topological order), the
events removed by running the prefix ending at ``o_k`` is

    p^q_k = sum_{i<=k} sz_i * (1 - prod_{j=i..k} S_j)

where ``sz_i`` is the queue length at ``o_i`` and ``S_j`` the selectivity
of ``o_j`` — the generalization of the paper's ``p^q_k = sz_q * (1 -
prod_{i=1..k} S_i)`` to events queued mid-pipeline. Because a cycle only
provides ``r`` ms, the achievable removal is scaled by the fraction of the
prefix's pending cost that fits in ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.spe.operators import Operator
from repro.spe.query import Query


@dataclass
class PrefixPlan:
    """The best memory-releasing prefix for one query."""

    operators: List[Operator]
    total_removal: float        # events removed by fully draining the prefix
    pending_cost_ms: float      # CPU cost of fully draining the prefix

    @property
    def worthwhile(self) -> bool:
        return self.total_removal > 0.0

    def achievable_removal(self, cycle_ms: float) -> float:
        """Events removable within one scheduling cycle of ``cycle_ms``."""
        if self.pending_cost_ms <= 0:
            return self.total_removal
        return self.total_removal * min(1.0, cycle_ms / self.pending_cost_ms)


def _measured_selectivity(op: Operator) -> float:
    if op.stats.events_in > 0:
        return op.stats.measured_selectivity
    return op.selectivity


def best_prefix(query: Query, cycle_ms: float) -> Optional[PrefixPlan]:
    """Choose the pipeline prefix maximizing total event removal.

    Removal is the number of queued events that *leave the system* when the
    prefix is fully drained (Sec. 3.4's ``p^q_k``); a strictly longer
    prefix never removes fewer events, so among prefixes with equal
    removal the shortest (cheapest) is preferred — in practice the prefix
    ends at the last low-selectivity operator, typically the window, whose
    partial aggregation absorbs raw events into compact state.

    Returns ``None`` when the query holds no queued events at all.
    """
    ops = query.operators
    queues = [op.queued_events for op in ops]
    if not any(queues):
        return None
    sels = [_measured_selectivity(op) for op in ops]
    costs = [op.cost_per_event_ms for op in ops]

    best: Optional[Tuple[float, int, float]] = None  # (removal, k, cost)
    # surviving[i] tracks prod_{j=i..k} S_j as k grows; cost_through[i]
    # tracks the cost of pushing one event from o_i through o_k.
    surviving = [1.0] * len(ops)
    cost_through = [0.0] * len(ops)
    for k in range(len(ops)):
        for i in range(k + 1):
            cost_through[i] += surviving[i] * costs[k]
            surviving[i] *= sels[k]
        removal = sum(
            queues[i] * (1.0 - surviving[i]) for i in range(k + 1)
        )
        pending_cost = sum(
            queues[i] * cost_through[i] for i in range(k + 1)
        )
        if best is None or removal > best[0] + 1e-9:
            best = (removal, k, pending_cost)
    removal, k, pending_cost = best
    return PrefixPlan(
        operators=list(ops[: k + 1]),
        total_removal=removal,
        pending_cost_ms=pending_cost,
    )
