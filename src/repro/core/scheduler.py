"""Runtime scheduling framework (the infrastructure of Sec. 5).

The paper adds to Flink a *state-based* scheduling framework: a single
scheduler orchestrates operator execution, collecting runtime information
(the tuple **I**) each cycle and deciding which tasks run for the next
``r`` milliseconds. This module defines the policy-side abstractions; the
engine (:mod:`repro.spe.engine`) implements the orchestration side with
the paper's four API calls (``register``, ``collect``, ``start``,
``pause``).

A policy receives a :class:`SchedulerContext` — live views of every
deployed query, the engine clock, and memory utilization — and returns a
:class:`Plan`:

* ``mode="priority"``: allocations are a priority order; the engine grants
  each query at most one core-slice of ``r`` ms per cycle, walking the
  order until the cycle's CPU budget (cores x r) is exhausted. This is how
  Klink, HR, SBox, FCFS, and RR express their decisions.
* ``mode="share"``: the budget is divided evenly among queries with queued
  work — processor-sharing, modelling Flink's default scheduler, which
  performs no query-level prioritization (threads share cores under the
  OS scheduler).

An allocation may restrict execution to a subset of a query's operators
(a pipeline *prefix*), which Klink's memory-management policy uses to run
exactly the operator sequence that releases the most memory (Sec. 3.4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.spe.engine
    from repro.obs.audit import QueryDecision
    from repro.spe.operators import Operator
    from repro.spe.query import Query


@dataclass
class Allocation:
    """One scheduling decision: run ``query`` (or a subset of its ops)."""

    query: Query
    operators: Optional[List[Operator]] = None  # None -> whole pipeline

    def runnable_operators(self) -> List[Operator]:
        return self.operators if self.operators is not None else self.query.operators


@dataclass
class Plan:
    """A cycle's scheduling decision.

    ``throttle_ingestion`` marks plans that deliberately stall the sources:
    when a policy schedules only pipeline prefixes (Klink's memory
    management), the unscheduled downstream operators' input buffers fill
    and the SPE's credit-based flow control pushes back to the sources, so
    new input is shed for the duration — the engine honours the flag by
    throttling generation exactly as it does under memory backpressure.
    """

    allocations: List[Allocation]
    mode: str = "priority"  # "priority" | "share"
    overhead_ms: float = 0.0
    throttle_ingestion: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("priority", "share"):
            raise ValueError(f"unknown plan mode: {self.mode}")
        if self.overhead_ms < 0:
            raise ValueError(f"negative overhead: {self.overhead_ms}")

    def scheduled_query_ids(self) -> List[str]:
        """Query ids in allocation order.

        Used by diagnostics and by the invariant monitor, which asserts
        that a priority plan schedules only registered queries and each at
        most once.
        """
        return [alloc.query.query_id for alloc in self.allocations]


@dataclass
class SchedulerContext:
    """The runtime information tuple I handed to the policy each cycle.

    Queries expose the per-operator runtime data (queue sizes, measured
    costs and selectivities, window deadlines, delay histories via their
    source bindings) that the data-acquisition module collects.
    """

    now: float
    cycle_ms: float
    cores: int
    queries: Sequence[Query]
    memory_utilization: float = 0.0

    def active_queries(self) -> List[Query]:
        """Queries with at least one queued record."""
        return [q for q in self.queries if q.has_work()]


class Scheduler(abc.ABC):
    """Base class for runtime scheduling policies."""

    #: human-readable policy name (used in bench output)
    name: str = "base"

    #: fixed bookkeeping cost charged per evaluated query per cycle (ms).
    #: Policies with heavier evaluation override :meth:`overhead_ms`.
    per_query_overhead_ms: float = 0.0005

    @abc.abstractmethod
    def plan(self, ctx: SchedulerContext) -> Plan:
        """Return this cycle's plan. Called once per scheduling cycle."""

    def overhead_ms(self, ctx: SchedulerContext) -> float:
        """CPU cost of running the policy itself this cycle."""
        return self.per_query_overhead_ms * len(ctx.queries)

    # -- observability (repro.obs DecisionExplainer protocol) ----------------

    def explain_plan(
        self, ctx: SchedulerContext, plan: Plan
    ) -> "List[QueryDecision]":
        """Explain a plan for the scheduler-decision audit trail.

        Called by :class:`repro.obs.audit.AuditLog` immediately after
        :meth:`plan` within the same cycle, so per-cycle diagnostic state
        is still consistent. The base implementation reports the plan's
        allocation order with a generic reason; policies override it to
        expose their actual ranking key (slack, arrival, productivity,
        deadline, released memory).
        """
        from repro.obs.audit import QueryDecision

        reason = "processor-share" if plan.mode == "share" else "priority-order"
        return [
            QueryDecision(
                query_id=alloc.query.query_id,
                rank=rank,
                reason=reason,
                memory_bytes=alloc.query.memory_bytes,
                queued_events=alloc.query.queued_events,
            )
            for rank, alloc in enumerate(plan.allocations)
        ]

    def reset(self) -> None:
        """Clear any cross-cycle state (called between experiment runs)."""

    # -- checkpointing (repro.resilience) ------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-safe copy of the policy's cross-cycle state, captured by
        :func:`repro.resilience.checkpoint.capture`. Stateless policies
        return ``{}``; stateful ones override together with
        :meth:`restore_state` so a restored run replans identically."""
        return {}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Apply a state dict produced by :meth:`snapshot_state`."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
