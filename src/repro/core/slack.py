"""Expected-slack computation (Sec. 3.2, Algorithm 1, Eqs. 7-10).

Slack is the idle time a query can absorb without missing its next window
deadline: ``sl_q(t) = (w_{n+1} - t) - cost_q(t)`` (Eq. 1). Because the SWM
ingestion time ``w_{n+1}`` is a random variable, Algorithm 1 computes the
*expected* slack by sliding a window of the scheduling-cycle length ``r``
across the estimator's confidence interval, weighting each candidate
ingestion range by its conditional probability given that the SWM has not
arrived yet (Eq. 9), with probabilities taken from the normal distribution
via the Gaussian Q-function (Eq. 10).
"""

from __future__ import annotations

import math

from repro.core.estimator import SwmEstimate

#: below this survival probability the SWM is treated as overdue
_OVERDUE_EPS = 1e-6


def gaussian_q(z: float) -> float:
    """Gaussian Q-function: P(Z > z) for standard normal Z."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def interval_probability(estimate: SwmEstimate, lo: float, hi: float) -> float:
    """P(lo <= w <= hi) under the estimate's normal distribution (Eq. 10)."""
    if hi <= lo:
        return 0.0
    sigma = max(estimate.std, 1e-12)
    return gaussian_q((lo - estimate.mean) / sigma) - gaussian_q(
        (hi - estimate.mean) / sigma
    )


def survival(estimate: SwmEstimate, t: float) -> float:
    """P(w >= t): probability the SWM has not yet been ingested at time t."""
    sigma = max(estimate.std, 1e-12)
    return gaussian_q((t - estimate.mean) / sigma)


def expected_slack(
    estimate: SwmEstimate,
    now: float,
    cost_ms: float,
    cycle_ms: float,
) -> float:
    """Expected slack of one stream (Algorithm 1, ComputeExpectedSlack).

    Args:
        estimate: next-SWM ingestion distribution with its confidence
            interval [t_min, t_max] (Algorithm 1 lines 1-8).
        now: current engine time ``t``.
        cost_ms: ``cost_q(t)`` — CPU time to process the query's queued
            events end-to-end.
        cycle_ms: the scheduling cycle length ``r`` (slide of the window).

    Returns:
        Expected slack in milliseconds; negative values mean the query is
        already behind (its SWM is due or overdue and its queue cannot be
        drained in the remaining time).
    """
    return expected_slack_scalars(
        estimate.mean,
        estimate.std,
        estimate.t_min,
        estimate.t_max,
        now,
        cost_ms,
        cycle_ms,
    )


def expected_slack_scalars(
    mean: float,
    std: float,
    t_min: float,
    t_max: float,
    now: float,
    cost_ms: float,
    cycle_ms: float,
) -> float:
    """Allocation-free core of :func:`expected_slack`.

    Takes the estimate's fields as scalars so the scheduler's fused fast
    path (``SwmIngestionEstimator.estimate_scalars``) can skip building a
    :class:`SwmEstimate` per (query, binding) per cycle. The arithmetic —
    including operation order — is byte-for-byte the historical loop.
    """
    if cycle_ms <= 0:
        raise ValueError(f"cycle must be positive: {cycle_ms}")
    sigma = max(std, 1e-12)
    rt2 = math.sqrt(2.0)
    erfc = math.erfc
    # survival(estimate, now), inlined with the same expression shape.
    denom = 0.5 * erfc(((now - mean) / sigma) / rt2)
    if denom < _OVERDUE_EPS or t_max <= now:
        # SWM overdue (or virtually certain to have arrived): the remaining
        # margin is whatever is left of the interval, minus the queued work.
        return (t_max - now) - cost_ms
    slack = 0.0
    x = max(now, t_min)
    # Adjacent grid intervals share a boundary, so each Q-function value is
    # carried from one slide to the next instead of recomputed (the hottest
    # transcendental in the scheduler); the arithmetic per boundary is
    # exactly interval_probability's.
    q_lo = 0.5 * erfc(((x - mean) / sigma) / rt2)
    while x <= t_max:
        hi = x + cycle_ms
        q_hi = 0.5 * erfc(((hi - mean) / sigma) / rt2)
        pr = (q_lo - q_hi) / denom
        # Expectation over the interval grid, not a time cursor: the sum is
        # recomputed from scratch every call, so no drift accumulates.
        slack += pr * ((hi - now) - cost_ms)  # klink: allow[KL005]
        x = hi
        q_lo = q_hi
    return slack


def interval_steps(estimate: SwmEstimate, now: float, cycle_ms: float) -> int:
    """Number of window slides Algorithm 1 performs (overhead model input)."""
    return interval_steps_scalars(estimate.t_min, estimate.t_max, now, cycle_ms)


def interval_steps_scalars(
    t_min: float, t_max: float, now: float, cycle_ms: float
) -> int:
    """Scalar-argument core of :func:`interval_steps` (fused fast path)."""
    lo = max(now, t_min)
    if t_max <= lo:
        return 0
    return int(math.ceil((t_max - lo) / cycle_ms))
