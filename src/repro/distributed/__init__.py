"""Distributed Klink (Sec. 4): multi-node deployment with decentralized
per-node schedulers and delay/cost information forwarding."""

from repro.distributed.placement import PhysicalPlan
from repro.distributed.forwarding import ForwardingBoard, QueryInfo
from repro.distributed.cluster import DistributedEngine

__all__ = [
    "PhysicalPlan",
    "ForwardingBoard",
    "QueryInfo",
    "DistributedEngine",
]
