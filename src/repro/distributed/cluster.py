"""Multi-node engine with decentralized per-node schedulers (Sec. 4).

Each node runs its own scheduler instance over the operators the physical
plan placed on it, with its own CPU budget (``cores_per_node`` x cycle).
Cross-node edges carry an RPC transfer latency. Klink instances exchange
delay and cost information through a :class:`ForwardingBoard` whose
remote reads lag by the RPC latency, exactly as the paper's design: the
node hosting a query's source publishes watermark/delay statistics
downstream, and every node hosting downstream operators publishes its
local pending cost upstream (Fig. 5's forwarding arrows).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import SwmEstimate
from repro.core.klink import KlinkScheduler
from repro.core.scheduler import Allocation, Plan, Scheduler, SchedulerContext
from repro.core.slack import expected_slack, interval_steps
from repro.distributed.forwarding import ForwardingBoard, QueryInfo
from repro.obs.audit import explain_with_fallback
from repro.distributed.placement import PhysicalPlan
from repro.spe.engine import Engine
from repro.spe.memory import MemoryConfig
from repro.spe.query import Query
from repro.spe.streams import Channel


class DistributedKlinkScheduler(KlinkScheduler):
    """Klink instance running on one node of a distributed deployment.

    Differences from the single-node evaluator:

    * the slack of a query whose source node is elsewhere is computed from
      the delay information that node *forwarded* (one RPC period stale);
    * the cost term aggregates the local pending cost with the costs the
      downstream/upstream nodes published (cost forwarding).
    """

    def __init__(self, node: int, board: ForwardingBoard, plan: PhysicalPlan, **kwargs):
        super().__init__(**kwargs)
        self.node = node
        self.board = board
        self.physical_plan = plan
        self.name = f"Klink@node{node}"

    def _forwarded_cost(self, query: Query, now: float) -> float:
        """Total pending cost: every node's published share for the query."""
        total = 0.0
        for node in range(self.physical_plan.n_nodes):
            info = self.board.read(self.node, node, query.query_id, now)
            if info is not None:
                total += info.pending_cost_ms
        return total

    def query_slack(self, query: Query, ctx: SchedulerContext) -> Tuple[float, int]:
        source_node = self.physical_plan.source_node(query)
        if source_node == self.node:
            return super().query_slack(query, ctx)
        info = self.board.read(self.node, source_node, query.query_id, ctx.now)
        if info is None or info.next_deadline is None:
            return math.inf, 0
        cost = self._forwarded_cost(query, ctx.now)
        # Pending-SWM check against the forwarded watermark state and the
        # locally hosted window operators' buffered panes.
        local_windows = [
            op
            for op in query.windowed_operators()
            if self.physical_plan.node_of_operator(op) == self.node
        ]
        for op in local_windows:
            deadlines = op.pending_pane_deadlines()
            if deadlines and deadlines[0] <= info.last_watermark_ts:
                return deadlines[0] - ctx.now, 0
        # Proactive branch from forwarded delay moments.
        spec = query.bindings[0].spec
        generation = self.estimator.swm_generation_time(
            info.next_deadline,
            spec.watermark_period_ms,
            spec.lateness_ms,
            phase=query.deployed_at,
        )
        std = max(math.sqrt(max(info.chi - info.mu * info.mu, 0.0)), 1.0)
        mean = generation + info.mu
        estimate = SwmEstimate(
            mean=mean,
            std=std,
            t_min=mean - self.estimator.z * std,
            t_max=mean + self.estimator.z * std,
            deadline=info.next_deadline,
            swm_generation=generation,
        )
        slack = expected_slack(estimate, ctx.now, cost, ctx.cycle_ms)
        return slack, interval_steps(estimate, ctx.now, ctx.cycle_ms)


class DistributedEngine(Engine):
    """Engine spanning several nodes with per-node scheduling.

    ``scheduler_factory`` builds one policy instance per node; pass
    :class:`DistributedKlinkScheduler` via :meth:`with_klink` or any
    query-level baseline via :meth:`with_policy`.
    """

    def __init__(
        self,
        queries: Sequence[Query],
        scheduler_factory: Callable[[int, ForwardingBoard, PhysicalPlan], Scheduler],
        plan: PhysicalPlan,
        *,
        cores_per_node: int = 24,
        cycle_ms: float = 120.0,
        memory: MemoryConfig | None = None,
        seed: int = 0,
        rpc_latency_ms: float = 2.0,
        tracer=None,
        audit=None,
        profiler=None,
        faults=None,
        invariants=None,
        telemetry=None,
        checkpoints=None,
        recovery=None,
        validate: bool = True,
        vectorized: bool = True,
    ) -> None:
        self.plan = plan
        self.board = ForwardingBoard(rpc_latency_ms)
        self.cores_per_node = cores_per_node
        self.rpc_latency_ms = float(rpc_latency_ms)
        self.node_schedulers: List[Scheduler] = [
            scheduler_factory(node, self.board, plan)
            for node in range(plan.n_nodes)
        ]
        super().__init__(
            queries,
            self.node_schedulers[0],
            cores=cores_per_node * plan.n_nodes,
            cycle_ms=cycle_ms,
            memory=memory,
            seed=seed,
            tracer=tracer,
            audit=audit,
            profiler=profiler,
            faults=faults,
            invariants=invariants,
            telemetry=telemetry,
            checkpoints=checkpoints,
            recovery=recovery,
            validate=validate,
            vectorized=vectorized,
        )
        # Attach transfer latency to cross-node edges.
        self._delayed_channels: List[Channel] = []
        for query in self.queries:
            for op in plan.cross_node_edges(query):
                channel = op.output
                if channel is not None:
                    channel.latency_ms = rpc_latency_ms
                    self._delayed_channels.append(channel)

    # -- convenience constructors ------------------------------------------------

    @classmethod
    def with_klink(
        cls,
        queries: Sequence[Query],
        plan: PhysicalPlan,
        *,
        enable_memory_management: bool = True,
        **engine_kwargs,
    ) -> "DistributedEngine":
        def factory(node: int, board: ForwardingBoard, p: PhysicalPlan) -> Scheduler:
            return DistributedKlinkScheduler(
                node, board, p, enable_memory_management=enable_memory_management
            )

        return cls(queries, factory, plan, **engine_kwargs)

    @classmethod
    def with_policy(
        cls,
        queries: Sequence[Query],
        plan: PhysicalPlan,
        policy_factory: Callable[[], Scheduler],
        **engine_kwargs,
    ) -> "DistributedEngine":
        def factory(node: int, board: ForwardingBoard, p: PhysicalPlan) -> Scheduler:
            return policy_factory()

        return cls(queries, factory, plan, **engine_kwargs)

    # -- forwarding ---------------------------------------------------------------

    def _publish_info(self, now: float, down_nodes=frozenset()) -> None:
        for query in self.queries:
            unit = query.unit_costs()
            source_node = self.plan.source_node(query)
            for node in range(self.plan.n_nodes):
                if node in down_nodes:
                    continue  # a failed node publishes nothing; reads go stale
                local_ops = self.plan.local_operators(query, node)
                if not local_ops:
                    continue
                info = QueryInfo(published_at=now)
                info.pending_cost_ms = sum(
                    op.queued_events * unit[op] for op in local_ops
                )
                if node == source_node:
                    progresses = [
                        b.progress for b in query.bindings if b.progress is not None
                    ]
                    if progresses:
                        mus = [p.current_epoch_mean()[0] for p in progresses]
                        chis = [p.current_epoch_mean()[1] for p in progresses]
                        info.mu = sum(mus) / len(mus)
                        info.chi = sum(chis) / len(chis)
                        info.last_watermark_ts = min(
                            p.last_watermark_ts for p in progresses
                        )
                        deadlines = [
                            p.next_deadline
                            for p in progresses
                            if p.next_deadline is not None
                        ]
                        info.next_deadline = min(deadlines) if deadlines else None
                        ingests = [
                            p.last_swm_ingest_time
                            for p in progresses
                            if p.last_swm_ingest_time is not None
                        ]
                        info.last_swm_ingest_time = max(ingests) if ingests else None
                self.board.publish(node, query.query_id, info)

    # -- cycle override --------------------------------------------------------------

    def step_cycle(self) -> None:
        self.clock.advance(self.cycle_ms)
        # calendar-queue cycle index tracks the clock
        self._cal_cycle += 1  # klink: transient[relative bucket index; restore refiles buckets against it]
        now = self.clock.now
        self._apply_faults(now)
        down_nodes = frozenset(
            node
            for node in range(self.plan.n_nodes)
            if self.faults is not None and self.faults.node_down(node, now)
        )
        if self.recovery is not None:
            down_nodes = self.recovery.on_cycle(self, down_nodes, now)
        for channel in self._delayed_channels:
            channel.release(now)
        backpressured = (
            self.memory.backpressured(self.queries) or self._throttle_requested
        )
        if backpressured:
            self.metrics.backpressure_cycles += 1
        self._generate_until(now, shed_events=backpressured)
        # Queries whose source node failed cannot ingest: their traffic
        # ages in the network buffer until the node recovers.
        blocked = None
        if down_nodes:
            blocked = lambda q: self.plan.source_node(q) in down_nodes
        self._deliver_ingestions(now, backpressured, blocked=blocked)
        self._publish_info(now, down_nodes)
        ctx = self._collect()
        throttle = False
        used_total = 0.0
        overhead_total = 0.0
        plans = []
        node_records = []  # (node, scheduler, plan, decisions, used, overhead)
        for node, scheduler in enumerate(self.node_schedulers):
            if node in down_nodes:
                continue  # a failed node runs neither its policy nor its tasks
            plan = scheduler.plan(ctx)
            decisions = (
                explain_with_fallback(scheduler, ctx, plan)
                if self.audit is not None
                else []
            )
            plans.append(plan)
            throttle = throttle or plan.throttle_ingestion
            overhead = plan.overhead_ms + scheduler.overhead_ms(ctx)
            overhead_total += overhead
            tax = self.memory.pressure_tax(ctx.memory_utilization)
            budget = max(
                0.0, (self.cores_per_node * self.cycle_ms - overhead) * (1.0 - tax)
            )
            localized = self._localize(plan, node)
            used = self._execute_plan(localized, budget)
            used_total += used
            node_records.append(
                (node, scheduler, plan, decisions, used, overhead)
            )
        self._throttle_requested = throttle
        self.metrics.scheduler_overhead_ms += overhead_total
        self.metrics.busy_cpu_ms += used_total
        self._drain_sink_metrics()
        self._sample_utilization(used_total + overhead_total)
        cycle_index = self.metrics.cycles
        self.metrics.cycles += 1
        if self.invariants is not None:
            self.invariants.on_cycle(
                self, plans=plans, cpu_used_ms=used_total + overhead_total
            )
        if self.tracer is not None and plans:
            self.tracer.on_cycle(
                time=now,
                memory_utilization=ctx.memory_utilization,
                cpu_used_ms=used_total,
                overhead_ms=overhead_total,
                backpressured=backpressured,
                plan=plans[0],
            )
        if self.profiler is not None:
            self.profiler.on_cycle(self.queries)
        if self.telemetry is not None:
            # Per-node series merge: one registry receives every node's
            # CPU counters (labelled node=<i>); per-query signals are
            # cluster-global and recorded once. Registry serialization
            # sorts by series key, so the merged output is independent
            # of node iteration order.
            node_cpu = {
                node: (used, overhead)
                for node, _, _, _, used, overhead in node_records
            }
            self.telemetry.on_cycle(
                self,
                now,
                cpu_used_ms=used_total,
                overhead_ms=overhead_total,
                node_cpu=node_cpu,
            )
        if self.audit is not None:
            # one audit record per live node: each node's policy ranked the
            # full query set independently (decentralized scheduling, Sec. 4)
            for node, scheduler, plan, decisions, used, overhead in node_records:
                self.audit.on_cycle(
                    time=now,
                    cycle=cycle_index,
                    scheduler=scheduler,
                    ctx=ctx,
                    plan=plan,
                    backpressured=backpressured,
                    cpu_used_ms=used,
                    overhead_ms=overhead,
                    node=node,
                    decisions=decisions,
                )
        if self.checkpoints is not None:
            self.checkpoints.maybe_checkpoint(self, now, down_nodes)

    def _on_standby_promotion(self, node: int, now: float) -> None:
        """Re-place the failed node's operators onto a hot standby.

        The standby is modelled as spare capacity on the surviving node
        with the fewest operators (ties to the lowest index): placement
        entries, and channel transfer latencies, are rewritten so the
        moved operators run there from the next plan onward. Everything
        downstream — ``_localize``, ``plan.local_operators``, the
        forwarding board, the per-node schedulers — reads the placement
        dynamically, so the promotion takes effect cluster-wide at once.
        """
        survivors = [
            n
            for n in range(self.plan.n_nodes)
            if n != node
            and not (self.faults is not None and self.faults.node_down(n, now))
        ]
        if not survivors:
            return  # total outage: nothing to promote onto
        load = {n: 0 for n in survivors}
        for target_node in self.plan.node_of.values():
            if target_node in load:
                load[target_node] += 1
        target = min(survivors, key=lambda n: (load[n], n))
        for query in self.queries:
            for op in query.operators:
                if self.plan.node_of[id(op)] == node:
                    self.plan.node_of[id(op)] = target  # klink: transient[placement is infrastructure state: failover re-placement survives rollback, like the wall clock]
        # Re-derive which edges now cross nodes (the moved operators may
        # have gained or lost co-location with their neighbours).
        for query in self.queries:
            cross = {id(op) for op in self.plan.cross_node_edges(query)}
            for op in query.operators:
                channel = op.output
                if channel is None:
                    continue
                if id(op) in cross:
                    channel.latency_ms = self.rpc_latency_ms
                    if channel not in self._delayed_channels:
                        self._delayed_channels.append(channel)  # klink: transient[derived channel wiring, re-computed from the placement plan]
                else:
                    channel.latency_ms = 0.0

    def _localize(self, plan: Plan, node: int) -> Plan:
        """Restrict a node's plan to the operators hosted on that node."""
        allocations = []
        for alloc in plan.allocations:
            local = [
                op
                for op in alloc.runnable_operators()
                if self.plan.node_of[id(op)] == node
            ]
            if local:
                allocations.append(Allocation(alloc.query, local))
        return Plan(allocations, mode=plan.mode)
