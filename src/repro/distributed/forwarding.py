"""Information forwarding between Klink instances (Sec. 4).

In a distributed deployment no single node holds all the runtime data a
priority computation needs: network-delay statistics are observed where
the source operator runs, while execution costs of downstream operators
are known only on the nodes hosting them. Klink forwards:

* **delay information** from the node observing the source/watermark
  stream to every node running downstream operators, and
* **cost information** from downstream nodes to upstream nodes, so the
  node hosting a query's head can price the full end-to-end drain.

Forwarding rides an RPC service, so remote reads observe values one
forwarding period old. The :class:`ForwardingBoard` models exactly that:
each node publishes its local contribution every cycle, and reads from
other nodes return the snapshot published at least ``rpc_latency_ms``
ago. A node reading its own entries sees them fresh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class QueryInfo:
    """One query's forwarded runtime information, as published."""

    published_at: float
    # delay-side (published by the source node)
    mu: float = 0.0
    chi: float = 0.0
    last_watermark_ts: float = float("-inf")
    next_deadline: Optional[float] = None
    last_swm_ingest_time: Optional[float] = None
    # cost-side (published by each node hosting downstream operators)
    pending_cost_ms: float = 0.0


class ForwardingBoard:
    """RPC-lagged key-value store for inter-node scheduler information."""

    def __init__(self, rpc_latency_ms: float = 2.0) -> None:
        if rpc_latency_ms < 0:
            raise ValueError(f"negative rpc latency: {rpc_latency_ms}")
        self.rpc_latency_ms = rpc_latency_ms
        # (node, query_id) -> [(published_at, info)] — two most recent kept
        self._entries: Dict[Tuple[int, str], List[Tuple[float, QueryInfo]]] = {}

    def publish(self, node: int, query_id: str, info: QueryInfo) -> None:
        """Publish ``node``'s local information about ``query_id``."""
        history = self._entries.setdefault((node, query_id), [])
        history.append((info.published_at, info))
        if len(history) > 2:
            del history[0]

    def read(
        self, reader_node: int, owner_node: int, query_id: str, now: float
    ) -> Optional[QueryInfo]:
        """Read ``owner_node``'s info about a query from ``reader_node``.

        Local reads are fresh; remote reads see the newest snapshot that
        is at least ``rpc_latency_ms`` old (the value the RPC service has
        already delivered).
        """
        history = self._entries.get((owner_node, query_id))
        if not history:
            return None
        if reader_node == owner_node:
            return history[-1][1]
        cutoff = now - self.rpc_latency_ms
        for published_at, info in reversed(history):
            if published_at <= cutoff:
                return info
        return None
