"""Physical plans: operator-to-node assignment.

The SPE devises a physical plan mapping operators to nodes at deployment
time; Klink "functions orthogonally to the deployment problem and is
designed to work with any physical plan" (Sec. 4). Two plans are
provided:

* ``locality`` — whole query pipelines are placed on one node,
  round-robin across nodes. This mirrors the paper's Fig. 6e setup, which
  uses "Flink's built-in mechanism that considers the type of operators
  and memory locality to minimize data mobility".
* ``split`` — each pipeline is cut into contiguous segments spread over
  consecutive nodes (the Fig. 5 scenario), exercising cross-node record
  transfer and the delay/cost information forwarding rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.spe.operators import Operator
from repro.spe.query import Query


@dataclass
class PhysicalPlan:
    """Maps every operator (by id) to a node index."""

    n_nodes: int
    node_of: Dict[int, int] = field(default_factory=dict)

    def node_of_operator(self, op: Operator) -> int:
        return self.node_of[id(op)]

    def source_node(self, query: Query) -> int:
        """Node hosting the query's first operator (watermark origin)."""
        return self.node_of_operator(query.operators[0])

    def local_operators(self, query: Query, node: int) -> List[Operator]:
        return [
            op for op in query.operators if self.node_of[id(op)] == node
        ]

    def is_split(self, query: Query) -> bool:
        nodes = {self.node_of[id(op)] for op in query.operators}
        return len(nodes) > 1

    def cross_node_edges(self, query: Query) -> List[Operator]:
        """Operators whose output crosses a node boundary."""
        out = []
        for op in query.operators:
            down = query.downstream_of(op)
            if down is not None and self.node_of[id(op)] != self.node_of[id(down)]:
                out.append(op)
        return out

    # -- constructors -------------------------------------------------------

    @classmethod
    def locality(cls, queries: Sequence[Query], n_nodes: int) -> "PhysicalPlan":
        """Whole pipelines colocated; queries spread round-robin."""
        if n_nodes < 1:
            raise ValueError(f"need at least one node: {n_nodes}")
        plan = cls(n_nodes=n_nodes)
        for i, query in enumerate(queries):
            node = i % n_nodes
            for op in query.operators:
                plan.node_of[id(op)] = node
        return plan

    @classmethod
    def split(
        cls, queries: Sequence[Query], n_nodes: int, segments: int = 2
    ) -> "PhysicalPlan":
        """Cut each pipeline into up to ``segments`` contiguous pieces.

        Segment boundaries respect topological order, so every cross-node
        edge points "forward" (upstream node -> downstream node), matching
        the Fig. 5 deployment where node A holds the source half and node
        B the window/output half.
        """
        if n_nodes < 1:
            raise ValueError(f"need at least one node: {n_nodes}")
        segments = max(1, min(segments, n_nodes))
        plan = cls(n_nodes=n_nodes)
        for i, query in enumerate(queries):
            ops = query.operators
            n_segs = min(segments, len(ops))
            per_seg = -(-len(ops) // n_segs)  # ceil division
            for j, op in enumerate(ops):
                seg = min(j // per_seg, n_segs - 1)
                plan.node_of[id(op)] = (i + seg) % n_nodes
        return plan
