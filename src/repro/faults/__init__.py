"""Fault injection and runtime invariant checking.

* :mod:`repro.faults.plan` — seeded, deterministic fault schedules
  (:class:`FaultPlan`) of timed perturbations the engine consults each
  scheduling cycle.
* :mod:`repro.faults.invariants` — the :class:`InvariantMonitor` that
  continuously asserts conservation, monotonicity, window-firing, and
  CPU-budget invariants over a running engine.
"""

from repro.faults.invariants import (
    InvariantError,
    InvariantMonitor,
    InvariantViolation,
)
from repro.faults.plan import (
    Fault,
    FaultPlan,
    MemoryPressureSpike,
    NodeFailure,
    OperatorSlowdown,
    SourceStall,
    WatermarkDrop,
    WatermarkStraggler,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "SourceStall",
    "WatermarkStraggler",
    "WatermarkDrop",
    "OperatorSlowdown",
    "MemoryPressureSpike",
    "NodeFailure",
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantError",
]
