"""Runtime invariant checking for engine runs.

The simulator's claims rest on bookkeeping that nothing previously
verified at runtime: every generated event must end up processed, queued,
or shed (never duplicated or lost), watermarks must only move forward,
window panes must fire exactly when their deadline is swept, and a cycle
can never consume more CPU than ``cores x r``. An
:class:`InvariantMonitor` attached to an engine
(``Engine(..., invariants=monitor)``) re-derives these conservation laws
from independent counters after every collect/start/pause cycle and
records an :class:`InvariantViolation` for each breach.

The monitor is pure observation: it never mutates engine state, so a
monitored run is bit-identical to an unmonitored one. Combined with a
:class:`~repro.faults.plan.FaultPlan` it turns any experiment into a
differential stress test — every scheduler, under identical
perturbations, must keep every invariant intact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.spe.operators import SinkOperator, _WindowedOperatorBase
from repro.spe.watermarks import WatermarkGeneratorOperator


@dataclass(frozen=True)
class InvariantViolation:
    """One detected breach of a runtime invariant."""

    time: float
    invariant: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[t={self.time:.1f}ms] {self.invariant} on {self.subject}: "
            f"{self.detail}"
        )


class InvariantError(AssertionError):
    """Raised in strict mode on the first violation."""


class InvariantMonitor:
    """Continuously asserts engine conservation invariants.

    Checked every cycle (and once more at the end of the run):

    * **clock** — the virtual clock strictly advances.
    * **cpu-budget** — CPU consumed in a cycle (processing + scheduler
      overhead) never exceeds ``cores x cycle_ms``.
    * **plan-sanity** — a priority plan schedules only registered queries
      and each at most once.
    * **channel-conservation** — per channel:
      ``pushed + returned - popped == queued`` and no negative depths
      (queue depth = ingested − processed − shed, at channel granularity).
    * **event-conservation** — per query: events the engine delivered to
      source channels equal events consumed by the entry operators plus
      events still queued there (nothing created, lost, or duplicated).
    * **watermark-monotonicity** — per stream/operator/generator, observed
      watermark clocks never regress.
    * **window-firing** — no window pane stays buffered once the
      operator's event clock has swept its deadline (results are emitted
      exactly once, and only after their SWM arrives).
    * **sink-swm-order** — SWM timestamps reach each sink in
      non-decreasing order with non-negative propagation latency.

    Args:
        tolerance: absolute slack for floating-point comparisons.
        strict: raise :class:`InvariantError` on the first violation
            instead of recording it.
        max_violations: stop recording (but keep counting) beyond this
            many violations, so a broken run cannot exhaust memory.
    """

    def __init__(
        self,
        *,
        tolerance: float = 1e-6,
        strict: bool = False,
        max_violations: int = 100,
    ) -> None:
        if tolerance < 0:
            raise ValueError(f"negative tolerance: {tolerance}")
        if max_violations < 1:
            raise ValueError(f"need at least one violation slot: {max_violations}")
        self.tolerance = tolerance
        self.strict = strict
        self.max_violations = max_violations
        self.violations: List[InvariantViolation] = []
        self.total_violations = 0
        self.cycles_checked = 0
        # per-entity snapshots for monotonicity checks (keyed by id())
        self._last_now: Optional[float] = None
        self._event_clocks: Dict[int, float] = {}
        self._input_wms: Dict[int, List[float]] = {}
        self._progress_wms: Dict[int, float] = {}
        self._generator_wms: Dict[int, float] = {}
        self._sink_swm_seen: Dict[int, int] = {}
        self._sink_last_ts: Dict[int, float] = {}
        self._ingested_prev = 0.0
        self._shed_prev = 0.0
        # events whose loss is *tolerated*: booked by on_crash when a node
        # failed with recovery explicitly disabled. With recovery enabled,
        # loss is never tolerated — it becomes an unrecovered-loss
        # violation instead (the failover must preserve every event).
        self._tolerated_loss: Dict[str, float] = {}

    # -- result accessors -----------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def report(self) -> str:
        """Human-readable summary of the monitoring outcome."""
        if self.ok:
            return (
                f"invariants OK: {self.cycles_checked} cycles checked, "
                f"0 violations"
            )
        lines = [
            f"invariants VIOLATED: {self.total_violations} violations over "
            f"{self.cycles_checked} cycles"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        if self.total_violations > len(self.violations):
            lines.append(
                f"  ... {self.total_violations - len(self.violations)} more"
            )
        return "\n".join(lines)

    def _record(self, time: float, invariant: str, subject: str, detail: str) -> None:
        self.total_violations += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(
                InvariantViolation(time, invariant, subject, detail)
            )
        if self.strict:
            raise InvariantError(str(self.violations[-1]))

    # -- engine-facing hooks ---------------------------------------------------

    def on_cycle(self, engine, plans: Sequence = (), cpu_used_ms: float = 0.0) -> None:
        """Check all invariants after one collect/start/pause cycle."""
        now = engine.clock.now
        tol = self.tolerance
        self.cycles_checked += 1

        if self._last_now is not None and now <= self._last_now:
            self._record(
                now, "clock", "engine",
                f"clock did not advance: {self._last_now} -> {now}",
            )
        self._last_now = now

        budget = engine.cores * engine.cycle_ms
        if cpu_used_ms > budget * (1.0 + 1e-9) + tol:
            self._record(
                now, "cpu-budget", "engine",
                f"cycle consumed {cpu_used_ms:.3f} CPU-ms, budget is "
                f"{budget:.3f} (cores x r)",
            )

        registered = {q.query_id for q in engine.queries}
        for plan in plans:
            if plan.mode != "priority":
                continue
            ids = plan.scheduled_query_ids()
            seen = set()
            for qid in ids:
                if qid not in registered:
                    self._record(
                        now, "plan-sanity", qid,
                        "plan schedules an unregistered query",
                    )
                if qid in seen:
                    self._record(
                        now, "plan-sanity", qid,
                        "plan schedules the same query twice",
                    )
                seen.add(qid)

        self._monotone_counters(engine, now)
        for query in engine.queries:
            self._check_channels(query, now)
            self._check_entry_conservation(query, now)
            self._check_watermarks(query, now)
            self._check_windows(query, now)
            self._check_sinks(query, now)

    def finalize(self, engine) -> None:
        """Re-check the stationary invariants on the final engine state."""
        now = engine.clock.now
        for query in engine.queries:
            self._check_channels(query, now)
            self._check_entry_conservation(query, now)
            self._check_windows(query, now)
        # Engine-wide conservation: everything the sources delivered is
        # accounted for by the per-binding ingestion counters.
        delivered = sum(
            b.events_ingested for q in engine.queries for b in q.bindings
        )
        total = engine.metrics.total_events_ingested
        if abs(delivered - total) > max(self.tolerance, 1e-9 * total):
            self._record(
                now, "event-conservation", "engine",
                f"per-binding ingestion counters ({delivered:.3f}) disagree "
                f"with the engine total ({total:.3f})",
            )

    # -- resilience hooks (repro.resilience) -----------------------------------

    def on_crash(self, engine, lost_events: Dict[str, float], recovery_enabled: bool) -> None:
        """Account events lost when a node crashed.

        ``lost_events`` maps query ids to events dropped from their entry
        channels. With recovery *disabled* the loss is expected — crash
        semantics without checkpoints lose volatile state — so it is
        booked as tolerated and the conservation checks subtract it. With
        recovery *enabled*, lost events mean the failover failed to
        preserve them: each is recorded as an ``unrecovered-loss``
        violation (this is the tightened semantics — loss is only ever
        acceptable when the run explicitly opted out of recovery).
        """
        now = engine.clock.now
        for query_id in sorted(lost_events):
            lost = lost_events[query_id]
            if lost <= self.tolerance:
                continue
            if recovery_enabled:
                self._record(
                    now, "unrecovered-loss", query_id,
                    f"{lost:.3f} events lost to a node failure although "
                    f"recovery was enabled",
                )
            else:
                self._tolerated_loss[query_id] = (
                    self._tolerated_loss.get(query_id, 0.0) + lost
                )

    def on_rollback(self, engine) -> None:
        """Re-base the cross-cycle baselines after a checkpoint rollback.

        A rollback legitimately rewinds ingestion counters, watermark
        clocks, and sink ledgers; without re-basing, the next ``on_cycle``
        would flag the rewind itself as regression. The re-based values
        come from the *restored* state, so any genuine regression after
        the rollback is still caught.
        """
        metrics = engine.metrics
        self._ingested_prev = metrics.total_events_ingested
        self._shed_prev = metrics.events_shed
        for query in engine.queries:
            for binding in query.bindings:
                progress = binding.progress
                if progress is not None:
                    self._progress_wms[id(progress)] = progress.last_watermark_ts
            for op in query.operators:
                if isinstance(op, _WindowedOperatorBase):
                    self._event_clocks[id(op)] = op.event_clock
                    self._input_wms[id(op)] = list(op._input_watermarks)
                elif isinstance(op, WatermarkGeneratorOperator):
                    self._generator_wms[id(op)] = op.last_emitted
            sink = query.sink
            if isinstance(sink, SinkOperator):
                last_ts = -math.inf
                for at, latency in sink.swm_latencies:
                    last_ts = max(last_ts, at - latency)
                self._sink_swm_seen[id(sink)] = len(sink.swm_latencies)
                self._sink_last_ts[id(sink)] = last_ts

    # -- individual invariant checks ------------------------------------------

    def _monotone_counters(self, engine, now: float) -> None:
        m = engine.metrics
        if m.total_events_ingested < self._ingested_prev - self.tolerance:
            self._record(
                now, "event-conservation", "engine",
                f"total_events_ingested regressed: "
                f"{self._ingested_prev} -> {m.total_events_ingested}",
            )
        if m.events_shed < self._shed_prev - self.tolerance:
            self._record(
                now, "event-conservation", "engine",
                f"events_shed regressed: {self._shed_prev} -> {m.events_shed}",
            )
        self._ingested_prev = m.total_events_ingested
        self._shed_prev = m.events_shed

    def _check_channels(self, query, now: float) -> None:
        for op in query.operators:
            for ch in op.inputs:
                flow = ch.events_pushed + ch.events_returned - ch.events_popped
                slack = max(self.tolerance, 1e-9 * ch.events_pushed)
                if abs(flow - ch.queued_events) > slack:
                    self._record(
                        now, "channel-conservation", ch.name or repr(ch),
                        f"pushed+returned-popped = {flow:.6f} but queued "
                        f"depth is {ch.queued_events:.6f}",
                    )
                if ch.queued_events < -self.tolerance:
                    self._record(
                        now, "channel-conservation", ch.name or repr(ch),
                        f"negative queue depth: {ch.queued_events}",
                    )
                if ch.queued_bytes < -self.tolerance:
                    self._record(
                        now, "channel-conservation", ch.name or repr(ch),
                        f"negative queued bytes: {ch.queued_bytes}",
                    )

    def _check_entry_conservation(self, query, now: float) -> None:
        """ingested == consumed by entry operators + still queued there."""
        entry_channels = {id(b.channel): b.channel for b in query.bindings}
        entry_ops = {id(b.operator): b.operator for b in query.bindings}
        # Only meaningful when the entry operators are fed exclusively by
        # sources; a mid-pipeline channel would mix source and derived
        # traffic and the balance would not be expected to hold.
        for op in entry_ops.values():
            if any(id(ch) not in entry_channels for ch in op.inputs):
                return
        ingested = sum(b.events_ingested for b in query.bindings)
        consumed = sum(op.stats.events_in for op in entry_ops.values())
        queued = sum(ch.queued_events for ch in entry_channels.values())
        tolerated = self._tolerated_loss.get(query.query_id, 0.0)
        accounted = consumed + queued + tolerated
        slack = max(self.tolerance, 1e-9 * max(ingested, 1.0))
        if abs(accounted - ingested) > slack:
            self._record(
                now, "event-conservation", query.query_id,
                f"ingested {ingested:.6f} events but consumed+queued "
                f"accounts for {accounted:.6f} "
                f"(consumed={consumed:.6f}, queued={queued:.6f})",
            )

    def _check_watermarks(self, query, now: float) -> None:
        for binding in query.bindings:
            progress = binding.progress
            if progress is None:
                continue
            key = id(progress)
            last = self._progress_wms.get(key, -math.inf)
            if progress.last_watermark_ts < last:
                self._record(
                    now, "watermark-monotonicity",
                    f"{query.query_id}.src{binding.source_id}",
                    f"stream watermark regressed: {last} -> "
                    f"{progress.last_watermark_ts}",
                )
            self._progress_wms[key] = progress.last_watermark_ts
        for op in query.operators:
            if isinstance(op, _WindowedOperatorBase):
                key = id(op)
                last = self._event_clocks.get(key, -math.inf)
                if op.event_clock < last:
                    self._record(
                        now, "watermark-monotonicity", op.name,
                        f"event clock regressed: {last} -> {op.event_clock}",
                    )
                self._event_clocks[key] = op.event_clock
                prev = self._input_wms.get(key)
                current = list(op._input_watermarks)
                if prev is not None:
                    for i, (a, b) in enumerate(zip(prev, current)):
                        if b < a:
                            self._record(
                                now, "watermark-monotonicity",
                                f"{op.name}.in{i}",
                                f"input watermark regressed: {a} -> {b}",
                            )
                self._input_wms[key] = current
            elif isinstance(op, WatermarkGeneratorOperator):
                key = id(op)
                last = self._generator_wms.get(key, -math.inf)
                if op.last_emitted < last:
                    self._record(
                        now, "watermark-monotonicity", op.name,
                        f"generated watermark regressed: {last} -> "
                        f"{op.last_emitted}",
                    )
                self._generator_wms[key] = op.last_emitted

    def _check_windows(self, query, now: float) -> None:
        for op in query.windowed_operators():
            clock = op.event_clock
            if math.isinf(clock):
                continue
            pending = op.pending_pane_deadlines()
            if pending and pending[0] <= clock - 1e-9:
                self._record(
                    now, "window-firing", op.name,
                    f"pane with deadline {pending[0]} still buffered although "
                    f"the event clock has reached {clock}",
                )

    def _check_sinks(self, query, now: float) -> None:
        sink = query.sink
        if not isinstance(sink, SinkOperator):
            return
        key = id(sink)
        seen = self._sink_swm_seen.get(key, 0)
        last_ts = self._sink_last_ts.get(key, -math.inf)
        for at, latency in sink.swm_latencies[seen:]:
            if latency < -self.tolerance:
                self._record(
                    now, "sink-swm-order", sink.name,
                    f"negative SWM propagation latency: {latency:.3f}ms",
                )
            ts = at - latency
            if ts < last_ts - self.tolerance:
                self._record(
                    now, "sink-swm-order", sink.name,
                    f"SWM timestamps out of order at the sink: {last_ts} -> {ts}",
                )
            last_ts = max(last_ts, ts)
        self._sink_swm_seen[key] = len(sink.swm_latencies)
        self._sink_last_ts[key] = last_ts
