"""Deterministic fault schedules for the engine and the cluster.

Real streaming deployments are perturbed in ways a clean simulation never
exercises: sources stall and recover, watermarks straggle behind their
events or disappear entirely, operators slow down (noisy neighbours, GC,
skewed keys), memory is consumed by co-tenants, and whole nodes fail and
come back. A :class:`FaultPlan` is a *seeded, timed* schedule of such
perturbations that the :class:`~repro.spe.engine.Engine` (and
:class:`~repro.distributed.cluster.DistributedEngine`) consult every
scheduling cycle. Because every episode is a pure function of simulated
time, a run under a fault plan is exactly as deterministic as a run
without one — which is what makes *differential testing* possible: run
Klink, FCFS, RR, HR, and SBox under the identical fault schedule and
compare how each degrades.

Fault semantics (all windows are half-open ``[start_ms, end_ms)`` in
simulated engine time):

* :class:`SourceStall` — affected sources stop delivering: everything
  they generate during the episode (events, watermarks, markers) is held
  and arrives at the stall's end, aged by the time it spent stuck.
* :class:`WatermarkStraggler` — watermarks generated during the episode
  suffer ``extra_delay_ms`` of additional network delay; events flow
  normally, so event-time progress *lags* the data (the classic straggler
  that blocks window firing).
* :class:`WatermarkDrop` — watermarks generated during the episode are
  lost entirely (a faulty source task that stops reporting progress).
* :class:`OperatorSlowdown` — matching operators' per-event cost is
  multiplied by ``factor`` for the duration (interference episode).
* :class:`MemoryPressureSpike` — ``extra_bytes`` of the memory budget are
  occupied by an external tenant for the duration, which can push the
  engine over its backpressure threshold.
* :class:`NodeFailure` — the node executes nothing for the duration and
  ingestion for queries whose sources live on it is suspended; on a
  single-node engine, node 0 is the whole engine.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np


def _normalize_ids(ids: Optional[Sequence[str]]) -> Optional[FrozenSet[str]]:
    if ids is None:
        return None
    return frozenset(ids)


@dataclass(frozen=True)
class Fault:
    """Base episode: active on the half-open interval [start_ms, end_ms)."""

    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.start_ms < 0:
            raise ValueError(f"fault starts before time zero: {self.start_ms}")
        if self.end_ms <= self.start_ms:
            raise ValueError(
                f"fault window inverted or empty: [{self.start_ms}, {self.end_ms})"
            )

    def active(self, t: float) -> bool:
        return self.start_ms <= t < self.end_ms

    def describe(self) -> str:
        extras = []
        for f in dataclasses.fields(self):
            if f.name in ("start_ms", "end_ms"):
                continue
            value = getattr(self, f.name)
            if value is None:
                continue
            if isinstance(value, frozenset):
                value = "{" + ",".join(sorted(value)) + "}"
            elif isinstance(value, float):
                value = f"{value:g}"
            extras.append(f"{f.name}={value}")
        suffix = f" {' '.join(extras)}" if extras else ""
        return (
            f"{type(self).__name__}[{self.start_ms:.0f}, {self.end_ms:.0f})"
            f"{suffix}"
        )


def _matches(ids: Optional[FrozenSet[str]], query_id: str) -> bool:
    return ids is None or query_id in ids


@dataclass(frozen=True)
class SourceStall(Fault):
    """Affected sources deliver nothing until the episode ends."""

    query_ids: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "query_ids", _normalize_ids(self.query_ids))


@dataclass(frozen=True)
class WatermarkStraggler(Fault):
    """Watermarks generated during the episode arrive extra late."""

    extra_delay_ms: float = 1_000.0
    query_ids: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_delay_ms <= 0:
            raise ValueError(f"straggler delay must be positive: {self.extra_delay_ms}")
        object.__setattr__(self, "query_ids", _normalize_ids(self.query_ids))


@dataclass(frozen=True)
class WatermarkDrop(Fault):
    """Watermarks generated during the episode are lost."""

    query_ids: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "query_ids", _normalize_ids(self.query_ids))


@dataclass(frozen=True)
class OperatorSlowdown(Fault):
    """Matching operators cost ``factor`` x their declared per-event CPU."""

    factor: float = 2.0
    query_ids: Optional[FrozenSet[str]] = None
    #: None matches every operator of the matched queries.
    operator_names: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1: {self.factor}")
        object.__setattr__(self, "query_ids", _normalize_ids(self.query_ids))
        object.__setattr__(
            self, "operator_names", _normalize_ids(self.operator_names)
        )


@dataclass(frozen=True)
class MemoryPressureSpike(Fault):
    """An external tenant occupies ``extra_bytes`` of the memory budget."""

    extra_bytes: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_bytes <= 0:
            raise ValueError(f"spike must occupy bytes: {self.extra_bytes}")


@dataclass(frozen=True)
class NodeFailure(Fault):
    """The node is down (no execution, source ingestion suspended)."""

    node: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ValueError(f"negative node index: {self.node}")


class FaultPlan:
    """An immutable, deterministic schedule of fault episodes.

    The engine consults the plan once per cycle through the query methods
    below; all of them are pure functions of (identity, time), so two runs
    with the same plan see byte-identical perturbations.
    """

    def __init__(self, faults: Sequence[Fault] = (), *, seed: Optional[int] = None):
        for f in faults:
            if not isinstance(f, Fault):
                raise TypeError(f"not a fault episode: {f!r}")
        self.faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: (f.start_ms, f.end_ms))
        )
        #: seed the plan was generated from (None for hand-written plans)
        self.seed = seed
        self._stalls = [f for f in self.faults if isinstance(f, SourceStall)]
        self._stragglers = [
            f for f in self.faults if isinstance(f, WatermarkStraggler)
        ]
        self._drops = [f for f in self.faults if isinstance(f, WatermarkDrop)]
        self._slowdowns = [
            f for f in self.faults if isinstance(f, OperatorSlowdown)
        ]
        self._spikes = [
            f for f in self.faults if isinstance(f, MemoryPressureSpike)
        ]
        self._failures = [f for f in self.faults if isinstance(f, NodeFailure)]

    # -- engine-facing queries (pure functions of identity and time) ---------

    def source_hold_until(self, query_id: str, t: float) -> float:
        """Earliest time a record generated at ``t`` may be delivered.

        Covers both source stalls and node failures of the source's node
        (node granularity is resolved by the caller for distributed runs);
        returns 0.0 when no stall applies.
        """
        hold = 0.0
        for f in self._stalls:
            if f.active(t) and _matches(f.query_ids, query_id):
                hold = max(hold, f.end_ms)
        return hold

    def watermark_extra_delay(self, query_id: str, t: float) -> float:
        """Additional network delay for a watermark generated at ``t``."""
        extra = 0.0
        for f in self._stragglers:
            if f.active(t) and _matches(f.query_ids, query_id):
                extra += f.extra_delay_ms
        return extra

    def drops_watermark(self, query_id: str, t: float) -> bool:
        """True when a watermark generated at ``t`` is lost."""
        return any(
            f.active(t) and _matches(f.query_ids, query_id) for f in self._drops
        )

    # -- range variants (vectorized cycle kernel) ----------------------------
    #
    # The vectorized ``_generate_binding`` evaluates a whole horizon of
    # generation timestamps at once; these helpers answer the same pure
    # (identity, time) queries for a sequence of times with exactly the
    # per-element semantics of the scalar methods above.

    def source_hold_until_range(
        self, query_id: str, times: Sequence[float]
    ) -> List[float]:
        """``source_hold_until`` evaluated element-wise over ``times``."""
        stalls = [f for f in self._stalls if _matches(f.query_ids, query_id)]
        if not stalls:
            return [0.0] * len(times)
        out = []
        for t in times:
            hold = 0.0
            for f in stalls:
                if f.start_ms <= t < f.end_ms:
                    hold = max(hold, f.end_ms)
            out.append(hold)
        return out

    def watermark_extra_delay_range(
        self, query_id: str, times: Sequence[float]
    ) -> List[float]:
        """``watermark_extra_delay`` evaluated element-wise over ``times``."""
        stragglers = [
            f for f in self._stragglers if _matches(f.query_ids, query_id)
        ]
        if not stragglers:
            return [0.0] * len(times)
        out = []
        for t in times:
            extra = 0.0
            for f in stragglers:
                if f.start_ms <= t < f.end_ms:
                    extra += f.extra_delay_ms
            out.append(extra)
        return out

    def drops_watermark_range(
        self, query_id: str, times: Sequence[float]
    ) -> List[bool]:
        """``drops_watermark`` evaluated element-wise over ``times``."""
        drops = [f for f in self._drops if _matches(f.query_ids, query_id)]
        if not drops:
            return [False] * len(times)
        return [
            any(f.start_ms <= t < f.end_ms for f in drops) for t in times
        ]

    def slowdown_factor(self, query_id: str, operator_name: str, t: float) -> float:
        """Cost multiplier for one operator at time ``t`` (>= 1.0)."""
        factor = 1.0
        for f in self._slowdowns:
            if (
                f.active(t)
                and _matches(f.query_ids, query_id)
                and _matches(f.operator_names, operator_name)
            ):
                factor *= f.factor
        return factor

    def extra_memory_bytes(self, t: float) -> float:
        """Bytes of the memory budget held by external tenants at ``t``."""
        return sum(f.extra_bytes for f in self._spikes if f.active(t))

    def node_down(self, node: int, t: float) -> bool:
        """True when ``node`` is failed at time ``t``."""
        return any(f.active(t) and f.node == node for f in self._failures)

    # -- introspection ---------------------------------------------------------

    @property
    def has_slowdowns(self) -> bool:
        return bool(self._slowdowns)

    def active_at(self, t: float) -> List[Fault]:
        return [f for f in self.faults if f.active(t)]

    def end_ms(self) -> float:
        """Time by which every episode has ended (0.0 for an empty plan)."""
        return max((f.end_ms for f in self.faults), default=0.0)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def describe(self) -> str:
        if not self.faults:
            return "FaultPlan(empty)"
        lines = [f"FaultPlan({len(self.faults)} episodes"
                 + (f", seed={self.seed}" if self.seed is not None else "")
                 + ")"]
        lines.extend(f"  {f.describe()}" for f in self.faults)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(n={len(self.faults)}, seed={self.seed})"

    # -- generation -------------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        duration_ms: float,
        *,
        query_ids: Optional[Sequence[str]] = None,
        n_nodes: int = 1,
        episodes: int = 6,
        mean_episode_ms: float = 2_000.0,
        straggler_delay_ms: float = 1_500.0,
        slowdown_factor: float = 3.0,
        spike_bytes: float = 256 * 1024 * 1024,
        allow_node_failures: bool = True,
    ) -> "FaultPlan":
        """Generate a randomized but fully reproducible fault schedule.

        The same ``(seed, duration_ms, options)`` always yields the same
        plan. Episode starts are spread uniformly over the run, durations
        are exponential with mean ``mean_episode_ms`` (clamped into the
        run), and each episode independently picks a fault kind and —
        when ``query_ids`` is given — a single victim query.
        """
        if seed < 0:
            raise ValueError(f"fault seed must be non-negative: {seed}")
        if duration_ms <= 0:
            raise ValueError(f"duration must be positive: {duration_ms}")
        if episodes < 0:
            raise ValueError(f"negative episode count: {episodes}")
        rng = np.random.default_rng(seed)
        kinds = ["stall", "straggler", "drop", "slowdown", "spike"]
        if allow_node_failures:
            kinds.append("failure")
        faults: List[Fault] = []
        for _ in range(episodes):
            start = float(rng.uniform(0.0, duration_ms * 0.9))
            length = float(
                min(max(rng.exponential(mean_episode_ms), 100.0),
                    duration_ms - start)
            )
            end = start + length
            kind = kinds[int(rng.integers(len(kinds)))]
            victims: Optional[FrozenSet[str]] = None
            if query_ids:
                victims = frozenset({query_ids[int(rng.integers(len(query_ids)))]})
            if kind == "stall":
                faults.append(SourceStall(start, end, query_ids=victims))
            elif kind == "straggler":
                faults.append(
                    WatermarkStraggler(
                        start, end,
                        extra_delay_ms=straggler_delay_ms,
                        query_ids=victims,
                    )
                )
            elif kind == "drop":
                faults.append(WatermarkDrop(start, end, query_ids=victims))
            elif kind == "slowdown":
                faults.append(
                    OperatorSlowdown(
                        start, end, factor=slowdown_factor, query_ids=victims
                    )
                )
            elif kind == "spike":
                faults.append(
                    MemoryPressureSpike(start, end, extra_bytes=spike_bytes)
                )
            else:
                faults.append(
                    NodeFailure(start, end, node=int(rng.integers(n_nodes)))
                )
        return cls(faults, seed=seed)
