"""Network delay models used to perturb event ingestion times."""

from repro.net.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    UniformDelay,
    ZipfDelay,
)

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "ZipfDelay",
    "ExponentialDelay",
]
