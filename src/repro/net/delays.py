"""Network delay distributions.

The paper evaluates Klink under synthetic network delays drawn from Uniform
and Zipf distributions ("We also generate Zipf distributed network delays
with a distribution constant of 0.99", Sec. 6.2). These models perturb the
time between an event's generation at the source and its ingestion by the
SPE. Each model exposes a hard ``bound`` — the maximum delay it can
produce — which workloads use to set the watermark lateness allowance so
that watermark semantics (no event older than the watermark follows it)
hold by construction.
"""

from __future__ import annotations

import abc

import numpy as np


class DelayModel(abc.ABC):
    """Samples per-batch network delays (milliseconds)."""

    def __init__(self, rng: np.random.Generator | None = None, seed: int | None = None):
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    @abc.abstractmethod
    def sample(self) -> float:
        """Draw one delay value in milliseconds."""

    @property
    @abc.abstractmethod
    def bound(self) -> float:
        """Upper bound on delays this model can produce (ms)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected delay (ms)."""

    def reseed(self, seed: int) -> None:
        """Reset the random stream (used to make experiment repetitions vary)."""
        self._rng = np.random.default_rng(seed)

    def describe(self) -> dict:
        """Analytic summary of the model, for observability records.

        The SWM-forecast audit annotates each source's calibration row
        with the delay model it faced, so a reader can judge prediction
        error against the delay spread that produced it.
        """
        return {
            "model": type(self).__name__,
            "mean_ms": float(self.mean),
            "bound_ms": float(self.bound),
        }


class ConstantDelay(DelayModel):
    """Every event is delayed by exactly ``delay_ms``. Useful in tests."""

    def __init__(self, delay_ms: float):
        super().__init__(seed=0)
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        self._delay = float(delay_ms)

    def sample(self) -> float:
        return self._delay

    @property
    def bound(self) -> float:
        return self._delay

    @property
    def mean(self) -> float:
        return self._delay


class UniformDelay(DelayModel):
    """Delays uniform over ``[low_ms, high_ms]`` (the paper's Uniform case)."""

    def __init__(self, low_ms: float = 0.0, high_ms: float = 500.0, *, seed: int | None = None):
        super().__init__(seed=seed)
        if not 0 <= low_ms <= high_ms:
            raise ValueError(f"invalid uniform range [{low_ms}, {high_ms}]")
        self._low = float(low_ms)
        self._high = float(high_ms)

    def sample(self) -> float:
        return float(self._rng.uniform(self._low, self._high))

    @property
    def bound(self) -> float:
        return self._high

    @property
    def mean(self) -> float:
        return (self._low + self._high) / 2.0


class ZipfDelay(DelayModel):
    """Zipf-distributed delays with exponent ``a`` (paper uses 0.99).

    Delay ranks ``1..n_ranks`` are drawn with probability proportional to
    ``rank**-a`` and mapped onto ``[0, max_ms]`` by a power curve
    (``shape`` > 1 compresses the bulk towards small delays and stretches
    the rare high ranks towards the bound). Rank 1 — the most probable —
    maps to the smallest delay, giving the heavy right tail that "injects
    higher unpredictability into network delay" and stresses the SWM
    ingestion estimator in Fig. 9c.
    """

    def __init__(
        self,
        a: float = 0.99,
        max_ms: float = 500.0,
        n_ranks: int = 100,
        shape: float = 2.0,
        *,
        seed: int | None = None,
    ):
        super().__init__(seed=seed)
        if a <= 0:
            raise ValueError(f"zipf exponent must be positive: {a}")
        if n_ranks < 2:
            raise ValueError(f"need at least 2 ranks: {n_ranks}")
        if shape <= 0:
            raise ValueError(f"shape must be positive: {shape}")
        self._max = float(max_ms)
        self._n_ranks = n_ranks
        ranks = np.arange(1, n_ranks + 1, dtype=float)
        weights = ranks ** (-a)
        self._probs = weights / weights.sum()
        self._delays = ((ranks - 1) / (n_ranks - 1)) ** shape * self._max

    def sample(self) -> float:
        idx = self._rng.choice(self._n_ranks, p=self._probs)
        return float(self._delays[idx])

    @property
    def bound(self) -> float:
        return self._max

    @property
    def mean(self) -> float:
        return float(np.dot(self._probs, self._delays))


class ExponentialDelay(DelayModel):
    """Exponential delays truncated at ``cap_ms`` (extra model for ablations)."""

    def __init__(self, mean_ms: float = 100.0, cap_ms: float | None = None, *, seed: int | None = None):
        super().__init__(seed=seed)
        if mean_ms <= 0:
            raise ValueError(f"mean must be positive: {mean_ms}")
        self._mean = float(mean_ms)
        self._cap = float(cap_ms) if cap_ms is not None else 10.0 * mean_ms

    def sample(self) -> float:
        return min(float(self._rng.exponential(self._mean)), self._cap)

    @property
    def bound(self) -> float:
        return self._cap

    @property
    def mean(self) -> float:
        # Analytic mean of min(X, cap) for exponential X: m * (1 - e^{-cap/m}).
        import math

        return self._mean * (1.0 - math.exp(-self._cap / self._mean))
