"""Network delay distributions.

The paper evaluates Klink under synthetic network delays drawn from Uniform
and Zipf distributions ("We also generate Zipf distributed network delays
with a distribution constant of 0.99", Sec. 6.2). These models perturb the
time between an event's generation at the source and its ingestion by the
SPE. Each model exposes a hard ``bound`` — the maximum delay it can
produce — which workloads use to set the watermark lateness allowance so
that watermark semantics (no event older than the watermark follows it)
hold by construction.
"""

from __future__ import annotations

import abc

import numpy as np


class DelayModel(abc.ABC):
    """Samples per-batch network delays (milliseconds)."""

    #: draws prefetched per :meth:`sample_amortized` refill. One numpy
    #: batch call amortizes over this many scalar draws.
    AMORTIZE_BLOCK = 256

    def __init__(self, rng: np.random.Generator | None = None, seed: int | None = None):
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        # Prefetch buffer for sample_amortized(): values already drawn
        # from the generator but not yet handed to a caller.
        self._draw_buf: list = []
        self._draw_pos = 0
        # Bit-generator state captured immediately before the last
        # prefetch refill; lets checkpoint_rng_state() reconstruct the
        # *logical* generator position while draws are pending.
        self._refill_state: object = None

    @abc.abstractmethod
    def sample(self) -> float:
        """Draw one delay value in milliseconds."""

    def sample_amortized(self) -> float:
        """``sample()`` with block-prefetched draws (same value stream).

        Returns exactly the values ``sample()`` would return, in the same
        order — the refill is one :meth:`sample_batch` call, whose pinned
        contract is bit-identity with sequential ``sample()`` draws. The
        only observable difference is the *generator's internal state*,
        which runs ahead of the consumed values by up to a block. Callers
        that snapshot generator state (checkpointing engines) or
        interleave direct ``sample``/``sample_batch`` calls on the same
        model must not mix them with ``sample_amortized`` — the engine
        enables amortization only when no such observer exists.
        """
        pos = self._draw_pos
        buf = self._draw_buf
        if pos < len(buf):
            self._draw_pos = pos + 1
            return buf[pos]
        self._refill_state = self._rng.bit_generator.state
        self._draw_buf = buf = self.sample_batch(self.AMORTIZE_BLOCK).tolist()
        self._draw_pos = 1
        return buf[0]

    def sample_batch(self, n: int) -> np.ndarray:
        """Draw ``n`` delays as a float64 array.

        Contract: bit-identical to ``[self.sample() for _ in range(n)]``,
        consuming the underlying generator identically. numpy ``Generator``
        draws for uniform/exponential/choice are sequential, so subclasses
        can vectorize; this fallback loops ``sample()`` and is always
        correct for third-party subclasses.
        """
        if n <= 0:
            return np.empty(0, dtype=np.float64)
        return np.array([self.sample() for _ in range(n)], dtype=np.float64)

    @property
    @abc.abstractmethod
    def bound(self) -> float:
        """Upper bound on delays this model can produce (ms)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected delay (ms)."""

    def reseed(self, seed: int) -> None:
        """Reset the random stream (used to make experiment repetitions vary)."""
        self._rng = np.random.default_rng(seed)
        self._draw_buf = []
        self._draw_pos = 0
        self._refill_state = None

    def checkpoint_rng_state(self) -> dict:
        """Bit-generator state at the model's *logical* draw position.

        With no pending prefetched draws this is simply the live state.
        While :meth:`sample_amortized` draws are pending, the live
        generator has run a whole block ahead of the values consumed so
        far; replaying only the consumed prefix from the pre-refill
        state yields the state a plain-``sample()`` twin would hold at
        this exact point — so checkpoint bytes are independent of
        whether draws were amortized, and a restore resumes the same
        value stream. The live generator and buffer are untouched.
        """
        if self._draw_pos >= len(self._draw_buf):
            return self._rng.bit_generator.state
        live = self._rng
        replay = np.random.default_rng()  # klink: allow[KL002] state overwritten next line
        replay.bit_generator.state = self._refill_state
        self._rng = replay
        try:
            self.sample_batch(self._draw_pos)
        finally:
            self._rng = live
        return replay.bit_generator.state

    def restore_rng_state(self, state: dict) -> None:
        """Install a checkpointed logical state; discards any prefetch."""
        self._rng.bit_generator.state = state
        self._draw_buf = []
        self._draw_pos = 0
        self._refill_state = None

    def describe(self) -> dict:
        """Analytic summary of the model, for observability records.

        The SWM-forecast audit annotates each source's calibration row
        with the delay model it faced, so a reader can judge prediction
        error against the delay spread that produced it.
        """
        return {
            "model": type(self).__name__,
            "mean_ms": float(self.mean),
            "bound_ms": float(self.bound),
        }


class ConstantDelay(DelayModel):
    """Every event is delayed by exactly ``delay_ms``. Useful in tests."""

    def __init__(self, delay_ms: float):
        super().__init__(seed=0)
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        self._delay = float(delay_ms)

    def sample(self) -> float:
        return self._delay

    def sample_batch(self, n: int) -> np.ndarray:
        if n <= 0:
            return np.empty(0, dtype=np.float64)
        return np.full(n, self._delay, dtype=np.float64)

    @property
    def bound(self) -> float:
        return self._delay

    @property
    def mean(self) -> float:
        return self._delay


class UniformDelay(DelayModel):
    """Delays uniform over ``[low_ms, high_ms]`` (the paper's Uniform case)."""

    def __init__(self, low_ms: float = 0.0, high_ms: float = 500.0, *, seed: int | None = None):
        super().__init__(seed=seed)
        if not 0 <= low_ms <= high_ms:
            raise ValueError(f"invalid uniform range [{low_ms}, {high_ms}]")
        self._low = float(low_ms)
        self._high = float(high_ms)

    def sample(self) -> float:
        return float(self._rng.uniform(self._low, self._high))

    def sample_batch(self, n: int) -> np.ndarray:
        if n <= 0:
            return np.empty(0, dtype=np.float64)
        return self._rng.uniform(self._low, self._high, size=n)

    @property
    def bound(self) -> float:
        return self._high

    @property
    def mean(self) -> float:
        return (self._low + self._high) / 2.0


class ZipfDelay(DelayModel):
    """Zipf-distributed delays with exponent ``a`` (paper uses 0.99).

    Delay ranks ``1..n_ranks`` are drawn with probability proportional to
    ``rank**-a`` and mapped onto ``[0, max_ms]`` by a power curve
    (``shape`` > 1 compresses the bulk towards small delays and stretches
    the rare high ranks towards the bound). Rank 1 — the most probable —
    maps to the smallest delay, giving the heavy right tail that "injects
    higher unpredictability into network delay" and stresses the SWM
    ingestion estimator in Fig. 9c.
    """

    def __init__(
        self,
        a: float = 0.99,
        max_ms: float = 500.0,
        n_ranks: int = 100,
        shape: float = 2.0,
        *,
        seed: int | None = None,
    ):
        super().__init__(seed=seed)
        if a <= 0:
            raise ValueError(f"zipf exponent must be positive: {a}")
        if n_ranks < 2:
            raise ValueError(f"need at least 2 ranks: {n_ranks}")
        if shape <= 0:
            raise ValueError(f"shape must be positive: {shape}")
        self._max = float(max_ms)
        self._n_ranks = n_ranks
        ranks = np.arange(1, n_ranks + 1, dtype=float)
        weights = ranks ** (-a)
        self._probs = weights / weights.sum()
        self._delays = ((ranks - 1) / (n_ranks - 1)) ** shape * self._max

    def sample(self) -> float:
        idx = self._rng.choice(self._n_ranks, p=self._probs)
        return float(self._delays[idx])

    def sample_batch(self, n: int) -> np.ndarray:
        if n <= 0:
            return np.empty(0, dtype=np.float64)
        idx = self._rng.choice(self._n_ranks, size=n, p=self._probs)
        return self._delays[idx]

    @property
    def bound(self) -> float:
        return self._max

    @property
    def mean(self) -> float:
        return float(np.dot(self._probs, self._delays))


class ExponentialDelay(DelayModel):
    """Exponential delays truncated at ``cap_ms`` (extra model for ablations)."""

    def __init__(self, mean_ms: float = 100.0, cap_ms: float | None = None, *, seed: int | None = None):
        super().__init__(seed=seed)
        if mean_ms <= 0:
            raise ValueError(f"mean must be positive: {mean_ms}")
        self._mean = float(mean_ms)
        self._cap = float(cap_ms) if cap_ms is not None else 10.0 * mean_ms

    def sample(self) -> float:
        return min(float(self._rng.exponential(self._mean)), self._cap)

    def sample_batch(self, n: int) -> np.ndarray:
        if n <= 0:
            return np.empty(0, dtype=np.float64)
        return np.minimum(self._rng.exponential(self._mean, size=n), self._cap)

    @property
    def bound(self) -> float:
        return self._cap

    @property
    def mean(self) -> float:
        # Analytic mean of min(X, cap) for exponential X: m * (1 - e^{-cap/m}).
        import math

        return self._mean * (1.0 - math.exp(-self._cap / self._mean))
