"""repro.obs — observability: audit trail, profiling, exporters, reports.

The subsystem that lets a run *prove* its claims:

* :mod:`repro.obs.audit` — per-cycle scheduler-decision audit log with
  machine-readable reasons, via the :class:`DecisionExplainer` protocol
  every policy in :mod:`repro.core` implements;
* :mod:`repro.obs.profile` — per-operator and per-chain profiling
  (simulated CPU-ms, events in/out, queue/state high-water marks);
* :mod:`repro.obs.export` — bounded-memory streaming JSONL/CSV writers
  and the run-trace container format;
* :mod:`repro.obs.report` — ``repro-bench report``'s builder/renderer;
* :mod:`repro.obs.schema` — documented schemas + validators (CI-checked);
* :mod:`repro.obs.timeseries` — in-run telemetry: Counter/Gauge/Histogram
  registry sampled on the virtual clock into bounded ring-buffer series;
* :mod:`repro.obs.alerts` — declarative SLO/alert rules evaluated over
  the telemetry series during the run;
* :mod:`repro.obs.flame` — Chrome trace-event (Perfetto) flame-chart
  export of cycles, operator spans, alerts, counter tracks, and lineage
  waterfalls;
* :mod:`repro.obs.lineage` — deterministic sampled per-record causal
  tracing (latency-waterfall attribution) and the SWM-forecast
  accuracy audit;
* :mod:`repro.obs.compare` — ``repro-bench compare``: ``BENCH_*.json``
  telemetry snapshots and threshold-gated cross-run regression diffs.

Usage::

    from repro.obs import AuditLog, OperatorProfiler

    audit = AuditLog(max_rows=10_000)
    profiler = OperatorProfiler()
    engine = Engine(queries, KlinkScheduler(), audit=audit, profiler=profiler)
    metrics = engine.run(60_000.0)
    audit.to_jsonl("decisions.jsonl")
    for profile in metrics.operator_profiles:
        print(profile.name, profile.cpu_ms)
"""

from repro.obs.audit import (
    AuditLog,
    DecisionExplainer,
    DecisionRecord,
    KNOWN_REASONS,
    QueryDecision,
    explain_with_fallback,
)
from repro.obs.export import (
    CsvWriter,
    JsonlWriter,
    SCHEMA_VERSION,
    Trace,
    TraceWriter,
    dumps_line,
    jsonify,
    read_trace,
)
from repro.obs.profile import ChainProfile, OperatorProfile, OperatorProfiler
from repro.obs.report import (
    Episode,
    RunReport,
    build_report,
    render_text,
    render_waterfall,
)
from repro.obs.schema import (
    REPORT_SCHEMA,
    SchemaError,
    validate_alert,
    validate_cycle,
    validate_lineage,
    validate_lineage_summary,
    validate_operator,
    validate_report,
    validate_series,
    validate_swm_forecast,
)
from repro.obs.alerts import (
    AlertEngine,
    AlertEvent,
    AlertRule,
    AlertRuleError,
    DEFAULT_RULE_TEXTS,
    parse_rule,
    parse_rules,
)
from repro.obs.compare import (
    CompareThresholds,
    ComparisonResult,
    check_snapshot,
    compare_snapshots,
    load_snapshot,
    render_comparison,
    snapshot_from_trace,
    write_snapshot,
)
from repro.obs.flame import (
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.lineage import (
    LineageTracker,
    RECORD_STATUSES,
    SPAN_KINDS,
    SwmForecastAudit,
    waterfall,
)
from repro.obs.timeseries import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    TelemetryConfig,
    TelemetrySampler,
)

__all__ = [
    "AuditLog",
    "DecisionExplainer",
    "DecisionRecord",
    "QueryDecision",
    "KNOWN_REASONS",
    "explain_with_fallback",
    "OperatorProfile",
    "ChainProfile",
    "OperatorProfiler",
    "JsonlWriter",
    "CsvWriter",
    "TraceWriter",
    "Trace",
    "read_trace",
    "dumps_line",
    "jsonify",
    "SCHEMA_VERSION",
    "RunReport",
    "Episode",
    "build_report",
    "render_text",
    "render_waterfall",
    "SchemaError",
    "REPORT_SCHEMA",
    "validate_report",
    "validate_cycle",
    "validate_operator",
    "validate_series",
    "validate_alert",
    "validate_lineage",
    "validate_swm_forecast",
    "validate_lineage_summary",
    "LineageTracker",
    "SwmForecastAudit",
    "waterfall",
    "SPAN_KINDS",
    "RECORD_STATUSES",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "TelemetryConfig",
    "TelemetrySampler",
    "AlertRule",
    "AlertRuleError",
    "AlertEvent",
    "AlertEngine",
    "DEFAULT_RULE_TEXTS",
    "parse_rule",
    "parse_rules",
    "chrome_trace_events",
    "validate_chrome_trace",
    "write_chrome_trace",
    "CompareThresholds",
    "ComparisonResult",
    "check_snapshot",
    "compare_snapshots",
    "snapshot_from_trace",
    "load_snapshot",
    "write_snapshot",
    "render_comparison",
]
