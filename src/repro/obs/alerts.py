"""Declarative SLO / alert rules evaluated over in-run telemetry.

Rules are small text expressions over the series a
:class:`~repro.obs.timeseries.MetricsRegistry` records, evaluated on the
**virtual clock** at every telemetry sample. Three rule shapes:

``threshold``
    ``<metric>[{label=value,...}] <op> <value> [for <duration>]`` —
    breach must hold continuously for ``duration`` of virtual time
    before the alert fires (``for 0s`` / omitted fires immediately).
    Example: ``latency_recent_p99_ms > 1000 for 5s``.

``growing``
    ``<metric>[{...}] growing for <N> samples`` — the last ``N``
    consecutive sampled values are strictly increasing. Example:
    ``queue_depth{query=ysb-0} growing for 10 samples``.

``mean``
    ``mean(<metric>[{...}]) <op> <value> over <duration>`` — the mean of
    the samples inside the trailing window breaches the bound; the
    paper-motivated occupancy rule is
    ``mean(memory_mode_active) > 0.2 over 10s``.

A rule without labels matches *every* series of that metric name (one
alert stream per series); labels restrict the match to series carrying
all the given pairs. Durations accept ``ms``, ``s`` and ``m`` suffixes.

Fired alerts become :class:`AlertEvent` spans — opened when the
condition is met, closed when it clears (or at end of run) — serialized
as ``type=alert`` trace rows and summarized into
:class:`~repro.spe.metrics.RunMetrics` (``alerts_fired`` /
``alert_counts``). Evaluation is pure virtual-clock arithmetic over
ring-buffer series, so alert streams are as deterministic as the
simulation: seeded reruns yield byte-identical alert rows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.timeseries import MetricsRegistry, Series

Labels = Tuple[Tuple[str, str], ...]

_COMPARATORS = (">=", "<=", ">", "<")

_METRIC_RE = r"(?P<metric>[A-Za-z_][\w.]*)(?:\{(?P<labels>[^}]*)\})?"
_VALUE_RE = r"(?P<value>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)"
_DURATION_RE = r"(?P<amount>\d+(?:\.\d+)?)\s*(?P<unit>ms|s|m)"

_THRESHOLD_RE = re.compile(
    rf"^{_METRIC_RE}\s*(?P<op>>=|<=|>|<)\s*{_VALUE_RE}"
    rf"(?:\s+for\s+{_DURATION_RE})?$"
)
_GROWING_RE = re.compile(
    rf"^{_METRIC_RE}\s+growing\s+for\s+(?P<samples>\d+)\s+samples?$"
)
_MEAN_RE = re.compile(
    rf"^mean\(\s*{_METRIC_RE}\s*\)\s*(?P<op>>=|<=|>|<)\s*{_VALUE_RE}"
    rf"\s+over\s+{_DURATION_RE}$"
)

_UNIT_MS = {"ms": 1.0, "s": 1000.0, "m": 60_000.0}


class AlertRuleError(ValueError):
    """Raised for rule text that does not parse."""


def _parse_labels(body: Optional[str]) -> Labels:
    if not body or not body.strip():
        return ()
    pairs: List[Tuple[str, str]] = []
    for chunk in body.split(","):
        if "=" not in chunk:
            raise AlertRuleError(f"bad label pair (want k=v): {chunk!r}")
        key, value = chunk.split("=", 1)
        key, value = key.strip(), value.strip()
        if not key or not value:
            raise AlertRuleError(f"bad label pair (want k=v): {chunk!r}")
        pairs.append((key, value))
    return tuple(sorted(pairs))


def _parse_duration(amount: Optional[str], unit: Optional[str]) -> float:
    if amount is None or unit is None:
        return 0.0
    return float(amount) * _UNIT_MS[unit]


@dataclass(frozen=True)
class AlertRule:
    """One parsed rule; see the module docstring for the grammar."""

    name: str
    metric: str
    kind: str  # "threshold" | "growing" | "mean"
    labels: Labels = ()
    op: str = ">"
    threshold: float = 0.0
    for_ms: float = 0.0   # sustain duration (threshold) / window (mean)
    samples: int = 0      # consecutive rising samples (growing)

    def __post_init__(self) -> None:
        if self.kind not in ("threshold", "growing", "mean"):
            raise AlertRuleError(f"unknown rule kind: {self.kind!r}")
        if self.kind != "growing" and self.op not in _COMPARATORS:
            raise AlertRuleError(f"unknown comparator: {self.op!r}")
        if self.kind == "growing" and self.samples < 2:
            raise AlertRuleError(
                f"growing rules need >= 2 samples: {self.samples}"
            )
        if self.kind == "mean" and self.for_ms <= 0:
            raise AlertRuleError("mean rules need a positive 'over' window")
        if self.for_ms < 0:
            raise AlertRuleError(f"duration must be >= 0: {self.for_ms}")

    def compare(self, value: float) -> bool:
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        if self.op == "<":
            return value < self.threshold
        return value <= self.threshold

    def describe(self) -> str:
        """Canonical text form (used as the default rule name)."""
        label_body = (
            "{" + ",".join(f"{k}={v}" for k, v in self.labels) + "}"
            if self.labels
            else ""
        )
        metric = f"{self.metric}{label_body}"
        if self.kind == "growing":
            return f"{metric} growing for {self.samples} samples"
        if self.kind == "mean":
            return f"mean({metric}) {self.op} {self.threshold:g} over {self.for_ms:g}ms"
        body = f"{metric} {self.op} {self.threshold:g}"
        if self.for_ms > 0:
            body += f" for {self.for_ms:g}ms"
        return body


def parse_rule(text: str, name: Optional[str] = None) -> AlertRule:
    """Parse one rule; ``"name: expr"`` sets an explicit rule name."""
    body = text.strip()
    if name is None and ":" in body:
        head, _, tail = body.partition(":")
        if re.fullmatch(r"[A-Za-z_][\w.-]*", head.strip()):
            name, body = head.strip(), tail.strip()
    match = _GROWING_RE.match(body)
    if match:
        rule = AlertRule(
            name=name or "",
            metric=match.group("metric"),
            kind="growing",
            labels=_parse_labels(match.group("labels")),
            samples=int(match.group("samples")),
        )
        return rule if rule.name else _named(rule)
    match = _MEAN_RE.match(body)
    if match:
        rule = AlertRule(
            name=name or "",
            metric=match.group("metric"),
            kind="mean",
            labels=_parse_labels(match.group("labels")),
            op=match.group("op"),
            threshold=float(match.group("value")),
            for_ms=_parse_duration(match.group("amount"), match.group("unit")),
        )
        return rule if rule.name else _named(rule)
    match = _THRESHOLD_RE.match(body)
    if match:
        rule = AlertRule(
            name=name or "",
            metric=match.group("metric"),
            kind="threshold",
            labels=_parse_labels(match.group("labels")),
            op=match.group("op"),
            threshold=float(match.group("value")),
            for_ms=_parse_duration(match.group("amount"), match.group("unit")),
        )
        return rule if rule.name else _named(rule)
    raise AlertRuleError(f"unparseable alert rule: {text!r}")


def _named(rule: AlertRule) -> AlertRule:
    return replace(rule, name=rule.describe())


def parse_rules(texts: Sequence[str]) -> List[AlertRule]:
    """Parse many rules, rejecting duplicate names."""
    rules: List[AlertRule] = []
    seen: Dict[str, str] = {}
    for text in texts:
        rule = parse_rule(text)
        if rule.name in seen:
            raise AlertRuleError(
                f"duplicate rule name {rule.name!r} "
                f"(from {seen[rule.name]!r} and {text!r})"
            )
        seen[rule.name] = text
        rules.append(rule)
    return rules


#: rules the bench runner attaches when none are given explicitly —
#: the three motivating examples from the issue, phrased over the
#: sampler's standard signal set.
DEFAULT_RULE_TEXTS: Tuple[str, ...] = (
    "slo-latency: latency_recent_p99_ms > 1000 for 5s",
    "queue-growth: queue_depth growing for 10 samples",
    "mm-occupancy: mean(memory_mode_active) > 0.2 over 10s",
)


@dataclass
class AlertEvent:
    """One fired alert: a [start, end] span on a single series."""

    rule: str
    series: str
    kind: str
    start: float
    end: Optional[float] = None
    value: float = 0.0  # worst value observed while active

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "series": self.series,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "value": self.value,
        }


@dataclass
class _PendingState:
    """Per (rule, series) breach bookkeeping between samples."""

    since: float
    worst: float


class AlertEngine:
    """Evaluates a fixed rule set against a registry at sample instants."""

    def __init__(self, rules: Sequence[AlertRule] = ()) -> None:
        self.rules: List[AlertRule] = list(rules)
        self.events: List[AlertEvent] = []
        self._pending: Dict[Tuple[str, str], _PendingState] = {}
        self._active: Dict[Tuple[str, str], AlertEvent] = {}

    def __len__(self) -> int:
        return len(self.events)

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, now: float, registry: "MetricsRegistry") -> None:
        """Evaluate every rule at virtual time ``now`` (one sample tick)."""
        for rule in self.rules:
            for series in registry.matching(rule.metric, rule.labels):
                self._evaluate_one(rule, series, now)

    def _evaluate_one(self, rule: AlertRule, series: "Series", now: float) -> None:
        breach, value = self._breach(rule, series, now)
        key = (rule.name, series.key)
        active = self._active.get(key)
        if not breach:
            self._pending.pop(key, None)
            if active is not None:
                active.end = now
                del self._active[key]
            return
        pending = self._pending.get(key)
        if pending is None:
            pending = _PendingState(since=now, worst=value)
            self._pending[key] = pending
        elif _worse(rule, value, pending.worst):
            pending.worst = value
        if active is not None:
            if _worse(rule, value, active.value):
                active.value = value
            return
        sustain = rule.for_ms if rule.kind == "threshold" else 0.0
        if now - pending.since + 1e-9 >= sustain:
            event = AlertEvent(
                rule=rule.name,
                series=series.key,
                kind=rule.kind,
                start=pending.since,
                value=pending.worst,
            )
            self._active[key] = event
            self.events.append(event)

    @staticmethod
    def _breach(
        rule: AlertRule, series: "Series", now: float
    ) -> Tuple[bool, float]:
        """(condition holds at ``now``, observed value) for one series."""
        if rule.kind == "growing":
            points = list(series.points)[-(rule.samples + 1):]
            if len(points) < rule.samples + 1:
                return False, 0.0
            values = [v for _, v in points]
            rising = all(b > a for a, b in zip(values, values[1:]))
            return rising, values[-1]
        if rule.kind == "mean":
            window = series.window(now - rule.for_ms)
            if not window:
                return False, 0.0
            mean = sum(window) / len(window)
            return rule.compare(mean), mean
        latest = series.latest()
        if latest is None:
            return False, 0.0
        return rule.compare(latest[1]), latest[1]

    # -- finalization / serialization ----------------------------------------

    def finalize(self, end_time: float) -> None:
        """Close alerts still active at end of run."""
        for event in self._active.values():
            event.end = end_time
        self._active.clear()
        self._pending.clear()

    def counts(self) -> Dict[str, int]:
        """``{rule name: events fired}``, sorted by rule name."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.rule] = out.get(event.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_rows(self) -> List[Dict[str, Any]]:
        """``type=alert`` trace rows, sorted (start, rule, series)."""
        ordered = sorted(
            self.events, key=lambda e: (e.start, e.rule, e.series)
        )
        return [e.to_dict() for e in ordered]


def _worse(rule: AlertRule, candidate: float, incumbent: float) -> bool:
    """Is ``candidate`` a worse (more-alerting) value than ``incumbent``?"""
    if rule.kind == "growing" or rule.op in (">", ">="):
        return candidate > incumbent
    return candidate < incumbent
