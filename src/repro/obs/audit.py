"""Scheduler-decision audit trail.

The paper's whole argument is that scheduling *decisions* driven by SWM
delay estimates beat arrival-order and round-robin policies; the audit
log is what lets a run substantiate that claim. Each scheduling cycle it
records, per query, the policy's ranking together with a
machine-readable *reason* (least-slack order, memory-mode release,
overdue SWM, ...) and the runtime inputs the decision was based on: the
slack estimate, the estimated SWM delay mean/std, memory bytes, and
queued events.

The engine calls :meth:`AuditLog.on_cycle` once per cycle (per node in
the distributed engine); the log asks the active policy to *explain*
its plan through the :class:`DecisionExplainer` protocol — every policy
in :mod:`repro.core` implements ``explain_plan`` — and stores one
:class:`DecisionRecord`. Memory is bounded: records live in a
``deque(maxlen=max_rows)`` (the ``CycleTracer`` approach), and an
optional ``stream`` (any object with a ``write(dict)`` method, e.g. a
:class:`~repro.obs.export.TraceWriter`) receives every record as it is
produced for unbounded-duration runs.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.obs.export import JsonlWriter, dumps_line

#: machine-readable decision reasons emitted by the shipped policies
KNOWN_REASONS = (
    "slack-order",        # Klink: least-expected-slack priority order
    "overdue-swm",        # Klink: ingested-but-unprocessed SWM, EDF order
    "no-deadline",        # Klink: no downstream window deadline to protect
    "memory-release",     # Klink MM: prefix run releasing in-flight memory
    "memory-mode-full",   # Klink MM: no worthwhile prefix, full pipeline
    "processor-share",    # Default: fair share, no prioritization
    "priority-order",     # generic priority plan (base fallback)
    "fcfs-oldest-arrival",
    "rr-rotation",
    "hr-productivity",
    "sbox-deadline",
)


@dataclass(frozen=True)
class QueryDecision:
    """One query's position in a cycle's plan, and why.

    ``score`` carries the policy-specific ranking key (arrival time for
    FCFS, productivity for HR, deadline for SBox, released bytes for
    Klink's memory mode); ``slack_ms`` and the SWM delay moments are
    filled by slack-driven policies.
    """

    query_id: str
    rank: int
    reason: str
    slack_ms: Optional[float] = None
    swm_delay_mean_ms: Optional[float] = None
    swm_delay_std_ms: Optional[float] = None
    score: Optional[float] = None
    memory_bytes: float = 0.0
    queued_events: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Fixed-key-order dict (stable JSONL serialization)."""
        return {
            "query_id": self.query_id,
            "rank": self.rank,
            "reason": self.reason,
            "slack_ms": self.slack_ms,
            "swm_delay_mean_ms": self.swm_delay_mean_ms,
            "swm_delay_std_ms": self.swm_delay_std_ms,
            "score": self.score,
            "memory_bytes": self.memory_bytes,
            "queued_events": self.queued_events,
        }


@runtime_checkable
class DecisionExplainer(Protocol):
    """Protocol a policy implements to explain its plans.

    ``explain_plan(ctx, plan)`` is called by the audit log immediately
    after ``plan(ctx)`` within the same scheduling cycle, so any
    per-cycle diagnostic state the policy keeps (e.g. Klink's
    ``last_slacks``) is still consistent with the plan.
    """

    def explain_plan(self, ctx: Any, plan: Any) -> List[QueryDecision]:
        ...


@dataclass
class DecisionRecord:
    """One scheduling cycle's decision, with full per-query context."""

    time: float
    cycle: int
    node: int
    policy: str
    mode: str
    backpressured: bool
    throttled: bool
    memory_utilization: float
    cpu_used_ms: float
    overhead_ms: float
    decisions: List[QueryDecision] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "cycle": self.cycle,
            "node": self.node,
            "policy": self.policy,
            "mode": self.mode,
            "backpressured": self.backpressured,
            "throttled": self.throttled,
            "memory_utilization": self.memory_utilization,
            "cpu_used_ms": self.cpu_used_ms,
            "overhead_ms": self.overhead_ms,
            "decisions": [d.to_dict() for d in self.decisions],
        }

    def head(self) -> Optional[QueryDecision]:
        """The top-ranked decision (None for an empty plan)."""
        return self.decisions[0] if self.decisions else None


def explain_with_fallback(scheduler: Any, ctx: Any, plan: Any) -> List[QueryDecision]:
    """Ask the policy to explain its plan; fall back to plan order.

    Third-party policies that predate the protocol still get a usable
    audit trail: rank from allocation order, reason from the plan mode.
    """
    if isinstance(scheduler, DecisionExplainer):
        return scheduler.explain_plan(ctx, plan)
    reason = "processor-share" if plan.mode == "share" else "priority-order"
    return [
        QueryDecision(
            query_id=alloc.query.query_id,
            rank=rank,
            reason=reason,
            memory_bytes=alloc.query.memory_bytes,
            queued_events=alloc.query.queued_events,
        )
        for rank, alloc in enumerate(plan.allocations)
    ]


class AuditLog:
    """Bounded in-memory log of scheduler decisions, optionally streamed.

    Attach to an engine via ``Engine(..., audit=AuditLog())``. Two runs
    of the same seeded configuration produce byte-identical JSONL
    exports (the simulation is deterministic and serialization is
    insertion-ordered with fixed float formatting).
    """

    def __init__(self, max_rows: int = 50_000, stream: Any = None) -> None:
        if max_rows < 1:
            raise ValueError(f"need at least one row: {max_rows}")
        self.max_rows = max_rows
        self.stream = stream
        self.records_seen = 0
        self._rows: Deque[DecisionRecord] = deque(maxlen=max_rows)

    # -- engine-facing hook --------------------------------------------------

    def on_cycle(
        self,
        *,
        time: float,
        cycle: int,
        scheduler: Any,
        ctx: Any,
        plan: Any,
        backpressured: bool,
        cpu_used_ms: float,
        overhead_ms: float,
        node: int = 0,
        decisions: Optional[List[QueryDecision]] = None,
    ) -> DecisionRecord:
        """Record one cycle. ``decisions`` lets the engine pass
        explanations captured at *plan* time (before execution drained
        the queues the policy ranked on); when omitted, the policy is
        asked to explain the plan now."""
        if decisions is None:
            decisions = explain_with_fallback(scheduler, ctx, plan)
        record = DecisionRecord(
            time=time,
            cycle=cycle,
            node=node,
            policy=str(getattr(scheduler, "name", type(scheduler).__name__)),
            mode=str(plan.mode),
            backpressured=bool(backpressured),
            throttled=bool(plan.throttle_ingestion),
            memory_utilization=float(ctx.memory_utilization),
            cpu_used_ms=float(cpu_used_ms),
            overhead_ms=float(overhead_ms),
            decisions=decisions,
        )
        self._rows.append(record)
        self.records_seen += 1
        if self.stream is not None:
            self.stream.write(record.to_dict())
        return record

    # -- consumption ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> Sequence[DecisionRecord]:
        return tuple(self._rows)

    def last(self) -> Optional[DecisionRecord]:
        return self._rows[-1] if self._rows else None

    def reason_counts(self, head_only: bool = False) -> Dict[str, int]:
        """Occurrences of each decision reason across retained records."""
        counts: Counter[str] = Counter()
        for record in self._rows:
            decisions: Sequence[QueryDecision] = record.decisions
            if head_only:
                h = record.head()
                decisions = [h] if h is not None else []
            counts.update(d.reason for d in decisions)
        return dict(sorted(counts.items()))

    def head_query_counts(self) -> Dict[str, int]:
        """How often each query was ranked first (who the policy favours)."""
        counts: Counter[str] = Counter()
        for record in self._rows:
            h = record.head()
            if h is not None:
                counts[h.query_id] += 1
        return dict(sorted(counts.items()))

    def mode_episodes(self) -> List[Tuple[float, float, str]]:
        """(start, end, kind) spans for throttle/backpressure conditions.

        ``kind`` is ``"backpressure"`` or ``"throttle"``; overlapping
        conditions produce separate spans per kind.
        """
        episodes: List[Tuple[float, float, str]] = []
        for kind in ("backpressure", "throttle"):
            start: Optional[float] = None
            prev_time: Optional[float] = None
            for record in self._rows:
                active = (
                    record.backpressured
                    if kind == "backpressure"
                    else record.throttled
                )
                if active and start is None:
                    start = record.time
                elif not active and start is not None:
                    assert prev_time is not None
                    episodes.append((start, prev_time, kind))
                    start = None
                prev_time = record.time
            if start is not None and prev_time is not None:
                episodes.append((start, prev_time, kind))
        episodes.sort(key=lambda e: (e[0], e[2]))
        return episodes

    def to_jsonl(self, path: str) -> None:
        """Export retained records as deterministic JSONL."""
        with JsonlWriter(path) as writer:
            for record in self._rows:
                writer.write(record.to_dict())

    def to_jsonl_str(self) -> str:
        """Retained records as one JSONL string (determinism tests)."""
        return "".join(
            dumps_line(record.to_dict()) + "\n" for record in self._rows
        )
