"""Cross-run regression comparison over telemetry snapshots.

A *telemetry snapshot* (``BENCH_<workload>.json``) is the compact,
diff-able summary of one benchmarked run: latency percentiles,
throughput, deadline misses, watermark lag, alert counts, and the
hottest operators. ``repro-bench compare`` emits snapshots from traces
and diffs two of them (either may be given as a raw ``.jsonl`` trace or
an already-emitted snapshot) against configurable thresholds, exiting
nonzero on regression — the CI gate every future performance PR is
judged with.

Comparison semantics: *higher is worse* for latency, deadline misses,
alerts, and per-operator CPU; *lower is worse* for throughput. A metric
that is absent, ``null``, or NaN (the value an empty input produces,
e.g. the mean latency of a run that completed no windows) on either
side diffs as **missing**: the delta is emitted with ``limit ==
"missing"`` and surfaced in :attr:`ComparisonResult.missing` and the
rendered table, so it can never silently pass as "no change" — but it
also never counts as a regression, because there is no number to
regress against (NaN compares false with everything; treating it as a
value would make the verdict an artifact of comparison order).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.export import Trace, jsonify, read_trace

#: version of the BENCH_*.json snapshot format
SNAPSHOT_VERSION = 1

#: meta keys copied verbatim into the snapshot identity block
_IDENTITY_KEYS = (
    "workload", "scheduler", "n_queries", "seed", "duration_ms", "cores",
    "cycle_ms",
)


def bench_snapshot_name(workload: str) -> str:
    """Conventional snapshot filename for a workload."""
    return f"BENCH_{workload}.json"


def _cdf_value(
    cdf: Sequence[Sequence[Any]], pct: float
) -> Optional[float]:
    for point in cdf:
        if len(point) >= 2 and float(point[0]) == pct:
            value = point[1]
            return None if value is None else float(value)
    return None


def snapshot_from_trace(trace: Trace, *, top_k: int = 5) -> Dict[str, Any]:
    """Build a snapshot dict (fixed key order) from a parsed trace."""
    if top_k < 1:
        raise ValueError(f"top-k must be >= 1: {top_k}")
    summary = trace.summary
    cdf = summary.get("latency_cdf", [])
    alerts_by_rule: Dict[str, int] = {}
    for row in trace.alerts:
        rule = str(row.get("rule", "?"))
        alerts_by_rule[rule] = alerts_by_rule.get(rule, 0) + 1
    hottest = sorted(
        trace.operators,
        key=lambda op: (-float(op.get("cpu_ms", 0.0)), str(op.get("name", ""))),
    )[:top_k]
    snapshot: Dict[str, Any] = {
        "snapshot_version": SNAPSHOT_VERSION,
        "schema_version": trace.meta.get("schema_version", 1),
    }
    for key in _IDENTITY_KEYS:
        if key in trace.meta:
            snapshot[key] = trace.meta[key]
    snapshot.update(
        {
            "latency_ms": {
                "mean": summary.get("mean_latency_ms"),
                "p50": _cdf_value(cdf, 50.0),
                "p90": summary.get("p90_latency_ms", _cdf_value(cdf, 90.0)),
                "p99": summary.get("p99_latency_ms", _cdf_value(cdf, 99.0)),
            },
            "throughput_eps": summary.get("throughput_eps"),
            "deadline_misses": int(summary.get("deadline_misses", 0) or 0),
            "watermark_lag_ms": {
                "mean": summary.get("mean_watermark_lag_ms"),
                "max": summary.get("max_watermark_lag_ms"),
            },
            "alerts": {
                "total": sum(alerts_by_rule.values()),
                "by_rule": dict(sorted(alerts_by_rule.items())),
            },
            "series_count": len(trace.series),
            "hottest_operators": [
                {
                    "name": str(op.get("name", "?")),
                    "cpu_ms": float(op.get("cpu_ms", 0.0)),
                }
                for op in hottest
            ],
        }
    )
    return snapshot


def dumps_snapshot(snapshot: Mapping[str, Any]) -> str:
    """Deterministic pretty serialization (insertion-ordered keys)."""
    return json.dumps(jsonify(dict(snapshot)), indent=2, allow_nan=False) + "\n"


def write_snapshot(path: str, snapshot: Mapping[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_snapshot(snapshot))


def load_snapshot(path: str) -> Dict[str, Any]:
    """Load a snapshot file, rejecting files of the wrong shape."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "snapshot_version" not in payload:
        raise ValueError(f"{path}: not a telemetry snapshot")
    version = payload["snapshot_version"]
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"{path}: unsupported snapshot_version {version!r} "
            f"(supported: {SNAPSHOT_VERSION})"
        )
    return payload


def load_input(path: str) -> Dict[str, Any]:
    """Load either input kind ``compare`` accepts.

    A whole-file JSON object carrying ``snapshot_version`` is a
    snapshot; a JSONL file is parsed as a run trace and summarized on
    the fly.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except json.JSONDecodeError:
        return snapshot_from_trace(read_trace(path))
    if isinstance(payload, dict) and "snapshot_version" in payload:
        return load_snapshot(path)
    raise ValueError(
        f"{path}: neither a telemetry snapshot nor a run trace"
    )


def _finite_or_none(value: Any) -> bool:
    if value is None:
        return True
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    return math.isfinite(float(value))


def _count_ok(value: Any) -> bool:
    return (
        isinstance(value, int) and not isinstance(value, bool) and value >= 0
    )


def check_snapshot(snapshot: Mapping[str, Any]) -> List[str]:
    """Structurally validate a snapshot; returns problems (empty = valid).

    This is the shape contract behind ``repro-bench compare --check``:
    every metric ``compare_snapshots`` reads must be present and of the
    comparable type (numeric values finite or ``null``, counts
    non-negative integers). Extra keys are allowed — emitters may attach
    detail sections (e.g. the perf harness's ``points``).
    """
    problems: List[str] = []
    version = snapshot.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        problems.append(
            f"snapshot_version: expected {SNAPSHOT_VERSION}, got {version!r}"
        )
    latency = snapshot.get("latency_ms")
    if not isinstance(latency, Mapping):
        problems.append("latency_ms: missing or not an object")
    else:
        for pct in ("mean", "p50", "p90", "p99"):
            if pct not in latency:
                problems.append(f"latency_ms.{pct}: missing")
            elif not _finite_or_none(latency[pct]):
                problems.append(
                    f"latency_ms.{pct}: not a finite number or null: "
                    f"{latency[pct]!r}"
                )
    if "throughput_eps" not in snapshot:
        problems.append("throughput_eps: missing")
    elif not _finite_or_none(snapshot["throughput_eps"]):
        problems.append(
            "throughput_eps: not a finite number or null: "
            f"{snapshot['throughput_eps']!r}"
        )
    if not _count_ok(snapshot.get("deadline_misses")):
        problems.append(
            "deadline_misses: not a non-negative integer: "
            f"{snapshot.get('deadline_misses')!r}"
        )
    lag = snapshot.get("watermark_lag_ms")
    if not isinstance(lag, Mapping):
        problems.append("watermark_lag_ms: missing or not an object")
    else:
        for key in ("mean", "max"):
            if not _finite_or_none(lag.get(key)):
                problems.append(
                    f"watermark_lag_ms.{key}: not a finite number or "
                    f"null: {lag.get(key)!r}"
                )
    alerts = snapshot.get("alerts")
    if not isinstance(alerts, Mapping):
        problems.append("alerts: missing or not an object")
    else:
        if not _count_ok(alerts.get("total")):
            problems.append(
                f"alerts.total: not a non-negative integer: "
                f"{alerts.get('total')!r}"
            )
        by_rule = alerts.get("by_rule")
        if not isinstance(by_rule, Mapping):
            problems.append("alerts.by_rule: missing or not an object")
        else:
            for rule, count in by_rule.items():
                if not _count_ok(count):
                    problems.append(
                        f"alerts.by_rule[{rule!r}]: not a non-negative "
                        f"integer: {count!r}"
                    )
    if not _count_ok(snapshot.get("series_count")):
        problems.append(
            "series_count: not a non-negative integer: "
            f"{snapshot.get('series_count')!r}"
        )
    operators = snapshot.get("hottest_operators")
    if not isinstance(operators, Sequence) or isinstance(operators, str):
        problems.append("hottest_operators: missing or not an array")
    else:
        for i, op in enumerate(operators):
            if not isinstance(op, Mapping):
                problems.append(f"hottest_operators[{i}]: not an object")
                continue
            if not isinstance(op.get("name"), str):
                problems.append(
                    f"hottest_operators[{i}].name: not a string: "
                    f"{op.get('name')!r}"
                )
            cpu_ms = op.get("cpu_ms")
            if cpu_ms is None or not _finite_or_none(cpu_ms):
                problems.append(
                    f"hottest_operators[{i}].cpu_ms: not a finite "
                    f"number: {cpu_ms!r}"
                )
    return problems


@dataclass(frozen=True)
class CompareThresholds:
    """Regression tolerances (all relative thresholds in percent)."""

    latency_pct: float = 10.0          # allowed latency increase
    throughput_pct: float = 10.0       # allowed throughput decrease
    operator_cpu_pct: float = 25.0     # allowed per-operator CPU growth
    max_new_alerts: int = 0            # allowed alert-count increase
    max_new_deadline_misses: int = 0   # allowed deadline-miss increase
    abs_floor_ms: float = 1.0          # ignore latency deltas below this

    def __post_init__(self) -> None:
        for name in ("latency_pct", "throughput_pct", "operator_cpu_pct"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0: {value}")
        if self.abs_floor_ms < 0:
            raise ValueError(f"abs_floor_ms must be >= 0: {self.abs_floor_ms}")


@dataclass(frozen=True)
class Delta:
    """One compared metric."""

    metric: str
    baseline: Optional[float]
    current: Optional[float]
    change_pct: Optional[float]
    limit: str
    regressed: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "change_pct": self.change_pct,
            "limit": self.limit,
            "regressed": self.regressed,
        }


@dataclass
class ComparisonResult:
    """All deltas plus the headline verdict."""

    deltas: List[Delta]
    identity_mismatches: List[str]

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def missing(self) -> List[Delta]:
        """Metrics that could not be compared (absent/null/NaN on a side)."""
        return [d for d in self.deltas if d.limit == "missing"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.identity_mismatches

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "identity_mismatches": list(self.identity_mismatches),
            "regressions": [d.to_dict() for d in self.regressions],
            "missing": [d.metric for d in self.missing],
            "deltas": [d.to_dict() for d in self.deltas],
        }


def _as_number(value: Any) -> Optional[float]:
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, (int, float)):
        number = float(value)
        return number if math.isfinite(number) else None
    return None


def _pct_change(baseline: float, current: float) -> Optional[float]:
    if baseline == 0:
        return None if current == 0 else math.inf
    return 100.0 * (current - baseline) / abs(baseline)


def _nested(snapshot: Mapping[str, Any], *keys: str) -> Any:
    node: Any = snapshot
    for key in keys:
        if not isinstance(node, Mapping):
            return None
        node = node.get(key)
    return node


def compare_snapshots(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    thresholds: Optional[CompareThresholds] = None,
) -> ComparisonResult:
    """Diff two snapshots; see module docstring for semantics."""
    t = thresholds or CompareThresholds()
    deltas: List[Delta] = []
    mismatches = [
        f"{key}: {baseline.get(key)!r} != {current.get(key)!r}"
        for key in ("workload", "scheduler", "n_queries")
        if key in baseline
        and key in current
        and baseline.get(key) != current.get(key)
    ]

    def add(
        metric: str,
        base_v: Any,
        cur_v: Any,
        *,
        limit_pct: Optional[float] = None,
        higher_is_worse: bool = True,
        max_increase: Optional[int] = None,
        abs_floor: float = 0.0,
    ) -> None:
        base_n, cur_n = _as_number(base_v), _as_number(cur_v)
        if base_n is None or cur_n is None:
            # Absent, null, or NaN on either side (NaN-vs-NaN included):
            # the cell diffs as "missing" — visible in the report, never
            # a regression and never a silent "no change".
            deltas.append(Delta(metric, base_n, cur_n, None, "missing", False))
            return
        change = _pct_change(base_n, cur_n)
        regressed = False
        limit = ""
        if max_increase is not None:
            limit = f"+{max_increase} absolute"
            regressed = (cur_n - base_n) > max_increase
        elif limit_pct is not None:
            direction = "+" if higher_is_worse else "-"
            limit = f"{direction}{limit_pct:g}%"
            if change is not None and abs(cur_n - base_n) > abs_floor:
                if higher_is_worse:
                    regressed = change > limit_pct
                else:
                    regressed = change < -limit_pct
        deltas.append(Delta(metric, base_n, cur_n, change, limit, regressed))

    for pct in ("mean", "p50", "p90", "p99"):
        add(
            f"latency_ms.{pct}",
            _nested(baseline, "latency_ms", pct),
            _nested(current, "latency_ms", pct),
            limit_pct=t.latency_pct,
            abs_floor=t.abs_floor_ms,
        )
    add(
        "throughput_eps",
        baseline.get("throughput_eps"),
        current.get("throughput_eps"),
        limit_pct=t.throughput_pct,
        higher_is_worse=False,
    )
    add(
        "deadline_misses",
        baseline.get("deadline_misses"),
        current.get("deadline_misses"),
        max_increase=t.max_new_deadline_misses,
    )
    add(
        "alerts.total",
        _nested(baseline, "alerts", "total"),
        _nested(current, "alerts", "total"),
        max_increase=t.max_new_alerts,
    )
    add(
        "watermark_lag_ms.max",
        _nested(baseline, "watermark_lag_ms", "max"),
        _nested(current, "watermark_lag_ms", "max"),
        limit_pct=t.latency_pct,
        abs_floor=t.abs_floor_ms,
    )
    base_ops = {
        str(op.get("name")): float(op.get("cpu_ms", 0.0))
        for op in baseline.get("hottest_operators", ())
    }
    cur_ops = {
        str(op.get("name")): float(op.get("cpu_ms", 0.0))
        for op in current.get("hottest_operators", ())
    }
    for name in sorted(set(base_ops) & set(cur_ops)):
        add(
            f"operator_cpu_ms.{name}",
            base_ops[name],
            cur_ops[name],
            limit_pct=t.operator_cpu_pct,
        )
    return ComparisonResult(deltas=deltas, identity_mismatches=mismatches)


def render_comparison(result: ComparisonResult) -> str:
    """Human-readable diff table."""
    lines: List[str] = []
    verdict = "OK" if result.ok else "REGRESSION"
    if result.ok and result.missing:
        verdict = f"OK ({len(result.missing)} metric(s) missing)"
    lines.append(f"=== compare: {verdict} ===")
    for mismatch in result.identity_mismatches:
        lines.append(f"  !! identity mismatch: {mismatch}")
    header = f"  {'metric':34s} {'baseline':>14s} {'current':>14s} {'change':>9s}  limit"
    lines.append(header)
    for delta in result.deltas:

        def fmt(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:,.2f}"

        change = (
            "-"
            if delta.change_pct is None
            else f"{delta.change_pct:+.1f}%"
            if math.isfinite(delta.change_pct)
            else "new"
        )
        mark = " <-- REGRESSED" if delta.regressed else ""
        if delta.limit == "missing":
            mark = " (missing)"
        lines.append(
            f"  {delta.metric:34s} {fmt(delta.baseline):>14s} "
            f"{fmt(delta.current):>14s} {change:>9s}  {delta.limit}{mark}"
        )
    return "\n".join(lines)
