"""Streaming trace exporters with bounded memory.

The in-memory side of observability (``AuditLog``, ``CycleTracer``)
keeps a bounded ``deque`` of recent rows; these writers are the
unbounded-duration counterpart: rows are serialized to disk as they are
produced, so a multi-hour simulated run can be traced without the trace
ever living in memory.

Two low-level writers (:class:`JsonlWriter`, :class:`CsvWriter`) plus
the *run trace* container format used by ``repro-bench report``:

one JSONL file, one record per line, discriminated by a ``type`` field::

    {"type": "meta", "schema_version": 3, "workload": "ysb", ...}
    {"type": "cycle", "time": 120.0, "decisions": [...], ...}   # repeated
    {"type": "operator", "query_id": "ysb-0", "name": ..., ...} # repeated
    {"type": "chain", "query_id": "ysb-0", ...}                 # repeated
    {"type": "series", "name": "queue_depth", "points": [...]}  # repeated, v2+
    {"type": "alert", "rule": "slo-latency", "start": ..., ...} # repeated, v2+
    {"type": "lineage", "rid": ..., "components": ..., ...}     # repeated, v3+
    {"type": "swm_forecast", "query_id": ..., ...}              # repeated, v3+
    {"type": "lineage_summary", "rows_sampled": ..., ...}       # v3+
    {"type": "summary", "mean_latency_ms": ..., "latency_cdf": [...]}

Schema version 2 added the telemetry ``series`` and ``alert`` sections;
version 3 (this layout) adds the event-lineage sections (``lineage``,
``swm_forecast``, ``lineage_summary``), written only when lineage
tracing is enabled. Version-1 and version-2 traces contain none of the
newer sections and still parse through :func:`read_trace` with those
sections empty.

Serialization is deterministic: dictionaries are written in insertion
order with fixed separators, and non-finite floats are mapped to
``null`` (JSON has no NaN/Infinity), so two runs with the same seed
produce byte-identical traces.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Mapping, Optional, Sequence

#: version of the trace/report container format (bump on breaking change);
#: v2 added the telemetry ``series``/``alert`` record types (PR 4); v3 the
#: lineage ``lineage``/``swm_forecast``/``lineage_summary`` record types
SCHEMA_VERSION = 3


def jsonify(value: Any) -> Any:
    """Recursively convert a value into strictly-JSON-serializable form.

    Non-finite floats become ``None`` (strict JSON has no ``NaN`` or
    ``Infinity``); mappings and sequences are converted recursively with
    key order preserved.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


def dumps_line(row: Mapping[str, Any]) -> str:
    """One deterministic JSONL line (no trailing newline)."""
    return json.dumps(jsonify(dict(row)), separators=(",", ":"), allow_nan=False)


class JsonlWriter:
    """Appends JSON objects to a file, one per line, as they arrive.

    Memory is bounded by the serialization of a single row; ``flush_every``
    trades write syscalls against loss-on-crash.
    """

    def __init__(self, path: str, flush_every: int = 256) -> None:
        if flush_every < 1:
            raise ValueError(f"flush interval must be >= 1: {flush_every}")
        self.path = path
        self.flush_every = flush_every
        self.rows_written = 0
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def write(self, row: Mapping[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"writer already closed: {self.path}")
        self._fh.write(dumps_line(row))
        self._fh.write("\n")
        self.rows_written += 1
        if self.rows_written % self.flush_every == 0:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class CsvWriter:
    """Appends fixed-schema CSV rows to a file as they arrive."""

    def __init__(self, path: str, fields: Sequence[str], flush_every: int = 256) -> None:
        if not fields:
            raise ValueError("CSV writer needs at least one field")
        if flush_every < 1:
            raise ValueError(f"flush interval must be >= 1: {flush_every}")
        self.path = path
        self.fields = list(fields)
        self.flush_every = flush_every
        self.rows_written = 0
        self._fh: Optional[IO[str]] = open(path, "w", newline="", encoding="utf-8")
        self._writer = csv.DictWriter(
            self._fh, fieldnames=self.fields, extrasaction="ignore"
        )
        self._writer.writeheader()

    def write(self, row: Mapping[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"writer already closed: {self.path}")
        self._writer.writerow({k: row.get(k, "") for k in self.fields})
        self.rows_written += 1
        if self.rows_written % self.flush_every == 0:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CsvWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class Trace:
    """A parsed (or in-memory) run trace: the input of report building."""

    meta: Dict[str, Any] = field(default_factory=dict)
    cycles: List[Dict[str, Any]] = field(default_factory=list)
    operators: List[Dict[str, Any]] = field(default_factory=list)
    chains: List[Dict[str, Any]] = field(default_factory=list)
    #: telemetry sections (schema v2+; empty for v1 traces)
    series: List[Dict[str, Any]] = field(default_factory=list)
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    #: event-lineage sections (schema v3+; empty unless tracing was on)
    lineage: List[Dict[str, Any]] = field(default_factory=list)
    swm_forecast: List[Dict[str, Any]] = field(default_factory=list)
    lineage_summary: Dict[str, Any] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def schema_version(self) -> int:
        return int(self.meta.get("schema_version", 1))


class TraceWriter:
    """Streams a run trace to disk while the engine runs.

    Pass an instance as the ``stream`` of an
    :class:`~repro.obs.audit.AuditLog`: every cycle's decision record goes
    straight to disk tagged ``type=cycle``. Call :meth:`finalize` after
    the run with the per-operator profiles and the metrics summary.
    """

    def __init__(self, path: str, meta: Mapping[str, Any]) -> None:
        self._writer = JsonlWriter(path)
        head: Dict[str, Any] = {"type": "meta", "schema_version": SCHEMA_VERSION}
        head.update(meta)
        self._writer.write(head)
        self._finalized = False

    def write(self, row: Mapping[str, Any]) -> None:
        """Stream hook for AuditLog: one scheduling-cycle record."""
        tagged: Dict[str, Any] = {"type": "cycle"}
        tagged.update(row)
        self._writer.write(tagged)

    def finalize(
        self,
        *,
        operators: Sequence[Mapping[str, Any]] = (),
        chains: Sequence[Mapping[str, Any]] = (),
        series: Sequence[Mapping[str, Any]] = (),
        alerts: Sequence[Mapping[str, Any]] = (),
        lineage: Sequence[Mapping[str, Any]] = (),
        swm_forecast: Sequence[Mapping[str, Any]] = (),
        lineage_summary: Optional[Mapping[str, Any]] = None,
        summary: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Append the end-of-run records and close the file.

        The ``lineage_summary`` record's ``trace_bytes`` field is filled
        here with the on-disk bytes of the ``lineage`` and
        ``swm_forecast`` lines just written — the trace-size overhead
        attributable to tracing.
        """
        if self._finalized:
            return
        for row in operators:
            tagged: Dict[str, Any] = {"type": "operator"}
            tagged.update(row)
            self._writer.write(tagged)
        for row in chains:
            tagged = {"type": "chain"}
            tagged.update(row)
            self._writer.write(tagged)
        for row in series:
            tagged = {"type": "series"}
            tagged.update(row)
            self._writer.write(tagged)
        for row in alerts:
            tagged = {"type": "alert"}
            tagged.update(row)
            self._writer.write(tagged)
        lineage_bytes = 0
        for row in lineage:
            tagged = {"type": "lineage"}
            tagged.update(row)
            lineage_bytes += len(dumps_line(tagged).encode("utf-8")) + 1
            self._writer.write(tagged)
        for row in swm_forecast:
            tagged = {"type": "swm_forecast"}
            tagged.update(row)
            lineage_bytes += len(dumps_line(tagged).encode("utf-8")) + 1
            self._writer.write(tagged)
        if lineage_summary is not None:
            tagged = {"type": "lineage_summary"}
            tagged.update(lineage_summary)
            tagged["trace_bytes"] = lineage_bytes
            self._writer.write(tagged)
        if summary is not None:
            tagged = {"type": "summary"}
            tagged.update(summary)
            self._writer.write(tagged)
        self._writer.close()
        self._finalized = True

    def close(self) -> None:
        self.finalize()


def read_trace(path: str) -> Trace:
    """Parse a run-trace JSONL file back into a :class:`Trace`."""
    trace = Trace()
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            kind = row.pop("type", None)
            if kind == "meta":
                trace.meta = row
            elif kind == "cycle":
                trace.cycles.append(row)
            elif kind == "operator":
                trace.operators.append(row)
            elif kind == "chain":
                trace.chains.append(row)
            elif kind == "series":
                trace.series.append(row)
            elif kind == "alert":
                trace.alerts.append(row)
            elif kind == "lineage":
                for key in ("rid", "status", "components", "spans"):
                    if key not in row:
                        raise ValueError(
                            f"{path}:{lineno}: corrupt lineage record: "
                            f"missing field {key!r}"
                        )
                trace.lineage.append(row)
            elif kind == "swm_forecast":
                trace.swm_forecast.append(row)
            elif kind == "lineage_summary":
                trace.lineage_summary = row
            elif kind == "summary":
                trace.summary = row
            else:
                raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    return trace
