"""Chrome trace-event ("flame chart") export of a run trace.

Converts a :class:`~repro.obs.export.Trace` into the Chrome trace-event
JSON object format, loadable in ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev): drop the emitted ``.json`` file onto either
UI to scrub through a run visually.

Mapping of simulation concepts onto trace-event rows:

* **scheduler cycles** (``pid 0``, one ``tid`` per node) — a complete
  ``X`` span per scheduling cycle, named by plan mode, carrying CPU
  use, overhead, memory utilization, backpressure, and the head
  scheduling decision in ``args``;
* **operator execution** (``pid 1``, one ``tid`` per query) — one
  ``X`` span per operator, laid out sequentially within its query so
  the pipeline reads as a flame chart of simulated CPU-ms;
* **alerts** (``pid 0``) — an ``i`` instant event per fired alert at
  its start time;
* **telemetry series** (``pid 2``) — ``C`` counter events per sampled
  point, which Perfetto renders as stairstep tracks.

Virtual-clock milliseconds are scaled to the trace-event microsecond
timebase. The output is deterministic (insertion-ordered keys, fixed
separators, non-finite floats mapped to ``null``) like every other
exporter in :mod:`repro.obs`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.export import Trace, dumps_line, jsonify
from repro.obs.lineage import SPAN_KINDS
from repro.obs.schema import SchemaError

#: trace-event process ids (render as named groups in the UI)
PID_SCHEDULER = 0
PID_OPERATORS = 1
PID_TELEMETRY = 2
PID_LINEAGE = 3

#: event phases used by the exporter
_PHASE_COMPLETE = "X"
_PHASE_INSTANT = "i"
_PHASE_COUNTER = "C"
_PHASE_METADATA = "M"


def _us(ms: float) -> float:
    """Virtual-clock ms -> trace-event µs."""
    return float(ms) * 1000.0


def _metadata(name: str, pid: int, tid: int, label: str) -> Dict[str, Any]:
    return {
        "name": name,
        "ph": _PHASE_METADATA,
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "args": {"name": label},
    }


def _cycle_events(
    cycles: Sequence[Mapping[str, Any]], cycle_ms: float
) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for row in cycles:
        end = float(row.get("time", 0.0))
        duration = cycle_ms if cycle_ms > 0 else float(row.get("cpu_used_ms", 0.0))
        start = max(end - duration, 0.0)
        node = int(row.get("node", 0))
        args: Dict[str, Any] = {
            "cycle": row.get("cycle"),
            "cpu_used_ms": row.get("cpu_used_ms"),
            "overhead_ms": row.get("overhead_ms"),
            "memory_utilization": row.get("memory_utilization"),
            "backpressured": bool(row.get("backpressured")),
        }
        decisions = row.get("decisions") or []
        if decisions:
            head = decisions[0]
            args["head_query"] = head.get("query_id")
            args["head_reason"] = head.get("reason")
        events.append(
            {
                "name": f"cycle:{row.get('mode', 'priority')}",
                "cat": "scheduler",
                "ph": _PHASE_COMPLETE,
                "ts": _us(start),
                "dur": _us(max(end - start, 0.0)),
                "pid": PID_SCHEDULER,
                "tid": node,
                "args": args,
            }
        )
    return events


def _operator_events(
    operators: Sequence[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """One span per operator, stacked sequentially per query.

    The trace records end-of-run CPU totals, not per-cycle spans, so the
    flame chart lays each query's operators out back-to-back: the track
    width *is* the pipeline's total simulated CPU-ms and each span's
    share is the operator's share — the classic flame-chart reading.
    """
    query_ids = sorted(
        {str(op.get("query_id", "?")) for op in operators}
    )
    tids = {qid: idx for idx, qid in enumerate(query_ids)}
    offsets = {qid: 0.0 for qid in query_ids}
    events: List[Dict[str, Any]] = []
    for qid in query_ids:
        events.append(
            _metadata("thread_name", PID_OPERATORS, tids[qid], f"query {qid}")
        )
    for op in operators:
        qid = str(op.get("query_id", "?"))
        cpu_ms = float(op.get("cpu_ms", 0.0))
        events.append(
            {
                "name": str(op.get("name", "?")),
                "cat": "operator",
                "ph": _PHASE_COMPLETE,
                "ts": _us(offsets[qid]),
                "dur": _us(max(cpu_ms, 0.0)),
                "pid": PID_OPERATORS,
                "tid": tids[qid],
                "args": {
                    "events_in": op.get("events_in"),
                    "events_out": op.get("events_out"),
                    "queued_events_hwm": op.get("queued_events_hwm"),
                    "state_bytes_hwm": op.get("state_bytes_hwm"),
                },
            }
        )
        offsets[qid] += max(cpu_ms, 0.0)
    return events


def _alert_events(alerts: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for row in alerts:
        events.append(
            {
                "name": f"alert:{row.get('rule', '?')}",
                "cat": "alert",
                "ph": _PHASE_INSTANT,
                "ts": _us(float(row.get("start", 0.0))),
                "pid": PID_SCHEDULER,
                "tid": 0,
                "s": "p",  # process-scoped instant (draws a full-height line)
                "args": {
                    "series": row.get("series"),
                    "value": row.get("value"),
                    "end": row.get("end"),
                },
            }
        )
    return events


def _series_events(series: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for row in series:
        name = str(row.get("name", "?"))
        labels = row.get("labels") or {}
        if labels:
            body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            name = f"{name}{{{body}}}"
        for point in row.get("points", ()):
            t, value = float(point[0]), point[1]
            events.append(
                {
                    "name": name,
                    "cat": "telemetry",
                    "ph": _PHASE_COUNTER,
                    "ts": _us(t),
                    "pid": PID_TELEMETRY,
                    "tid": 0,
                    "args": {"value": value},
                }
            )
    return events


def _resilience_events(summary: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Recovery spans and checkpoint-restore marks from the summary's
    resilience section (present when a run recovered from, or lost
    events to, node failures)."""
    section = summary.get("resilience")
    if not isinstance(section, Mapping):
        return []
    events: List[Dict[str, Any]] = []
    for row in section.get("events", ()):
        node = int(row.get("node", 0))
        strategy = str(row.get("strategy", "?"))
        failed_at = max(float(row.get("failed_at", 0.0)), 0.0)
        recovered_at = row.get("recovered_at")
        args = {
            "node": node,
            "detected_at": row.get("detected_at"),
            "checkpoint_time": row.get("checkpoint_time"),
            "events_lost": row.get("events_lost"),
        }
        if recovered_at is None:
            # unrecovered failure (strategy "none"): an instant mark
            events.append(
                {
                    "name": f"failure:{strategy}",
                    "cat": "resilience",
                    "ph": _PHASE_INSTANT,
                    "ts": _us(failed_at),
                    "pid": PID_SCHEDULER,
                    "tid": node,
                    "s": "p",
                    "args": args,
                }
            )
            continue
        events.append(
            {
                "name": f"recovery:{strategy}",
                "cat": "resilience",
                "ph": _PHASE_COMPLETE,
                "ts": _us(failed_at),
                "dur": _us(max(float(recovered_at) - failed_at, 0.0)),
                "pid": PID_SCHEDULER,
                "tid": node,
                "args": args,
            }
        )
        checkpoint_time = row.get("checkpoint_time")
        if checkpoint_time is not None:
            events.append(
                {
                    "name": "checkpoint:restore",
                    "cat": "resilience",
                    "ph": _PHASE_INSTANT,
                    "ts": _us(max(float(checkpoint_time), 0.0)),
                    "pid": PID_SCHEDULER,
                    "tid": node,
                    "s": "p",
                    "args": {"node": node, "recovered_at": recovered_at},
                }
            )
    return events


def _lineage_events(
    lineage: Sequence[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Stacked waterfall spans, one track per sampled record.

    Each lineage record gets its own ``tid`` named by its record id; its
    span chain renders as back-to-back ``X`` events on the virtual
    clock, so scrubbing a track reads the record's latency waterfall
    directly (network -> queue -> execute -> window -> emit).
    """
    events: List[Dict[str, Any]] = []
    for tid, row in enumerate(lineage):
        rid = str(row.get("rid", "?"))
        events.append(
            _metadata(
                "thread_name",
                PID_LINEAGE,
                tid,
                f"{rid} [{row.get('status', '?')}]",
            )
        )
        for span in row.get("spans", ()):
            start = max(float(span.get("start", 0.0)), 0.0)
            end = max(float(span.get("end", start)), start)
            events.append(
                {
                    "name": str(span.get("kind", "?")),
                    "cat": "lineage",
                    "ph": _PHASE_COMPLETE,
                    "ts": _us(start),
                    "dur": _us(end - start),
                    "pid": PID_LINEAGE,
                    "tid": tid,
                    "args": {
                        "rid": rid,
                        "op": span.get("op"),
                        "status": row.get("status"),
                        "end_to_end_ms": row.get("end_to_end_ms"),
                    },
                }
            )
    return events


def chrome_trace_events(
    trace: Trace, *, include_series: bool = True
) -> Dict[str, Any]:
    """Build the trace-event JSON object for one run trace.

    ``include_series=False`` drops the per-point counter tracks, which
    dominate file size on long runs.
    """
    cycle_ms = float(trace.meta.get("cycle_ms") or 0.0)
    events: List[Dict[str, Any]] = [
        _metadata("process_name", PID_SCHEDULER, 0, "scheduler cycles"),
        _metadata("process_name", PID_OPERATORS, 0, "operator flame"),
        _metadata("process_name", PID_TELEMETRY, 0, "telemetry series"),
    ]
    if trace.lineage:
        events.append(
            _metadata("process_name", PID_LINEAGE, 0, "lineage waterfalls")
        )
    events += _cycle_events(trace.cycles, cycle_ms)
    events += _operator_events(trace.operators)
    events += _alert_events(trace.alerts)
    events += _resilience_events(trace.summary or {})
    events += _lineage_events(trace.lineage)
    if include_series:
        events += _series_events(trace.series)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {k: trace.meta.get(k) for k in sorted(trace.meta)},
    }


def validate_chrome_trace(payload: Mapping[str, Any]) -> None:
    """Structural check against the trace-event JSON object format.

    Raises :class:`~repro.obs.schema.SchemaError` on the first
    violation; used by ``repro-bench report --chrome`` before writing
    and by the tests as the acceptance gate.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise SchemaError("traceEvents: expected a list")
    for idx, event in enumerate(events):
        where = f"traceEvents[{idx}]"
        if not isinstance(event, dict):
            raise SchemaError(f"{where}: expected an object")
        for key, types in (
            ("name", (str,)),
            ("ph", (str,)),
            ("ts", (int, float)),
            ("pid", (int,)),
            ("tid", (int,)),
        ):
            value = event.get(key)
            if not isinstance(value, types) or isinstance(value, bool):
                raise SchemaError(
                    f"{where}.{key}: expected {'/'.join(t.__name__ for t in types)}, "
                    f"got {value!r}"
                )
        if float(event["ts"]) < 0:
            raise SchemaError(f"{where}.ts: negative timestamp {event['ts']!r}")
        if event["ph"] == _PHASE_COMPLETE:
            duration = event.get("dur")
            if (
                not isinstance(duration, (int, float))
                or isinstance(duration, bool)
                or float(duration) < 0
            ):
                raise SchemaError(
                    f"{where}.dur: X events need a non-negative dur, got {duration!r}"
                )
        if event.get("cat") == "lineage":
            if event["ph"] != _PHASE_COMPLETE:
                raise SchemaError(
                    f"{where}: lineage events must be X spans, got "
                    f"ph={event['ph']!r}"
                )
            if event["pid"] != PID_LINEAGE:
                raise SchemaError(
                    f"{where}: lineage events belong to pid {PID_LINEAGE}, "
                    f"got {event['pid']!r}"
                )
            if event["name"] not in SPAN_KINDS:
                raise SchemaError(
                    f"{where}.name: unknown lineage span kind {event['name']!r}"
                )
            args = event.get("args")
            if not isinstance(args, Mapping) or "rid" not in args:
                raise SchemaError(
                    f"{where}.args: lineage events need a 'rid' argument"
                )


def write_chrome_trace(
    path: str, trace: Trace, *, include_series: bool = True
) -> Dict[str, Any]:
    """Validate, then write the trace-event file; returns the payload."""
    payload = chrome_trace_events(trace, include_series=include_series)
    validate_chrome_trace(payload)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_line(jsonify(payload)))
        fh.write("\n")
    return payload


def trace_from_tracer(
    rows: Sequence[Mapping[str, Any]],
    *,
    cycle_ms: float,
    meta: Optional[Mapping[str, Any]] = None,
) -> Trace:
    """Wrap bare :class:`~repro.spe.tracing.CycleTracer` rows in a Trace
    so lightweight (tracer-only) runs can still export a flame chart."""
    head: Dict[str, Any] = {"cycle_ms": cycle_ms}
    if meta:
        head.update(meta)
    cycles: List[Dict[str, Any]] = []
    for row in rows:
        cycle = dict(row)
        cycle.setdefault("mode", cycle.pop("plan_mode", "priority"))
        cycles.append(cycle)
    return Trace(meta=head, cycles=cycles)
