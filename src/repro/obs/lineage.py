"""Per-record event lineage and SWM-forecast accuracy audit.

Klink's claim is that progress-aware scheduling removes *queueing* delay
ahead of window deadlines. The aggregate metrics (latency CDFs, per-operator
profiles) show that it happens; this module shows *where*: a
:class:`LineageTracker` follows a deterministic sample of records from
source generation to sink delivery, recording a contiguous span chain on
the virtual clock —

``network`` (generation → ingestion) → per-hop ``emit`` (cross-node channel
transfer) and ``queue`` (channel wait) → ``execute`` (operator processing;
zero-width by construction, because execution within a scheduling cycle is
instantaneous on the virtual clock) → ``window`` (residency in pane state
until the pane fires) → … → sink delivery.

Because consecutive spans share their boundary timestamps exactly, the
five waterfall components sum to the record's end-to-end latency *exactly*
whenever the virtual-clock arithmetic is closed (integer-valued cycle,
generation, and window grids — true for every pinned benchmark config).

Sampling is hash-based and seeded (:func:`repro.spe.events.record_identity`
hashed with a keyed blake2b): the same records are traced across reruns
and across ``jobs=N`` worker processes, and no RNG stream is consumed, so
enabling tracing leaves run summaries, scheduler decisions, and checkpoint
fingerprints byte-identical to an untraced run.

The companion :class:`SwmForecastAudit` hooks into every Klink slack
evaluation: each call of the SWM-ingestion estimator logs its predicted
arrival (and a naive last-period baseline) against the deadline it covers;
when the sweeping watermark actually arrives, the logged predictions
resolve into signed errors, aggregated into calibration statistics
(mean/percentile error, over-/under-prediction episodes) for the report.

In-flight lineage state of sampled rows survives checkpoint/restore via
the ``capture_lineage`` / ``restore_lineage`` codec pair in
:mod:`repro.resilience.checkpoint` (statecheck entry ``lineage``).
"""

from __future__ import annotations

from collections import deque
from hashlib import blake2b
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from repro.spe.events import EventBatch, record_identity
from repro.spe.metrics import percentile
from repro.spe.operators import (
    CountWindowedAggregate,
    Operator,
    SinkOperator,
    _WindowedOperatorBase,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.estimator import SwmEstimate
    from repro.spe.engine import Engine
    from repro.spe.query import Query, SourceBinding
    from repro.spe.streams import Channel

#: waterfall component kinds, in decomposition order
SPAN_KINDS: Tuple[str, ...] = ("network", "queue", "execute", "window", "emit")

#: terminal statuses a sampled record can end in
RECORD_STATUSES: Tuple[str, ...] = (
    "delivered",
    "dropped-late",
    "filtered",
    "window-no-output",
    "count-window",
    "no-downstream",
    "in-flight",
)

_TWO_POW_64 = 1 << 64


class _Record:
    """In-flight lineage state of one sampled record."""

    __slots__ = ("rid", "query_id", "source_id", "t_end", "absorbed_at", "spans")

    def __init__(
        self,
        rid: str,
        query_id: str,
        source_id: int,
        t_end: float,
    ) -> None:
        self.rid = rid
        self.query_id = query_id
        self.source_id = source_id
        self.t_end = t_end
        self.absorbed_at = 0.0  # window-absorption time while parked on a pane
        # (kind, operator name or None, start, end) — contiguous chain
        self.spans: List[Tuple[str, Optional[str], float, float]] = []

    def encode(self) -> Dict[str, Any]:
        return {
            "rid": self.rid,
            "query_id": self.query_id,
            "source_id": self.source_id,
            "t_end": self.t_end,
            "absorbed_at": self.absorbed_at,
            "spans": [list(span) for span in self.spans],
        }

    @classmethod
    def decode(cls, state: Dict[str, Any]) -> "_Record":
        rec = cls(
            str(state["rid"]),
            str(state["query_id"]),
            int(state["source_id"]),
            float(state["t_end"]),
        )
        rec.absorbed_at = float(state["absorbed_at"])
        rec.spans = [
            (
                str(kind),
                None if op is None else str(op),
                float(start),
                float(end),
            )
            for kind, op, start, end in state["spans"]
        ]
        return rec


class _OpInfo:
    """Static per-operator wiring the tracker resolves once at attach."""

    __slots__ = ("query_id", "name", "downstream", "is_sink", "assigner", "is_count")

    def __init__(
        self,
        query_id: str,
        name: str,
        downstream: Optional[str],
        is_sink: bool,
        assigner: Any,
        is_count: bool,
    ) -> None:
        self.query_id = query_id
        self.name = name
        self.downstream = downstream
        self.is_sink = is_sink
        self.assigner = assigner  # WindowAssigner for event-time windowed ops
        self.is_count = is_count


class SwmForecastAudit:
    """Predicted-vs-actual next-SWM arrival calibration (per source).

    Klink's scheduler calls :meth:`on_prediction` on every slack
    evaluation (pure logging — the scheduler's arithmetic and decisions
    are untouched); the engine calls :meth:`on_actual` when a sweeping
    watermark is ingested. Each pending deadline then resolves every
    logged evaluation into a signed arrival error
    ``predicted_mean - actual_ingest_time`` (positive = over-prediction:
    the estimator expected the SWM later than it came), plus the same
    error for a naive last-period baseline
    (``last SWM ingestion + watermark period``).
    """

    def __init__(self) -> None:
        self.evaluations = 0
        #: (query_id, source_id) -> static source metadata
        self._sources: Dict[Tuple[str, int], Dict[str, Any]] = {}
        #: (query_id, source_id) -> deadline -> [(predicted_mean, naive)]
        self._pending: Dict[
            Tuple[str, int], Dict[float, List[Tuple[float, Optional[float]]]]
        ] = {}
        #: (query_id, source_id) -> all resolved per-evaluation errors
        self._errors: Dict[Tuple[str, int], List[float]] = {}
        self._naive_errors: Dict[Tuple[str, int], List[float]] = {}
        #: (query_id, source_id) -> [(deadline, last-evaluation error)]
        self._deadline_errors: Dict[Tuple[str, int], List[Tuple[float, float]]] = {}

    # -- wiring --------------------------------------------------------------

    def register_source(
        self,
        query_id: str,
        source_id: int,
        watermark_period_ms: float,
        delay_model: Dict[str, Any],
    ) -> None:
        self._sources[(query_id, source_id)] = {
            "watermark_period_ms": watermark_period_ms,
            "delay_model": delay_model,
        }

    # -- hooks ---------------------------------------------------------------

    def on_prediction(
        self,
        query_id: str,
        source_id: int,
        estimate: "SwmEstimate",
        binding: "SourceBinding",
        now: float,
    ) -> None:
        """Log one slack evaluation's prediction for its deadline."""
        progress = binding.progress
        naive: Optional[float] = None
        if progress is not None and progress.last_swm_ingest_time is not None:
            naive = (
                progress.last_swm_ingest_time + binding.spec.watermark_period_ms
            )
        key = (query_id, source_id)
        self._pending.setdefault(key, {}).setdefault(
            estimate.deadline, []
        ).append((estimate.mean, naive))
        self.evaluations += 1

    def on_actual(
        self, query_id: str, source_id: int, wm_timestamp: float, now: float
    ) -> None:
        """Resolve pending deadlines swept by an ingested SWM at ``now``."""
        key = (query_id, source_id)
        pending = self._pending.get(key)
        if not pending:
            return
        swept = sorted(d for d in pending if d <= wm_timestamp)
        if not swept:
            return
        errors = self._errors.setdefault(key, [])
        naive_errors = self._naive_errors.setdefault(key, [])
        per_deadline = self._deadline_errors.setdefault(key, [])
        for deadline in swept:
            evaluations = pending.pop(deadline)
            last_error = 0.0
            for predicted, naive in evaluations:
                last_error = predicted - now
                errors.append(last_error)
                if naive is not None:
                    naive_errors.append(naive - now)
            per_deadline.append((deadline, last_error))

    # -- output --------------------------------------------------------------

    @staticmethod
    def _episodes(signed: List[float]) -> Tuple[int, int]:
        """(over, under) maximal runs of same-signed consecutive errors."""
        over = under = 0
        current = 0
        for err in signed:
            sign = 1 if err > 0 else (-1 if err < 0 else 0)
            if sign != current:
                if sign > 0:
                    over += 1
                elif sign < 0:
                    under += 1
                current = sign
        return over, under

    def rows(self) -> List[Dict[str, Any]]:
        """One ``swm_forecast`` trace record per audited source."""
        rows: List[Dict[str, Any]] = []
        keys = sorted(set(self._errors) | set(self._pending) | set(self._sources))
        for key in keys:
            errors = self._errors.get(key, [])
            if not errors and not self._pending.get(key):
                continue
            naive = self._naive_errors.get(key, [])
            abs_errors = [abs(e) for e in errors]
            by_deadline = self._deadline_errors.get(key, [])
            over, under = self._episodes([e for _, e in by_deadline])
            meta = self._sources.get(key, {})
            rows.append(
                {
                    "type": "swm_forecast",
                    "query_id": key[0],
                    "source_id": key[1],
                    "evaluations": len(errors),
                    "deadlines_resolved": len(by_deadline),
                    "deadlines_unresolved": len(self._pending.get(key, {})),
                    "mean_error_ms": (
                        sum(errors) / len(errors) if errors else None
                    ),
                    "mean_abs_error_ms": (
                        sum(abs_errors) / len(abs_errors) if abs_errors else None
                    ),
                    "p50_abs_error_ms": (
                        percentile(abs_errors, 50) if abs_errors else None
                    ),
                    "p90_abs_error_ms": (
                        percentile(abs_errors, 90) if abs_errors else None
                    ),
                    "p99_abs_error_ms": (
                        percentile(abs_errors, 99) if abs_errors else None
                    ),
                    "over_predictions": sum(1 for e in errors if e > 0),
                    "under_predictions": sum(1 for e in errors if e < 0),
                    "over_episodes": over,
                    "under_episodes": under,
                    "naive_evaluations": len(naive),
                    "naive_mean_abs_error_ms": (
                        sum(abs(e) for e in naive) / len(naive) if naive else None
                    ),
                    "watermark_period_ms": meta.get("watermark_period_ms"),
                    "delay_model": meta.get("delay_model"),
                }
            )
        return rows

    # -- checkpoint codec support (driven by capture/restore_lineage) ---------

    def encode(self) -> Dict[str, Any]:
        return {
            "evaluations": self.evaluations,
            "pending": [
                [qid, sid, [[d, [list(e) for e in evs]] for d, evs in sorted(by_d.items())]]
                for (qid, sid), by_d in self._pending.items()
            ],
            "errors": [
                [qid, sid, list(errs)] for (qid, sid), errs in self._errors.items()
            ],
            "naive_errors": [
                [qid, sid, list(errs)]
                for (qid, sid), errs in self._naive_errors.items()
            ],
            "deadline_errors": [
                [qid, sid, [list(item) for item in rows]]
                for (qid, sid), rows in self._deadline_errors.items()
            ],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self.evaluations = int(state["evaluations"])
        self._pending = {
            (str(qid), int(sid)): {
                float(d): [(float(m), None if n is None else float(n)) for m, n in evs]
                for d, evs in by_d
            }
            for qid, sid, by_d in state["pending"]
        }
        self._errors = {
            (str(qid), int(sid)): [float(e) for e in errs]
            for qid, sid, errs in state["errors"]
        }
        self._naive_errors = {
            (str(qid), int(sid)): [float(e) for e in errs]
            for qid, sid, errs in state["naive_errors"]
        }
        self._deadline_errors = {
            (str(qid), int(sid)): [(float(d), float(e)) for d, e in rows]
            for qid, sid, rows in state["deadline_errors"]
        }


class LineageTracker:
    """Deterministic sampled per-record causal tracing.

    Wire one tracker per engine via ``Engine(..., lineage=tracker)``; the
    engine attaches it to every operator. All hooks are observers: they
    read simulation state but never mutate it, consume no randomness, and
    perform no float arithmetic the simulation could observe — the
    byte-identity contract of PR 8 is preserved by construction (a
    dedicated test compares summaries, decisions, and checkpoint bytes
    with tracing on and off).
    """

    def __init__(self, sample_rate: float, seed: int = 0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1]: {sample_rate}")
        self.sample_rate = float(sample_rate)
        self.seed = int(seed)
        # Keyed hash threshold: a record is sampled iff the 64-bit keyed
        # blake2b of its identity falls below rate * 2^64.
        self._threshold = int(round(self.sample_rate * _TWO_POW_64))
        self._key = seed.to_bytes(8, "little", signed=True)
        #: id(operator) -> static wiring info, built by attach()
        self._ops: Dict[int, _OpInfo] = {}
        #: (query_id, operator name, flowing t_end) -> FIFO of rider groups
        self._inflight: Dict[Tuple[str, str, float], Deque[List[_Record]]] = {}
        #: (query_id, operator name, pane end) -> records parked in the pane
        self._window_wait: Dict[Tuple[str, str, float], List[_Record]] = {}
        self._completed: List[Dict[str, Any]] = []
        self.rows_sampled = 0
        self.spans_recorded = 0
        self.forecast = SwmForecastAudit()

    # -- wiring --------------------------------------------------------------

    def attach(self, engine: "Engine") -> None:
        """Resolve operator wiring and install hook pointers."""
        for query in engine.queries:
            for op in query.operators:
                downstream: Optional[str] = None
                if op.output is not None and op.output._owner is not None:
                    downstream = op.output._owner.name
                assigner = None
                if isinstance(op, _WindowedOperatorBase):
                    assigner = op.assigner
                self._ops[id(op)] = _OpInfo(  # klink: transient[build-time wiring, fixed for the life of the topology]
                    query.query_id,
                    op.name,
                    downstream,
                    isinstance(op, SinkOperator),
                    assigner,
                    isinstance(op, CountWindowedAggregate),
                )
                op.lineage = self
            for binding in query.bindings:
                self.forecast.register_source(
                    query.query_id,
                    binding.source_id,
                    binding.spec.watermark_period_ms,
                    binding.spec.delay_model.describe(),
                )

    # -- sampling ------------------------------------------------------------

    def sampled(self, query_id: str, source_id: int, t_end: float) -> bool:
        """Deterministic keyed-hash sampling decision for one record."""
        if self._threshold <= 0:
            return False
        digest = blake2b(
            record_identity(query_id, source_id, t_end),
            digest_size=8,
            key=self._key,
        ).digest()
        return int.from_bytes(digest, "big") < self._threshold

    # -- engine hooks ----------------------------------------------------------

    def on_ingested(
        self,
        query: "Query",
        binding: "SourceBinding",
        batch: EventBatch,
        now: float,
    ) -> None:
        """A generated payload batch entered its source channel at ``now``."""
        t_end = batch.t_end
        query_id = query.query_id
        if not self.sampled(query_id, binding.source_id, t_end):
            return
        rid = f"{query_id}:{binding.source_id}:{t_end!r}"
        rec = _Record(rid, query_id, binding.source_id, t_end)
        # Generation happens at t_end (the batch's final event is created
        # the instant the batch closes and enters the network).
        rec.spans.append(("network", None, t_end, now))
        self.rows_sampled += 1
        owner = binding.channel._owner
        first_op = owner.name if owner is not None else binding.operator.name
        key = (query_id, first_op, t_end)
        self._inflight.setdefault(key, deque()).append([rec])

    def on_swm_ingested(
        self, query_id: str, source_id: int, wm_timestamp: float, now: float
    ) -> None:
        """A sweeping watermark was ingested (forecast-audit actual)."""
        self.forecast.on_actual(query_id, source_id, wm_timestamp, now)

    # -- operator hooks --------------------------------------------------------

    def on_consumed(
        self,
        op: Operator,
        t_start: float,
        t_end: float,
        enqueued_at: float,
        channel: "Channel",
        now: float,
    ) -> None:
        """``op`` fully consumed a queued row/batch ``[t_start, t_end)``."""
        info = self._ops.get(id(op))
        if info is None:
            return
        key = (info.query_id, info.name, t_end)
        groups = self._inflight.get(key)
        if not groups:
            return
        group = groups.popleft()
        if not groups:
            del self._inflight[key]
        transfer = channel.transfer_interval(enqueued_at)
        name = info.name
        for rec in group:
            if transfer is not None:
                rec.spans.append(("emit", name, transfer[0], transfer[1]))
            rec.spans.append(("queue", name, enqueued_at, now))
            rec.spans.append(("execute", name, now, now))
        if info.is_sink:
            for rec in group:
                self._finish(rec, "delivered", now)
            return
        if info.is_count:
            # Count windows close by arrival order; whether this record's
            # events sit in the fired or the accumulating window is not
            # defined, so the chain ends at absorption.
            for rec in group:
                self._finish(rec, "count-window", now)
            return
        if info.assigner is not None:
            clock = op._input_watermarks[channel._consumer_index]  # type: ignore[attr-defined]
            if t_end <= clock:
                for rec in group:
                    self._finish(rec, "dropped-late", now)
                return
            pane = info.assigner.final_event_pane(t_start, t_end)
            if pane is None:
                for rec in group:
                    self._finish(rec, "count-window", now)
                return
            for rec in group:
                rec.absorbed_at = now
            wait_key = (info.query_id, info.name, pane[1])
            self._window_wait.setdefault(wait_key, []).extend(group)
            return
        if op.selectivity <= 0.0:
            for rec in group:
                self._finish(rec, "filtered", now)
            return
        downstream = info.downstream
        if downstream is None:
            for rec in group:
                self._finish(rec, "no-downstream", now)
            return
        self._inflight.setdefault(
            (info.query_id, downstream, t_end), deque()
        ).append(group)

    def on_pane_fire(
        self, op: Operator, pane_end: float, out_count: float, now: float
    ) -> None:
        """A window pane ``[.., pane_end)`` of ``op`` fired at ``now``."""
        info = self._ops.get(id(op))
        if info is None:
            return
        waiting = self._window_wait.pop((info.query_id, info.name, pane_end), None)
        if not waiting:
            return
        name = info.name
        for rec in waiting:
            rec.spans.append(("window", name, rec.absorbed_at, now))
        if out_count <= 0:
            for rec in waiting:
                self._finish(rec, "window-no-output", now)
            return
        downstream = info.downstream
        if downstream is None:
            for rec in waiting:
                self._finish(rec, "no-downstream", now)
            return
        # Every parked record now rides the single pane-output batch,
        # whose event-time boundary is the pane end.
        self._inflight.setdefault(
            (info.query_id, downstream, pane_end), deque()
        ).append(waiting)

    # -- completion ------------------------------------------------------------

    def _finish(self, rec: _Record, status: str, now: float) -> None:
        components = {kind: 0.0 for kind in SPAN_KINDS}
        for kind, _, start, end in rec.spans:
            components[kind] += end - start
        self._completed.append(
            {
                "type": "lineage",
                "rid": rec.rid,
                "query_id": rec.query_id,
                "source_id": rec.source_id,
                "t_end": rec.t_end,
                "status": status,
                "completed_at": now,
                "end_to_end_ms": now - rec.t_end,
                "components": components,
                "spans": [
                    {"kind": kind, "op": op, "start": start, "end": end}
                    for kind, op, start, end in rec.spans
                ],
            }
        )
        self.spans_recorded += len(rec.spans)

    def finalize(self, now: float) -> None:
        """Close records still in flight at end-of-run."""
        for key in list(self._window_wait):
            records = self._window_wait.pop(key)
            for rec in records:
                rec.spans.append(("window", key[1], rec.absorbed_at, now))
                self._finish(rec, "in-flight", now)
        for key in list(self._inflight):
            for group in self._inflight.pop(key):
                for rec in group:
                    self._finish(rec, "in-flight", now)

    # -- output ----------------------------------------------------------------

    def lineage_rows(self) -> List[Dict[str, Any]]:
        """Completed ``lineage`` trace records, in completion order."""
        return list(self._completed)

    def swm_forecast_rows(self) -> List[Dict[str, Any]]:
        return self.forecast.rows()

    def summary_row(self) -> Dict[str, Any]:
        """The ``lineage_summary`` trace record (self-overhead accounting).

        ``trace_bytes`` is filled by the trace writer with the bytes of
        lineage-attributable records it wrote (0 until then).
        """
        statuses = {status: 0 for status in RECORD_STATUSES}
        for row in self._completed:
            statuses[str(row["status"])] = statuses.get(str(row["status"]), 0) + 1
        return {
            "type": "lineage_summary",
            "sample_rate": self.sample_rate,
            "seed": self.seed,
            "rows_sampled": self.rows_sampled,
            "span_records": self.spans_recorded,
            "statuses": statuses,
            "forecast_evaluations": self.forecast.evaluations,
            "trace_bytes": 0,
        }


def waterfall(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate lineage records into the latency-waterfall report section.

    Only delivered records decompose end-to-end latency exactly; the
    section reports their mean per-component milliseconds and percentage
    shares, overall and per query.
    """

    def aggregate(subset: List[Dict[str, Any]]) -> Dict[str, Any]:
        n = len(subset)
        sums = {kind: 0.0 for kind in SPAN_KINDS}
        total = 0.0
        for row in subset:
            components = row["components"]
            for kind in SPAN_KINDS:
                sums[kind] += float(components[kind])
            total += float(row["end_to_end_ms"])
        means = {kind: (sums[kind] / n if n else 0.0) for kind in SPAN_KINDS}
        shares = {
            kind: (100.0 * sums[kind] / total if total > 0 else 0.0)
            for kind in SPAN_KINDS
        }
        return {
            "records": n,
            "mean_end_to_end_ms": (total / n if n else 0.0),
            "components_ms": means,
            "shares_pct": shares,
        }

    delivered = [row for row in rows if row["status"] == "delivered"]
    by_query: Dict[str, List[Dict[str, Any]]] = {}
    for row in delivered:
        by_query.setdefault(str(row["query_id"]), []).append(row)
    return {
        "sampled": len(rows),
        "delivered": len(delivered),
        "overall": aggregate(delivered),
        "by_query": [
            {"query_id": qid, **aggregate(subset)}
            for qid, subset in sorted(by_query.items())
        ],
    }
