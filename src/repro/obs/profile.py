"""Per-operator and per-chain profiling.

Where the audit log explains *why* the policy chose what it chose, the
profiler shows *where the simulated CPU-milliseconds actually went*:
per operator, cumulative CPU-ms and events in/out (from the operator's
own runtime stats), plus the per-cycle *high-water marks* the stats
alone cannot reconstruct — peak queued events/bytes and peak window
state — which is what identifies the queue that caused a
memory-management episode.

Attach an :class:`OperatorProfiler` to an engine
(``Engine(..., profiler=OperatorProfiler())``); the engine samples it
once per scheduling cycle and publishes the final profiles through
``RunMetrics.operator_profiles``. The per-cycle cost is one pass over
the operators (the engine already makes such a pass for utilization
sampling); memory is O(#operators), independent of run length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence


@dataclass(frozen=True)
class OperatorProfile:
    """Cumulative runtime profile of one operator over a run."""

    query_id: str
    name: str
    kind: str
    cpu_ms: float
    events_in: float
    events_out: float
    watermarks_seen: int
    panes_fired: int
    late_events_dropped: float
    queued_events_hwm: float
    queued_bytes_hwm: float
    state_bytes_hwm: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query_id": self.query_id,
            "name": self.name,
            "kind": self.kind,
            "cpu_ms": self.cpu_ms,
            "events_in": self.events_in,
            "events_out": self.events_out,
            "watermarks_seen": self.watermarks_seen,
            "panes_fired": self.panes_fired,
            "late_events_dropped": self.late_events_dropped,
            "queued_events_hwm": self.queued_events_hwm,
            "queued_bytes_hwm": self.queued_bytes_hwm,
            "state_bytes_hwm": self.state_bytes_hwm,
        }


@dataclass(frozen=True)
class ChainProfile:
    """Aggregated profile of one query's operator chain (pipeline)."""

    query_id: str
    n_operators: int
    cpu_ms: float
    events_in: float        # events entering the chain (entry operators)
    events_delivered: float  # events the sink consumed
    late_events_dropped: float
    queued_events_hwm: float   # sum of member HWMs (worst queue build-up)
    memory_bytes_hwm: float    # queued bytes + window state, peak of sums
    hottest_operator: str
    hottest_cpu_ms: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query_id": self.query_id,
            "n_operators": self.n_operators,
            "cpu_ms": self.cpu_ms,
            "events_in": self.events_in,
            "events_delivered": self.events_delivered,
            "late_events_dropped": self.late_events_dropped,
            "queued_events_hwm": self.queued_events_hwm,
            "memory_bytes_hwm": self.memory_bytes_hwm,
            "hottest_operator": self.hottest_operator,
            "hottest_cpu_ms": self.hottest_cpu_ms,
        }


class _HighWater:
    """Per-operator running maxima (one slot-based record per operator)."""

    __slots__ = ("queued_events", "queued_bytes", "state_bytes")

    def __init__(self) -> None:
        self.queued_events = 0.0
        self.queued_bytes = 0.0
        self.state_bytes = 0.0


class OperatorProfiler:
    """Accumulates per-operator high-water marks cycle by cycle.

    Operators are keyed by ``(query_id, operator_name)`` so profiles
    survive the operators themselves (the key is also what the trace
    format stores). Cumulative counters (CPU-ms, events) are read off
    ``operator.stats`` at snapshot time — they need no per-cycle work.
    """

    def __init__(self) -> None:
        self._hwm: Dict[str, _HighWater] = {}
        self._query_mem_hwm: Dict[str, float] = {}
        self.cycles_sampled = 0

    @staticmethod
    def _key(query_id: str, op: Any) -> str:
        return f"{query_id}\x00{op.name}"

    # -- engine-facing hook --------------------------------------------------

    def on_cycle(self, queries: Sequence[Any]) -> None:
        """Update high-water marks from the current queue/state depths."""
        self.cycles_sampled += 1
        for query in queries:
            qid = query.query_id
            mem = 0.0
            for op in query.operators:
                key = self._key(qid, op)
                hw = self._hwm.get(key)
                if hw is None:
                    hw = self._hwm[key] = _HighWater()
                queued_events = op.queued_events
                queued_bytes = op.queued_bytes
                state_bytes = op.state_bytes
                if queued_events > hw.queued_events:
                    hw.queued_events = queued_events
                if queued_bytes > hw.queued_bytes:
                    hw.queued_bytes = queued_bytes
                if state_bytes > hw.state_bytes:
                    hw.state_bytes = state_bytes
                mem += queued_bytes + state_bytes
            if mem > self._query_mem_hwm.get(qid, 0.0):
                self._query_mem_hwm[qid] = mem

    # -- snapshots -----------------------------------------------------------

    def profiles(self, queries: Sequence[Any]) -> List[OperatorProfile]:
        """Final per-operator profiles, in query/pipeline order."""
        out: List[OperatorProfile] = []
        for query in queries:
            for op in query.operators:
                hw = self._hwm.get(self._key(query.query_id, op), _HighWater())
                out.append(
                    OperatorProfile(
                        query_id=query.query_id,
                        name=op.name,
                        kind=type(op).__name__,
                        cpu_ms=op.stats.busy_ms,
                        events_in=op.stats.events_in,
                        events_out=op.stats.events_out,
                        watermarks_seen=op.stats.watermarks_seen,
                        panes_fired=op.stats.panes_fired,
                        late_events_dropped=op.stats.late_events_dropped,
                        queued_events_hwm=hw.queued_events,
                        queued_bytes_hwm=hw.queued_bytes,
                        state_bytes_hwm=hw.state_bytes,
                    )
                )
        return out

    def chain_profiles(self, queries: Sequence[Any]) -> List[ChainProfile]:
        """Per-query (pipeline chain) aggregation of the profiles."""
        out: List[ChainProfile] = []
        for query in queries:
            members = list(query.operators)
            cpu = sum(op.stats.busy_ms for op in members)
            late = sum(op.stats.late_events_dropped for op in members)
            hwms = [
                self._hwm.get(self._key(query.query_id, op), _HighWater())
                for op in members
            ]
            # Dedup preserving binding order: a set here would float-sum
            # events_in in hash order, making the trace byte-unstable for
            # multi-source queries (joins) across PYTHONHASHSEED values.
            entry_ops = list(
                dict.fromkeys(binding.operator for binding in query.bindings)
            )
            events_in = sum(op.stats.events_in for op in entry_ops)
            hottest = max(members, key=lambda op: op.stats.busy_ms)
            out.append(
                ChainProfile(
                    query_id=query.query_id,
                    n_operators=len(members),
                    cpu_ms=cpu,
                    events_in=events_in,
                    events_delivered=query.sink.events_delivered,
                    late_events_dropped=late,
                    queued_events_hwm=sum(h.queued_events for h in hwms),
                    memory_bytes_hwm=self._query_mem_hwm.get(query.query_id, 0.0),
                    hottest_operator=hottest.name,
                    hottest_cpu_ms=hottest.stats.busy_ms,
                )
            )
        return out
