"""Run reports: rendering a saved trace into an explanation of a run.

``build_report`` turns a :class:`~repro.obs.export.Trace` (from
``read_trace`` or assembled in memory by the bench runner) into a
:class:`RunReport`:

* **latency CDF points** — the paper's primary figure axis (Fig. 6b);
* **decision timeline** — cycles, per-reason and per-mode decision
  counts, which queries the policy favoured, and the
  backpressure/throttle (memory-mode) episodes with their time spans;
* **hottest operators** — top-k by simulated CPU-ms, with queue/state
  high-water marks;
* **chains** — per-query pipeline aggregates.

``render_text`` produces the human-readable report; ``RunReport.to_json``
the machine-readable one (validated by :mod:`repro.obs.schema`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.export import SCHEMA_VERSION, Trace, dumps_line
from repro.obs.lineage import SPAN_KINDS, waterfall as build_waterfall


@dataclass(frozen=True)
class Episode:
    """A contiguous span of cycles sharing a condition."""

    kind: str   # "backpressure" | "throttle" | "memory-mode"
    start: float
    end: float
    cycles: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "cycles": self.cycles,
        }


def _episodes(
    cycles: Sequence[Dict[str, Any]],
    kind: str,
    flag: Callable[[Dict[str, Any]], Any],
) -> List[Episode]:
    """Contiguous spans over cycle records where ``flag(cycle)`` holds."""
    episodes: List[Episode] = []
    start: Optional[float] = None
    prev_time = 0.0
    count = 0
    for row in cycles:
        active = bool(flag(row))
        t = float(row.get("time", 0.0))
        if active and start is None:
            start, count = t, 1
        elif active:
            count += 1
        elif start is not None:
            episodes.append(Episode(kind, start, prev_time, count))
            start = None
        prev_time = t
    if start is not None:
        episodes.append(Episode(kind, start, prev_time, count))
    return episodes


def _is_memory_mode(row: Dict[str, Any]) -> bool:
    """A cycle counts as memory-mode when any decision reason says so."""
    return any(
        str(d.get("reason", "")).startswith("memory-")
        for d in row.get("decisions", ())
    )


@dataclass
class RunReport:
    """The assembled run report (see module docstring for sections)."""

    meta: Dict[str, Any] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)
    latency_cdf: List[Tuple[float, Optional[float]]] = field(default_factory=list)
    decision_timeline: Dict[str, Any] = field(default_factory=dict)
    hottest_operators: List[Dict[str, Any]] = field(default_factory=list)
    chains: List[Dict[str, Any]] = field(default_factory=list)
    episodes: List[Episode] = field(default_factory=list)
    alerts: Dict[str, Any] = field(default_factory=dict)
    telemetry: Dict[str, Any] = field(default_factory=dict)
    #: lineage sections (schema v3+); None / empty when tracing was off
    waterfall: Optional[Dict[str, Any]] = None
    swm_forecast: List[Dict[str, Any]] = field(default_factory=list)
    lineage_overhead: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "meta": self.meta,
            "summary": self.summary,
            "latency_cdf": [list(point) for point in self.latency_cdf],
            "decision_timeline": self.decision_timeline,
            "hottest_operators": self.hottest_operators,
            "chains": self.chains,
            "episodes": [e.to_dict() for e in self.episodes],
            "alerts": self.alerts,
            "telemetry": self.telemetry,
            "waterfall": self.waterfall,
            "swm_forecast": self.swm_forecast,
            "lineage_overhead": self.lineage_overhead,
        }

    def to_json(self) -> str:
        return dumps_line(self.to_dict())


def build_report(trace: Trace, top_k: int = 10) -> RunReport:
    """Assemble a :class:`RunReport` from a parsed trace."""
    if top_k < 1:
        raise ValueError(f"top-k must be >= 1: {top_k}")
    cycles = trace.cycles
    reason_counts: Counter[str] = Counter()
    head_reason_counts: Counter[str] = Counter()
    head_query_counts: Counter[str] = Counter()
    mode_counts: Counter[str] = Counter()
    backpressure_cycles = 0
    throttle_cycles = 0
    for row in cycles:
        mode_counts[str(row.get("mode", "priority"))] += 1
        if row.get("backpressured"):
            backpressure_cycles += 1
        if row.get("throttled"):
            throttle_cycles += 1
        decisions = row.get("decisions", ())
        for d in decisions:
            reason_counts[str(d.get("reason", "?"))] += 1
        if decisions:
            head = decisions[0]
            head_reason_counts[str(head.get("reason", "?"))] += 1
            head_query_counts[str(head.get("query_id", "?"))] += 1
    episodes = (
        _episodes(cycles, "backpressure", lambda r: r.get("backpressured"))
        + _episodes(cycles, "throttle", lambda r: r.get("throttled"))
        + _episodes(cycles, "memory-mode", _is_memory_mode)
    )
    episodes.sort(key=lambda e: (e.start, e.kind))
    times = [float(r.get("time", 0.0)) for r in cycles]
    timeline: Dict[str, Any] = {
        "cycles": len(cycles),
        "time_start": min(times) if times else 0.0,
        "time_end": max(times) if times else 0.0,
        "mode_counts": dict(sorted(mode_counts.items())),
        "reason_counts": dict(sorted(reason_counts.items())),
        "head_reason_counts": dict(sorted(head_reason_counts.items())),
        "head_query_counts": dict(sorted(head_query_counts.items())),
        "backpressure_cycles": backpressure_cycles,
        "throttle_cycles": throttle_cycles,
        "distinct_head_queries": len(head_query_counts),
    }
    hottest = sorted(
        trace.operators,
        key=lambda op: (-float(op.get("cpu_ms", 0.0)), str(op.get("name", ""))),
    )[:top_k]
    summary = dict(trace.summary)
    raw_cdf = summary.pop("latency_cdf", [])
    cdf: List[Tuple[float, Optional[float]]] = [
        (float(p), None if v is None else float(v)) for p, v in raw_cdf
    ]
    alert_counts: Counter[str] = Counter(
        str(row.get("rule", "?")) for row in trace.alerts
    )
    alerts: Dict[str, Any] = {
        "total": len(trace.alerts),
        "by_rule": dict(sorted(alert_counts.items())),
        "events": [dict(row) for row in trace.alerts],
    }
    telemetry: Dict[str, Any] = {
        "series": len(trace.series),
        "points": sum(len(s.get("points", ())) for s in trace.series),
        "dropped": sum(int(s.get("dropped", 0)) for s in trace.series),
    }
    return RunReport(
        meta=dict(trace.meta),
        summary=summary,
        latency_cdf=cdf,
        decision_timeline=timeline,
        hottest_operators=[dict(op) for op in hottest],
        chains=[dict(ch) for ch in trace.chains],
        episodes=episodes,
        alerts=alerts,
        telemetry=telemetry,
        waterfall=build_waterfall(trace.lineage) if trace.lineage else None,
        swm_forecast=[dict(row) for row in trace.swm_forecast],
        lineage_overhead=(
            dict(trace.lineage_summary) if trace.lineage_summary else None
        ),
    )


def _fmt_opt_ms(value: Any) -> str:
    return "-" if value is None else f"{float(value):,.1f}"


def _waterfall_line(label: str, agg: Dict[str, Any]) -> str:
    comps = agg.get("components_ms", {})
    shares = agg.get("shares_pct", {})
    body = "  ".join(
        f"{kind}={float(comps.get(kind, 0.0)):,.1f}ms"
        f"({float(shares.get(kind, 0.0)):.1f}%)"
        for kind in SPAN_KINDS
    )
    return f"  {label:14s} {body}"


def _lineage_sections(report: RunReport) -> List[str]:
    """The waterfall / SWM-forecast / overhead lines of the text report."""
    lines: List[str] = []
    if report.waterfall is not None:
        wf = report.waterfall
        overall = wf.get("overall", {})
        lines.append("-- latency waterfall (sampled lineage) --")
        lines.append(
            f"  {wf.get('delivered', 0)} delivered of "
            f"{wf.get('sampled', 0)} sampled; mean end-to-end "
            f"{float(overall.get('mean_end_to_end_ms', 0.0)):,.1f} ms"
        )
        lines.append(_waterfall_line("overall", overall))
        for row in wf.get("by_query", []):
            lines.append(_waterfall_line(str(row.get("query_id", "?")), row))
    if report.swm_forecast:
        lines.append("-- SWM-forecast accuracy (per source) --")
        for row in report.swm_forecast:
            lines.append(
                f"  {row.get('query_id', '?')}/src{row.get('source_id', '?')}: "
                f"{row.get('evaluations', 0)} evals over "
                f"{row.get('deadlines_resolved', 0)} deadlines; "
                f"mean|err|={_fmt_opt_ms(row.get('mean_abs_error_ms'))}ms "
                f"p99|err|={_fmt_opt_ms(row.get('p99_abs_error_ms'))}ms "
                f"naive|err|={_fmt_opt_ms(row.get('naive_mean_abs_error_ms'))}ms "
                f"episodes over/under="
                f"{row.get('over_episodes', 0)}/{row.get('under_episodes', 0)}"
            )
    if report.lineage_overhead is not None:
        ov = report.lineage_overhead
        lines.append(
            f"-- lineage overhead: {ov.get('rows_sampled', 0)} rows sampled "
            f"(rate {ov.get('sample_rate', 0)}), "
            f"{ov.get('span_records', 0)} spans, "
            f"{ov.get('trace_bytes', 0)} trace bytes --"
        )
    return lines


def render_waterfall(report: RunReport) -> str:
    """Only the lineage sections (``repro-bench report --waterfall``)."""
    lines = _lineage_sections(report)
    if not lines:
        return (
            "no lineage records in this trace; run with "
            "--lineage-sample-rate > 0 to trace sampled records"
        )
    return "\n".join(lines)


def _fmt(value: Any, width: int = 10) -> str:
    if value is None:
        return " " * (width - 1) + "-"
    if isinstance(value, float):
        return f"{value:{width},.1f}"
    return f"{value:>{width}}"


def render_text(report: RunReport) -> str:
    """Human-readable multi-section report."""
    lines: List[str] = []
    meta = report.meta
    label = "/".join(
        str(meta[k]) for k in ("workload", "scheduler") if k in meta
    ) or "run"
    lines.append(f"=== run report: {label} ===")
    for key in ("n_queries", "seed", "duration_ms", "cores", "cycle_ms", "delay"):
        if key in meta:
            lines.append(f"  {key:13s} {meta[key]}")
    summary = report.summary
    if summary:
        lines.append("-- summary --")
        for key in sorted(summary):
            value = summary[key]
            shown = f"{value:,.3f}" if isinstance(value, float) else str(value)
            lines.append(f"  {key:22s} {shown}")
    if report.latency_cdf:
        lines.append("-- latency CDF (pct -> ms) --")
        lines.append(
            "  " + "  ".join(
                f"p{pct:g}={'-' if v is None else format(v, ',.0f')}"
                for pct, v in report.latency_cdf
            )
        )
    tl = report.decision_timeline
    lines.append("-- decision timeline --")
    lines.append(
        f"  {tl.get('cycles', 0)} cycles over "
        f"[{tl.get('time_start', 0.0):,.0f}, {tl.get('time_end', 0.0):,.0f}] ms; "
        f"{tl.get('backpressure_cycles', 0)} backpressured, "
        f"{tl.get('throttle_cycles', 0)} throttled"
    )
    for section in ("head_reason_counts", "reason_counts"):
        counts = tl.get(section, {})
        if counts:
            body = ", ".join(f"{k}={v}" for k, v in counts.items())
            lines.append(f"  {section}: {body}")
    heads = tl.get("head_query_counts", {})
    if heads:
        top_heads = sorted(heads.items(), key=lambda kv: (-kv[1], kv[0]))[:8]
        lines.append(
            "  most-favoured queries: "
            + ", ".join(f"{q}({n})" for q, n in top_heads)
        )
    if report.episodes:
        lines.append("-- episodes --")
        for ep in report.episodes:
            lines.append(
                f"  {ep.kind:12s} [{ep.start:,.0f}, {ep.end:,.0f}] ms "
                f"({ep.cycles} cycles)"
            )
    if report.alerts.get("total"):
        lines.append("-- alerts --")
        by_rule = report.alerts.get("by_rule", {})
        lines.append(
            f"  {report.alerts['total']} fired: "
            + ", ".join(f"{rule}={n}" for rule, n in by_rule.items())
        )
        for event in report.alerts.get("events", [])[:8]:
            end = event.get("end")
            end_text = "open" if end is None else f"{float(end):,.0f}"
            lines.append(
                f"  {str(event.get('rule', '?')):24s} "
                f"[{float(event.get('start', 0.0)):,.0f}, {end_text}] ms "
                f"on {event.get('series', '?')}"
            )
    if report.telemetry.get("series"):
        tele = report.telemetry
        lines.append(
            f"-- telemetry: {tele.get('series', 0)} series, "
            f"{tele.get('points', 0)} points"
            + (
                f", {tele['dropped']} dropped --"
                if tele.get("dropped")
                else " --"
            )
        )
    lines.extend(_lineage_sections(report))
    if report.hottest_operators:
        lines.append("-- hottest operators (by simulated CPU-ms) --")
        lines.append(
            f"  {'operator':34s} {'cpu_ms':>10s} {'events_in':>12s} "
            f"{'q_hwm':>10s} {'state_hwm':>12s}"
        )
        for op in report.hottest_operators:
            lines.append(
                f"  {str(op.get('name', '?')):34s} "
                f"{_fmt(float(op.get('cpu_ms', 0.0)))} "
                f"{_fmt(float(op.get('events_in', 0.0)), 12)} "
                f"{_fmt(float(op.get('queued_events_hwm', 0.0)))} "
                f"{_fmt(float(op.get('state_bytes_hwm', 0.0)), 12)}"
            )
    if report.chains:
        lines.append("-- chains (per-query pipelines) --")
        for ch in report.chains:
            lines.append(
                f"  {str(ch.get('query_id', '?')):12s} "
                f"cpu={float(ch.get('cpu_ms', 0.0)):,.1f}ms "
                f"in={float(ch.get('events_in', 0.0)):,.0f} "
                f"out={float(ch.get('events_delivered', 0.0)):,.0f} "
                f"mem_hwm={float(ch.get('memory_bytes_hwm', 0.0)):,.0f}B "
                f"hottest={ch.get('hottest_operator', '?')}"
            )
    return "\n".join(lines)
