"""Documented schemas for the trace and report JSON, with validators.

CI runs ``repro-bench report --format json --check-schema`` against a
short YSB run and fails the build when the emitted JSON drifts from the
schema documented here (and in ``docs/API.md``). The validator is a
small hand-rolled structural checker — no external jsonschema
dependency — that checks required keys and value types, reporting the
JSON path of the first mismatch.

Schema notation: a dict maps required keys to *specs*; a spec is a type
tuple, ``(list, item_spec)`` for homogeneous arrays, or a nested dict.
``NUMBER`` admits ints and floats; every float may be ``null`` in the
emitted JSON (non-finite values are serialized as ``null``).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple, Union

NUMBER: Tuple[type, ...] = (int, float)
OPT_NUMBER: Tuple[type, ...] = (int, float, type(None))

Spec = Union[Tuple[type, ...], Dict[str, Any], "ListSpec"]


class ListSpec:
    """Homogeneous-array spec: every element must match ``item``."""

    def __init__(self, item: Spec, min_items: int = 0) -> None:
        self.item = item
        self.min_items = min_items


class SchemaError(ValueError):
    """Raised when a JSON object does not match the documented schema."""


#: one per-query decision inside a cycle record
DECISION_SCHEMA: Dict[str, Spec] = {
    "query_id": (str,),
    "rank": (int,),
    "reason": (str,),
    "slack_ms": OPT_NUMBER,
    "swm_delay_mean_ms": OPT_NUMBER,
    "swm_delay_std_ms": OPT_NUMBER,
    "score": OPT_NUMBER,
    "memory_bytes": NUMBER,
    "queued_events": NUMBER,
}

#: one scheduling cycle of the audit trail (trace ``type=cycle`` rows)
CYCLE_SCHEMA: Dict[str, Spec] = {
    "time": NUMBER,
    "cycle": (int,),
    "node": (int,),
    "policy": (str,),
    "mode": (str,),
    "backpressured": (bool,),
    "throttled": (bool,),
    "memory_utilization": NUMBER,
    "cpu_used_ms": NUMBER,
    "overhead_ms": NUMBER,
    "decisions": ListSpec(DECISION_SCHEMA),
}

#: one operator profile (trace ``type=operator`` rows / report entries)
OPERATOR_SCHEMA: Dict[str, Spec] = {
    "query_id": (str,),
    "name": (str,),
    "kind": (str,),
    "cpu_ms": NUMBER,
    "events_in": NUMBER,
    "events_out": NUMBER,
    "watermarks_seen": (int,),
    "panes_fired": (int,),
    "late_events_dropped": NUMBER,
    "queued_events_hwm": NUMBER,
    "queued_bytes_hwm": NUMBER,
    "state_bytes_hwm": NUMBER,
}

#: one chain (per-query pipeline) aggregate
CHAIN_SCHEMA: Dict[str, Spec] = {
    "query_id": (str,),
    "n_operators": (int,),
    "cpu_ms": NUMBER,
    "events_in": NUMBER,
    "events_delivered": NUMBER,
    "late_events_dropped": NUMBER,
    "queued_events_hwm": NUMBER,
    "memory_bytes_hwm": NUMBER,
    "hottest_operator": (str,),
    "hottest_cpu_ms": NUMBER,
}

#: an episode span in the report
EPISODE_SCHEMA: Dict[str, Spec] = {
    "kind": (str,),
    "start": NUMBER,
    "end": NUMBER,
    "cycles": (int,),
}

#: one telemetry time-series (trace ``type=series`` rows, schema v2+)
SERIES_SCHEMA: Dict[str, Spec] = {
    "name": (str,),
    "labels": (dict,),
    "kind": (str,),
    "period_ms": NUMBER,
    "points": ListSpec(ListSpec(OPT_NUMBER, min_items=2)),
    "dropped": (int,),
}

#: one fired alert (trace ``type=alert`` rows, schema v2+)
ALERT_SCHEMA: Dict[str, Spec] = {
    "rule": (str,),
    "series": (str,),
    "kind": (str,),
    "start": NUMBER,
    "end": OPT_NUMBER,
    "value": OPT_NUMBER,
}

#: one span of a lineage record's causal chain (schema v3+)
SPAN_SCHEMA: Dict[str, Spec] = {
    "kind": (str,),
    "op": (str, type(None)),
    "start": NUMBER,
    "end": NUMBER,
}

#: one sampled-record lineage trace (trace ``type=lineage`` rows, v3+)
LINEAGE_SCHEMA: Dict[str, Spec] = {
    "rid": (str,),
    "query_id": (str,),
    "source_id": (int,),
    "t_end": NUMBER,
    "status": (str,),
    "completed_at": NUMBER,
    "end_to_end_ms": NUMBER,
    "components": (dict,),
    "spans": ListSpec(SPAN_SCHEMA),
}

#: one per-source SWM-forecast calibration record (``type=swm_forecast``)
SWM_FORECAST_SCHEMA: Dict[str, Spec] = {
    "query_id": (str,),
    "source_id": (int,),
    "evaluations": (int,),
    "deadlines_resolved": (int,),
    "deadlines_unresolved": (int,),
    "mean_error_ms": OPT_NUMBER,
    "mean_abs_error_ms": OPT_NUMBER,
    "p50_abs_error_ms": OPT_NUMBER,
    "p90_abs_error_ms": OPT_NUMBER,
    "p99_abs_error_ms": OPT_NUMBER,
    "over_predictions": (int,),
    "under_predictions": (int,),
    "over_episodes": (int,),
    "under_episodes": (int,),
    "naive_evaluations": (int,),
    "naive_mean_abs_error_ms": OPT_NUMBER,
    "watermark_period_ms": OPT_NUMBER,
    "delay_model": (dict, type(None)),
}

#: lineage self-overhead accounting (``type=lineage_summary``, v3+)
LINEAGE_SUMMARY_SCHEMA: Dict[str, Spec] = {
    "sample_rate": NUMBER,
    "seed": (int,),
    "rows_sampled": (int,),
    "span_records": (int,),
    "statuses": (dict,),
    "forecast_evaluations": (int,),
    "trace_bytes": (int,),
}

#: the latency-waterfall section of the report (null when untraced)
WATERFALL_SCHEMA: Dict[str, Spec] = {
    "sampled": (int,),
    "delivered": (int,),
    "overall": (dict,),
    "by_query": ListSpec((dict,)),
}

#: the alert summary section of the report
ALERT_SUMMARY_SCHEMA: Dict[str, Spec] = {
    "total": (int,),
    "by_rule": (dict,),
    "events": ListSpec(ALERT_SCHEMA),
}

#: the telemetry summary section of the report
TELEMETRY_SCHEMA: Dict[str, Spec] = {
    "series": (int,),
    "points": (int,),
    "dropped": (int,),
}

#: the decision-timeline summary section of the report
TIMELINE_SCHEMA: Dict[str, Spec] = {
    "cycles": (int,),
    "time_start": NUMBER,
    "time_end": NUMBER,
    "mode_counts": (dict,),
    "reason_counts": (dict,),
    "head_reason_counts": (dict,),
    "head_query_counts": (dict,),
    "backpressure_cycles": (int,),
    "throttle_cycles": (int,),
    "distinct_head_queries": (int,),
}

#: the full ``repro-bench report --format json`` document
REPORT_SCHEMA: Dict[str, Spec] = {
    "schema_version": (int,),
    "meta": (dict,),
    "summary": (dict,),
    "latency_cdf": ListSpec(ListSpec(OPT_NUMBER, min_items=2)),
    "decision_timeline": TIMELINE_SCHEMA,
    "hottest_operators": ListSpec(OPERATOR_SCHEMA),
    "chains": ListSpec(CHAIN_SCHEMA),
    "episodes": ListSpec(EPISODE_SCHEMA),
    "alerts": ALERT_SUMMARY_SCHEMA,
    "telemetry": TELEMETRY_SCHEMA,
    # lineage sections (schema v3+): null / empty when tracing was off
    "waterfall": (dict, type(None)),
    "swm_forecast": ListSpec(SWM_FORECAST_SCHEMA),
    "lineage_overhead": (dict, type(None)),
}


def _check(value: Any, spec: Spec, path: str) -> None:
    if isinstance(spec, tuple):
        # bool is an int subclass: only accept it when explicitly listed.
        if isinstance(value, bool) and bool not in spec:
            raise SchemaError(f"{path}: expected {spec}, got bool")
        if not isinstance(value, spec):
            raise SchemaError(
                f"{path}: expected {tuple(t.__name__ for t in spec)}, "
                f"got {type(value).__name__}"
            )
        return
    if isinstance(spec, ListSpec):
        if not isinstance(value, list):
            raise SchemaError(f"{path}: expected list, got {type(value).__name__}")
        if len(value) < spec.min_items:
            raise SchemaError(
                f"{path}: expected >= {spec.min_items} items, got {len(value)}"
            )
        for i, item in enumerate(value):
            _check(item, spec.item, f"{path}[{i}]")
        return
    # nested dict schema
    if not isinstance(value, Mapping):
        raise SchemaError(f"{path}: expected object, got {type(value).__name__}")
    for key, sub in spec.items():
        if key not in value:
            raise SchemaError(f"{path}.{key}: missing required key")
        _check(value[key], sub, f"{path}.{key}")


def validate_report(obj: Mapping[str, Any]) -> None:
    """Validate a report JSON document; raises :class:`SchemaError`."""
    _check(dict(obj), REPORT_SCHEMA, "$")


def validate_cycle(obj: Mapping[str, Any]) -> None:
    """Validate one audit-trail cycle record."""
    _check(dict(obj), CYCLE_SCHEMA, "$")


def validate_operator(obj: Mapping[str, Any]) -> None:
    """Validate one operator-profile record."""
    _check(dict(obj), OPERATOR_SCHEMA, "$")


def validate_series(obj: Mapping[str, Any]) -> None:
    """Validate one telemetry time-series record."""
    _check(dict(obj), SERIES_SCHEMA, "$")


def validate_alert(obj: Mapping[str, Any]) -> None:
    """Validate one alert-event record."""
    _check(dict(obj), ALERT_SCHEMA, "$")


def validate_lineage(obj: Mapping[str, Any]) -> None:
    """Validate one sampled-record lineage record."""
    _check(dict(obj), LINEAGE_SCHEMA, "$")


def validate_swm_forecast(obj: Mapping[str, Any]) -> None:
    """Validate one SWM-forecast calibration record."""
    _check(dict(obj), SWM_FORECAST_SCHEMA, "$")


def validate_lineage_summary(obj: Mapping[str, Any]) -> None:
    """Validate the lineage self-overhead record."""
    _check(dict(obj), LINEAGE_SUMMARY_SCHEMA, "$")
