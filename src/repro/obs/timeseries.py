"""In-run telemetry: a virtual-clock time-series metrics registry.

Where the audit log records *decisions* and the profiler records
*end-of-run totals*, the telemetry layer records *evolution*: how the
signals Klink schedules on — queue depth, watermark lag, slack, SWM
delay moments, memory occupancy, end-to-end latency — change over the
course of a run. Every sample is taken on the **virtual clock** at a
configurable period, so telemetry is exactly as deterministic as the
simulation itself: two seeded reruns produce byte-identical series.

Three metric primitives (Prometheus-style, but simulation-local):

* :class:`Counter` — a monotonically non-decreasing total;
* :class:`Gauge` — a point-in-time value, overwritten between samples;
* :class:`Histogram` — bucketed observations with interpolated
  quantiles, sampled as derived ``_count`` / ``_p50`` / ``_p99`` series.

Samples land in bounded ring-buffer :class:`Series` (``deque(maxlen)``,
the AuditLog approach), so memory stays O(#series x max_samples)
regardless of run length; overflow is counted, never silent.

The engine-facing :class:`TelemetrySampler` is attached via
``Engine(..., telemetry=TelemetrySampler())``; it samples the standard
signal set every ``period_ms`` of virtual time, feeds an optional
:class:`~repro.obs.alerts.AlertEngine`, and publishes deadline-miss and
watermark-lag aggregates through :class:`~repro.spe.metrics.RunMetrics`
at the end of the run.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

Labels = Tuple[Tuple[str, str], ...]

#: default histogram bucket upper bounds (ms), roughly geometric
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0, 100_000.0,
)


def labels_key(labels: Optional[Mapping[str, str]]) -> Labels:
    """Canonical (sorted, stringified) form of a label mapping."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_key(name: str, labels: Labels) -> str:
    """Stable display/sort key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    body = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{body}}}"


class Counter:
    """A monotonically non-decreasing total."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite with a cumulative total read off an external stat;
        must never move backwards."""
        if value < self.value - 1e-9:
            raise ValueError(
                f"counter cannot decrease: {value} < {self.value}"
            )
        self.value = float(value)

    def read(self) -> Optional[float]:
        return self.value


class Gauge:
    """A point-in-time value; unsampled until first set."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def read(self) -> Optional[float]:
        return self.value


class Histogram:
    """Bucketed observations with interpolated quantiles.

    Memory is O(#buckets); quantiles are linearly interpolated inside
    the containing bucket (the overflow bucket interpolates toward the
    maximum observed value).
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "count", "total", "_max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(set(float(b) for b in bounds)):
            raise ValueError(f"bucket bounds must be sorted and unique: {bounds}")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._max = -math.inf

    def observe(self, value: float) -> None:
        idx = 0
        while idx < len(self.bounds) and value > self.bounds[idx]:
            idx += 1
        self.counts[idx] += 1
        self.count += 1
        self.total += value
        if value > self._max:
            self._max = value

    def quantile(self, pct: float) -> float:
        """Interpolated percentile in [0, 100]; NaN while empty."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile out of range: {pct}")
        if self.count == 0:
            return math.nan
        target = pct / 100.0 * self.count
        cumulative = 0
        for idx, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            lower = 0.0 if idx == 0 else self.bounds[idx - 1]
            upper = self._max if idx == len(self.bounds) else self.bounds[idx]
            upper = max(upper, lower)
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self._max

    def read(self) -> Optional[float]:  # sampled via derived series
        return float(self.count)


@dataclass
class Series:
    """One bounded time-series: (virtual time, value) points."""

    name: str
    labels: Labels
    kind: str
    points: Deque[Tuple[float, float]]
    dropped: int = 0

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)

    def append(self, time: float, value: float) -> None:
        if self.points.maxlen is not None and len(self.points) == self.points.maxlen:
            self.dropped += 1
        self.points.append((time, value))

    def latest(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def window(self, start: float) -> List[float]:
        """Values of points with ``time >= start``."""
        return [v for t, v in self.points if t >= start]

    def to_dict(self, period_ms: float) -> Dict[str, Any]:
        """Fixed-key-order dict for the ``type=series`` trace rows."""
        return {
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
            "kind": self.kind,
            "period_ms": period_ms,
            "points": [[t, v] for t, v in self.points],
            "dropped": self.dropped,
        }


class MetricsRegistry:
    """Registry of metrics and their ring-buffered series.

    Metrics are keyed by ``(name, sorted labels)``; re-registering
    returns the existing instance. :meth:`sample` appends the current
    value of every metric to its series at one virtual-clock instant;
    histograms expand into derived ``_count``/``_p50``/``_p99`` series.
    Serialization is sorted by series key, so the emitted rows are
    independent of registration (and node iteration) order.
    """

    def __init__(self, period_ms: float = 200.0, max_samples: int = 4096) -> None:
        if period_ms <= 0:
            raise ValueError(f"sample period must be positive: {period_ms}")
        if max_samples < 1:
            raise ValueError(f"need at least one sample slot: {max_samples}")
        self.period_ms = float(period_ms)
        self.max_samples = max_samples
        self._metrics: Dict[Tuple[str, Labels], Any] = {}
        self._series: Dict[Tuple[str, Labels], Series] = {}
        self.samples_taken = 0

    # -- registration --------------------------------------------------------

    def _get_or_create(
        self, name: str, labels: Optional[Mapping[str, str]], factory: Any
    ) -> Any:
        key = (name, labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Counter:
        metric = self._get_or_create(name, labels, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"{name}: registered as {metric.kind}, not counter")
        return metric

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        metric = self._get_or_create(name, labels, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name}: registered as {metric.kind}, not gauge")
        return metric

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
    ) -> Histogram:
        metric = self._get_or_create(name, labels, lambda: Histogram(bounds))
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name}: registered as {metric.kind}, not histogram")
        return metric

    # -- sampling ------------------------------------------------------------

    def _series_for(self, name: str, labels: Labels, kind: str) -> Series:
        key = (name, labels)
        series = self._series.get(key)
        if series is None:
            series = Series(
                name=name,
                labels=labels,
                kind=kind,
                points=deque(maxlen=self.max_samples),
            )
            self._series[key] = series
        return series

    def sample(self, now: float) -> None:
        """Append every metric's current value at virtual time ``now``."""
        self.samples_taken += 1
        for (name, labels), metric in self._metrics.items():
            if isinstance(metric, Histogram):
                if metric.count == 0:
                    continue
                self._series_for(f"{name}_count", labels, "histogram").append(
                    now, float(metric.count)
                )
                self._series_for(f"{name}_p50", labels, "histogram").append(
                    now, metric.quantile(50)
                )
                self._series_for(f"{name}_p99", labels, "histogram").append(
                    now, metric.quantile(99)
                )
                continue
            value = metric.read()
            if value is None:
                continue
            self._series_for(name, labels, metric.kind).append(now, value)

    # -- consumption ---------------------------------------------------------

    def series(self) -> List[Series]:
        """All series, sorted by key (deterministic output order)."""
        return sorted(self._series.values(), key=lambda s: s.key)

    def get_series(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[Series]:
        return self._series.get((name, labels_key(labels)))

    def matching(self, name: str, label_filter: Labels = ()) -> List[Series]:
        """Series named ``name`` whose labels contain every filter pair."""
        wanted = dict(label_filter)
        out = [
            s
            for (n, labels), s in self._series.items()
            if n == name
            and all(dict(labels).get(k) == v for k, v in wanted.items())
        ]
        out.sort(key=lambda s: s.key)
        return out

    def to_rows(self) -> List[Dict[str, Any]]:
        """``type=series`` trace rows, sorted by series key."""
        return [s.to_dict(self.period_ms) for s in self.series()]


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the engine-facing sampler.

    Attributes:
        period_ms: Virtual-clock sampling period (the paper samples its
            utilization series every 200 ms; same default here).
        max_samples: Ring-buffer bound per series.
        deadline_slo_ms: End-to-end (SWM) latency above which a sink
            delivery counts as a *deadline miss*.
        latency_window: Number of recent latencies backing the windowed
            ``latency_recent_p99_ms`` gauge (alerting input).
        per_operator: Record per-operator queue-depth/CPU series (the
            widest part of the schema; disable for very large plans).
    """

    period_ms: float = 200.0
    max_samples: int = 4096
    deadline_slo_ms: float = 1000.0
    latency_window: int = 512
    per_operator: bool = True

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError(f"sample period must be positive: {self.period_ms}")
        if self.max_samples < 1:
            raise ValueError(f"need at least one sample slot: {self.max_samples}")
        if self.deadline_slo_ms <= 0:
            raise ValueError(f"deadline SLO must be positive: {self.deadline_slo_ms}")
        if self.latency_window < 1:
            raise ValueError(f"latency window must be >= 1: {self.latency_window}")


class TelemetrySampler:
    """Samples the standard Klink signal set from a running engine.

    Attach via ``Engine(..., telemetry=TelemetrySampler())`` (the bench
    runner does this for ``ExperimentConfig(telemetry=True)`` and for
    every traced run). Once per scheduling cycle the engine calls
    :meth:`on_cycle`; the sampler drains fresh sink latencies every
    cycle and takes a full registry sample whenever the virtual clock
    crosses the next ``period_ms`` boundary (drift-free integer step
    count, never wall time). Alert rules attached via ``rules`` are
    evaluated at every sample instant.
    """

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        rules: Sequence[Any] = (),
    ) -> None:
        from repro.obs.alerts import AlertEngine

        self.config = config or TelemetryConfig()
        self.registry = MetricsRegistry(
            period_ms=self.config.period_ms, max_samples=self.config.max_samples
        )
        self.alerts = AlertEngine(rules)
        self.deadline_misses = 0
        self.samples_taken = 0
        self._sample_step = 0  # integer tick count on the virtual clock
        self._latencies_seen = 0
        self._recent_latencies: Deque[float] = deque(
            maxlen=self.config.latency_window
        )
        self._lag_sum = 0.0
        self._lag_count = 0
        self._lag_max = -math.inf
        self._finalized = False

    # -- engine-facing hook --------------------------------------------------

    def on_cycle(
        self,
        engine: Any,
        now: float,
        *,
        cpu_used_ms: float,
        overhead_ms: float,
        node_cpu: Optional[Mapping[int, Tuple[float, float]]] = None,
    ) -> None:
        """Per-cycle hook: drain latencies, sample when a period elapses.

        ``node_cpu`` (``{node: (cpu_used_ms, overhead_ms)}``) is passed
        by :class:`~repro.distributed.cluster.DistributedEngine` so the
        per-node CPU series can be merged into one registry.
        """
        self._drain_latencies(engine)
        if node_cpu is not None:
            for node in sorted(node_cpu):
                used, overhead = node_cpu[node]
                self.registry.counter(
                    "node_cpu_ms", {"node": str(node)}
                ).inc(used + overhead)
        if not self._sample_due(now):
            return
        self._collect(engine, now, cpu_used_ms, overhead_ms)
        self.registry.sample(now)
        self.samples_taken += 1
        self.alerts.evaluate(now, self.registry)

    def _sample_due(self, now: float) -> bool:
        period = self.config.period_ms
        if now + 1e-9 < (self._sample_step + 1) * period:
            return False
        # Catch up past skipped periods (cycle longer than the period)
        # while keeping the tick count integral (drift-free, KL005).
        self._sample_step = int(math.floor(now / period + 1e-9))
        return True

    # -- signal collection ---------------------------------------------------

    def _drain_latencies(self, engine: Any) -> None:
        latencies: Sequence[float] = engine.metrics.swm_latencies
        fresh = latencies[self._latencies_seen :]
        if not fresh:
            return
        self._latencies_seen = len(latencies)
        histogram = self.registry.histogram("latency_ms")
        misses = self.registry.counter("deadline_misses")
        for value in fresh:
            histogram.observe(value)
            self._recent_latencies.append(value)
            if value > self.config.deadline_slo_ms:
                self.deadline_misses += 1
                misses.inc()

    @staticmethod
    def _schedulers(engine: Any) -> List[Tuple[Optional[str], Any]]:
        """(node label, scheduler) pairs; one pair per node when
        decentralized, a single unlabelled pair otherwise."""
        node_schedulers = getattr(engine, "node_schedulers", None)
        if node_schedulers:
            return [(str(i), s) for i, s in enumerate(node_schedulers)]
        return [(None, engine.scheduler)]

    def _collect(
        self, engine: Any, now: float, cpu_used_ms: float, overhead_ms: float
    ) -> None:
        registry = self.registry
        queries = engine.queries
        registry.gauge("memory_utilization").set(
            engine.memory.utilization(queries)
        )
        registry.gauge("memory_bytes").set(engine.memory.used_bytes(queries))
        registry.counter("events_processed").set_total(
            engine.metrics.total_events_processed
        )
        registry.counter("cpu_ms").set_total(
            engine.metrics.busy_cpu_ms + engine.metrics.scheduler_overhead_ms
        )
        schedulers = self._schedulers(engine)
        mm_active = any(
            bool(getattr(s, "_mm_active", False)) for _, s in schedulers
        )
        registry.gauge("memory_mode_active").set(1.0 if mm_active else 0.0)
        if self._recent_latencies:
            registry.gauge("latency_recent_p99_ms").set(
                _percentile(self._recent_latencies, 99.0)
            )
        estimator = getattr(engine.scheduler, "estimator", None)
        for query in queries:
            qid = query.query_id
            q_labels = {"query": qid}
            registry.gauge("queue_depth", q_labels).set(query.queued_events)
            registry.gauge("query_memory_bytes", q_labels).set(query.memory_bytes)
            wm_ts = max(
                (
                    b.progress.last_watermark_ts
                    for b in query.bindings
                    if b.progress is not None
                ),
                default=-math.inf,
            )
            if math.isfinite(wm_ts):
                lag = now - wm_ts
                registry.gauge("watermark_lag_ms", q_labels).set(lag)
                self._lag_sum += lag
                self._lag_count += 1
                if lag > self._lag_max:
                    self._lag_max = lag
            if estimator is not None and query.bindings:
                progress = query.bindings[0].progress
                if progress is not None:
                    mu, _ = estimator.delay_moments(progress)
                    registry.gauge("swm_delay_mean_ms", q_labels).set(mu)
                    registry.gauge("swm_delay_std_ms", q_labels).set(
                        estimator.delay_std(progress)
                    )
            for node_label, scheduler in schedulers:
                slacks = getattr(scheduler, "last_slacks", None)
                if not slacks:
                    continue
                slack = slacks.get(qid)
                if slack is None or not math.isfinite(slack):
                    continue
                labels = dict(q_labels)
                if node_label is not None:
                    labels["node"] = node_label
                registry.gauge("slack_ms", labels).set(slack)
            if self.config.per_operator:
                for op in query.operators:
                    op_labels = {"query": qid, "operator": op.name}
                    registry.gauge("op_queue_depth", op_labels).set(
                        op.queued_events
                    )
                    registry.counter("op_cpu_ms", op_labels).set_total(
                        op.stats.busy_ms
                    )

    # -- finalization --------------------------------------------------------

    def finalize(self, metrics: Any, end_time: float) -> None:
        """Close open alerts and publish aggregates into ``RunMetrics``."""
        if self._finalized:
            return
        self._finalized = True
        self.alerts.finalize(end_time)
        metrics.deadline_misses = self.deadline_misses
        if self._lag_count > 0:
            metrics.watermark_lag_mean_ms = self._lag_sum / self._lag_count
            metrics.watermark_lag_max_ms = self._lag_max
        metrics.alerts_fired = len(self.alerts.events)
        metrics.alert_counts = self.alerts.counts()

    # -- trace serialization -------------------------------------------------

    def series_rows(self) -> List[Dict[str, Any]]:
        """``type=series`` rows (sorted by key; byte-deterministic)."""
        return self.registry.to_rows()

    def alert_rows(self) -> List[Dict[str, Any]]:
        """``type=alert`` rows (sorted by start/rule/series)."""
        return self.alerts.to_rows()


def _percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile without the numpy dependency tax
    on a hot per-sample path (inputs are small bounded windows)."""
    ordered = sorted(values)
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction
