"""Checkpointing and failover recovery for the streaming engines.

See ``docs/RESILIENCE.md`` for the checkpoint format, the recovery
strategies, and the invariant guarantees proven by the chaos test tier.
"""

from repro.resilience.checkpoint import (
    SCHEMA_VERSION,
    CheckpointCoordinator,
    CheckpointError,
    CheckpointStore,
    capture,
    capture_lineage,
    deserialize,
    restore,
    restore_lineage,
    serialize,
)
from repro.resilience.recovery import (
    STRATEGIES,
    RecoveryConfig,
    RecoveryEvent,
    RecoveryManager,
)

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointCoordinator",
    "CheckpointError",
    "CheckpointStore",
    "capture",
    "capture_lineage",
    "deserialize",
    "restore",
    "restore_lineage",
    "serialize",
    "STRATEGIES",
    "RecoveryConfig",
    "RecoveryEvent",
    "RecoveryManager",
]
