"""Deterministic engine checkpointing (versioned, JSON-serializable).

A checkpoint is a *global consistent snapshot* of one engine taken at a
scheduling-cycle boundary — the simulator's analogue of Flink's aligned
checkpoints. Because the simulator is a deterministic discrete-event
system, a snapshot does not need an event log to support replay: capturing
the source generation cursors (:class:`~repro.spe.query.PeriodicCursor`),
every RNG's bit-generator state (binding burst machines, delay models,
the engine RNG), the in-flight network heap, channel contents, operator
and window state, and the metric ledgers is sufficient to *regenerate*
the exact same traffic from the checkpoint onward. Restoring a snapshot
and re-running therefore reproduces the original event counts exactly,
which is what lets the invariant monitor prove no-loss/no-duplication
across a failover (see ``docs/RESILIENCE.md``).

Snapshots are plain dicts of JSON-safe builtins under a versioned schema
(:data:`SCHEMA_VERSION`) and serialize canonically — sorted keys, fixed
separators — so byte-level comparison of two serialized snapshots is a
meaningful state-equality check (the property tests rely on this).

Two restore modes:

* ``mode="resume"`` — full restore including the virtual clock and the
  complete metric state; used to continue a run in a *fresh* engine built
  from the same configuration (suspend/resume).
* ``mode="rollback"`` — restart-all failover within the *same* engine:
  stream state and the event-ledger metrics roll back to the checkpoint,
  while the clock and the processing-time accounting (cycles, CPU time,
  utilization samples, scheduler overhead) keep accumulating — a real
  cluster's wall clock does not rewind when a job restarts.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional

from repro.spe.events import EventBatch, LatencyMarker, RecordBatch, Watermark
from repro.spe.metrics import RunMetrics, UtilizationSample
from repro.spe.operators import (
    CountWindowedAggregate,
    Operator,
    SinkOperator,
    _WindowedOperatorBase,
)
from repro.spe.query import EpochStats, PeriodicCursor, Query, SourceBinding
from repro.spe.reorder import ReorderBuffer
from repro.spe.streams import Channel, _Entry
from repro.spe.watermarks import (
    BoundedOutOfOrderness,
    PunctuatedWatermarks,
    WatermarkGeneratorOperator,
    WatermarkStrategy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.lineage import LineageTracker
    from repro.spe.engine import Engine

#: checkpoint schema version; bumped on any incompatible layout change
#: (v2: channels may hold in-flight columnar RecordBatch runs, tag "rb";
#: v3: a lineage sidecar — capture_lineage/restore_lineage — may ride
#: alongside a snapshot in the store, never inside the snapshot itself;
#: v4: the in-flight network is captured through the engine's layout
#: helpers — the vectorized calendar queue and the scalar heap flatten
#: to the identical canonical (ingest_time, seq)-sorted list, and
#: restore loads into whichever layout the engine runs)
SCHEMA_VERSION = 4

#: RunMetrics scalar fields captured verbatim (the resilience counters —
#: checkpoints taken, recoveries, lost events — are deliberately absent:
#: they are processing-time accounting and never roll back).
_METRIC_SCALARS = (
    "duration_ms",
    "total_events_processed",
    "total_events_ingested",
    "events_shed",
    "late_events_dropped",
    "scheduler_overhead_ms",
    "busy_cpu_ms",
    "backpressure_cycles",
    "cycles",
    "fault_cycles",
    "watermarks_dropped_by_faults",
    "invariant_violations",
    "deadline_misses",
    "watermark_lag_max_ms",
    "watermark_lag_mean_ms",
    "alerts_fired",
)

#: the event-ledger subset restored on rollback: everything derived from
#: *which stream records exist*, nothing derived from *how long the
#: engine has been running*.
_LEDGER_LISTS = ("swm_latencies", "marker_latencies", "slowdowns")
_LEDGER_SCALARS = (
    "total_events_processed",
    "total_events_ingested",
    "events_shed",
    "watermarks_dropped_by_faults",
)


class CheckpointError(ValueError):
    """A snapshot cannot be taken, parsed, or applied to this engine."""


# -- small codecs -----------------------------------------------------------


def _rng_state(rng: Any) -> Dict[str, Any]:
    """A numpy Generator's bit-generator state (plain ints, JSON-exact)."""
    state: Dict[str, Any] = rng.bit_generator.state
    return state


def _set_rng_state(rng: Any, state: Dict[str, Any]) -> None:
    rng.bit_generator.state = state


def _encode_record(record: object) -> Dict[str, Any]:
    if isinstance(record, EventBatch):
        return {
            "t": "b",
            "count": record.count,
            "t_start": record.t_start,
            "t_end": record.t_end,
            "delay": record.delay,
            "bpe": record.bytes_per_event,
        }
    if isinstance(record, Watermark):
        return {
            "t": "w",
            "ts": record.timestamp,
            "src": record.source_id,
            "swm": record.is_swm,
        }
    if isinstance(record, LatencyMarker):
        return {"t": "m", "at": record.created_at, "id": record.marker_id}
    if isinstance(record, RecordBatch):
        # Unconsumed rows only (the consumed prefix before ``head`` is
        # dead state); restore rebases head to 0 with identical columns.
        h = record.head
        return {
            "t": "rb",
            "counts": record.counts[h:],
            "t_starts": record.t_starts[h:],
            "t_ends": record.t_ends[h:],
            "delays": record.delays[h:],
            "enq": record.enqueued_ats[h:],
            "bpe": record.bytes_per_event,
        }
    raise CheckpointError(f"unknown record type: {type(record)!r}")


def _decode_record(state: Dict[str, Any]) -> object:
    kind = state.get("t")
    if kind == "b":
        return EventBatch(
            count=state["count"],
            t_start=state["t_start"],
            t_end=state["t_end"],
            delay=state["delay"],
            bytes_per_event=state["bpe"],
        )
    if kind == "w":
        return Watermark(state["ts"], source_id=state["src"], is_swm=state["swm"])
    if kind == "m":
        return LatencyMarker(created_at=state["at"], marker_id=state["id"])
    if kind == "rb":
        rb = RecordBatch(state["bpe"])
        rb.counts = [float(v) for v in state["counts"]]
        rb.t_starts = [float(v) for v in state["t_starts"]]
        rb.t_ends = [float(v) for v in state["t_ends"]]
        rb.delays = [float(v) for v in state["delays"]]
        rb.enqueued_ats = [float(v) for v in state["enq"]]
        return rb
    raise CheckpointError(f"unknown record tag: {kind!r}")


def _cursor_state(cursor: PeriodicCursor) -> List[float]:
    return [cursor.origin, cursor.period, cursor.step]


def _restore_cursor(cursor: PeriodicCursor, state: List[float]) -> None:
    cursor.origin = float(state[0])
    cursor.period = float(state[1])
    cursor.step = int(state[2])


def _strategy_state(strategy: WatermarkStrategy) -> Dict[str, Any]:
    if isinstance(strategy, BoundedOutOfOrderness):
        return {
            "kind": "bounded",
            "max_event_time": strategy.max_event_time,
            "next_emit": strategy._next_emit,
        }
    if isinstance(strategy, PunctuatedWatermarks):
        return {"kind": "punctuated", "max_event_time": strategy.max_event_time}
    raise CheckpointError(
        f"watermark strategy {type(strategy).__name__} is not checkpointable"
    )


def _restore_strategy(strategy: WatermarkStrategy, state: Dict[str, Any]) -> None:
    if isinstance(strategy, BoundedOutOfOrderness):
        strategy.max_event_time = state["max_event_time"]
        strategy._next_emit = state["next_emit"]
    elif isinstance(strategy, PunctuatedWatermarks):
        strategy.max_event_time = state["max_event_time"]
    else:  # pragma: no cover - rejected at capture time
        raise CheckpointError(
            f"watermark strategy {type(strategy).__name__} is not checkpointable"
        )


# -- channels ---------------------------------------------------------------


def _channel_state(channel: Channel) -> Dict[str, Any]:
    # Private-attribute reads keep capture pure: the queued_events memo
    # path would mark owner flags, and capture must not mutate anything.
    return {
        "entries": [
            [_encode_record(e.record), e.enqueued_at] for e in channel._entries
        ],
        "pending": [
            [_encode_record(e.record), e.enqueued_at] for e in channel._pending
        ],
        "queued_events": channel._queued_events,
        "queued_bytes": channel._queued_bytes,
        "pushed": channel.events_pushed,
        "returned": channel.events_returned,
        "popped": channel.events_popped,
    }


def _restore_channel(channel: Channel, state: Dict[str, Any]) -> None:
    channel._entries = deque(
        _Entry(_decode_record(rec), at) for rec, at in state["entries"]
    )
    channel._pending = deque(
        _Entry(_decode_record(rec), at) for rec, at in state["pending"]
    )
    channel._queued_events = float(state["queued_events"])
    channel._queued_bytes = float(state["queued_bytes"])
    channel.events_pushed = float(state["pushed"])
    channel.events_returned = float(state["returned"])
    channel.events_popped = float(state["popped"])
    if channel._owner is not None:
        channel._owner._queues_dirty = True


# -- operators --------------------------------------------------------------


def _operator_state(op: Operator) -> Dict[str, Any]:
    state: Dict[str, Any] = {
        "stats": [
            op.stats.events_in,
            op.stats.events_out,
            op.stats.busy_ms,
            op.stats.late_events_dropped,
            op.stats.watermarks_seen,
            op.stats.panes_fired,
        ],
        "cost_multiplier": op.cost_multiplier,
        "inputs": [_channel_state(ch) for ch in op.inputs],
    }
    if isinstance(op, _WindowedOperatorBase):
        state["window"] = {
            "panes": sorted([s, c] for s, c in op._panes.items()),
            "pane_ends": sorted([s, e] for s, e in op._pane_ends.items()),
            "pane_heap": [list(item) for item in op._pane_heap],
            "input_watermarks": list(op._input_watermarks),
            "event_clock": op._event_clock,
        }
    if isinstance(op, CountWindowedAggregate):
        state["count_window"] = {
            "accumulated": op._accumulated,
            "windows_fired": op.windows_fired,
        }
    if isinstance(op, SinkOperator):
        state["sink"] = {
            "swm_latencies": [list(item) for item in op.swm_latencies],
            "marker_latencies": [list(item) for item in op.marker_latencies],
            "events_delivered": op.events_delivered,
        }
    if isinstance(op, WatermarkGeneratorOperator):
        state["wm_gen"] = {
            "last_emitted": op.last_emitted,
            "watermarks_emitted": op.watermarks_emitted,
            "regressions_suppressed": op.regressions_suppressed,
            "strategy": _strategy_state(op.strategy),
        }
    if isinstance(op, ReorderBuffer):
        state["reorder"] = {
            "buffer": [_encode_record(b) for b in op._buffer],
            "buffered_events": op._buffered_events,
            "buffered_bytes": op._buffered_bytes,
            "released_events": op.released_events,
        }
    return state


def _restore_operator(op: Operator, state: Dict[str, Any]) -> None:
    (
        op.stats.events_in,
        op.stats.events_out,
        op.stats.busy_ms,
        op.stats.late_events_dropped,
        watermarks_seen,
        panes_fired,
    ) = state["stats"]
    op.stats.watermarks_seen = int(watermarks_seen)
    op.stats.panes_fired = int(panes_fired)
    op.cost_multiplier = float(state["cost_multiplier"])
    for channel, ch_state in zip(op.inputs, state["inputs"]):
        _restore_channel(channel, ch_state)
    if isinstance(op, _WindowedOperatorBase):
        window = state["window"]
        op._panes = {float(s): float(c) for s, c in window["panes"]}
        op._pane_ends = {float(s): float(e) for s, e in window["pane_ends"]}
        # Restored verbatim (it is already a valid heap): keeps the pop
        # order — and thus the resumed run — exactly reproducible.
        op._pane_heap = [(float(e), float(s)) for e, s in window["pane_heap"]]
        op._input_watermarks = [float(w) for w in window["input_watermarks"]]
        op._event_clock = float(window["event_clock"])
        # The pane table was rebuilt: drop the state-sum memo so the next
        # read recomputes over the restored (canonically ordered) dict.
        op._invalidate_state_memo()
    if isinstance(op, CountWindowedAggregate):
        count_window = state["count_window"]
        op._accumulated = float(count_window["accumulated"])
        op.windows_fired = int(count_window["windows_fired"])
    if isinstance(op, SinkOperator):
        sink = state["sink"]
        op.swm_latencies = [(float(a), float(b)) for a, b in sink["swm_latencies"]]
        op.marker_latencies = [
            (float(a), float(b)) for a, b in sink["marker_latencies"]
        ]
        op.events_delivered = float(sink["events_delivered"])
    if isinstance(op, WatermarkGeneratorOperator):
        wm_gen = state["wm_gen"]
        op.last_emitted = float(wm_gen["last_emitted"])
        op.watermarks_emitted = int(wm_gen["watermarks_emitted"])
        op.regressions_suppressed = int(wm_gen["regressions_suppressed"])
        _restore_strategy(op.strategy, wm_gen["strategy"])
    if isinstance(op, ReorderBuffer):
        reorder = state["reorder"]
        buffer: List[EventBatch] = []
        for encoded in reorder["buffer"]:
            record = _decode_record(encoded)
            if not isinstance(record, EventBatch):  # pragma: no cover - defensive
                raise CheckpointError(
                    f"reorder buffer holds a non-batch record: {record!r}"
                )
            buffer.append(record)
        op._buffer = buffer
        op._buffered_events = float(reorder["buffered_events"])
        op._buffered_bytes = float(reorder["buffered_bytes"])
        op.released_events = float(reorder["released_events"])


# -- source bindings --------------------------------------------------------


def _binding_state(binding: SourceBinding) -> Dict[str, Any]:
    state: Dict[str, Any] = {
        "gen_cursor": _cursor_state(binding._gen_cursor),
        "watermark_cursor": _cursor_state(binding._watermark_cursor),
        "marker_cursor": _cursor_state(binding._marker_cursor),
        "events_ingested": binding.events_ingested,
        "watermarks_ingested": binding.watermarks_ingested,
        "rng": _rng_state(binding.rng),
        "bursting": binding.bursting,
        "burst_state_until": binding.burst_state_until,
    }
    delay_model = binding.spec.delay_model
    if getattr(delay_model, "_rng", None) is not None:
        # The logical (consumed-draw) state, not the live one: amortized
        # prefetching may have run the generator ahead of the values
        # handed out, and snapshot bytes must not depend on that.
        state["delay_rng"] = delay_model.checkpoint_rng_state()
    progress = binding.progress
    if progress is not None:
        state["progress"] = {
            "epoch_index": progress.epoch_index,
            "epochs": [
                [e.mu, e.chi, e.swm_ingest_time, e.swm_timestamp]
                for e in progress.epochs
            ],
            "delay_sum": progress._delay_sum,
            "delay_sq_sum": progress._delay_sq_sum,
            "delay_weight": progress._delay_weight,
            "last_watermark_ts": progress.last_watermark_ts,
            "last_swm_ingest_time": progress.last_swm_ingest_time,
            "next_deadline": progress.next_deadline,
        }
    return state


def _restore_binding(binding: SourceBinding, state: Dict[str, Any]) -> None:
    _restore_cursor(binding._gen_cursor, state["gen_cursor"])
    _restore_cursor(binding._watermark_cursor, state["watermark_cursor"])
    _restore_cursor(binding._marker_cursor, state["marker_cursor"])
    binding.events_ingested = float(state["events_ingested"])
    binding.watermarks_ingested = int(state["watermarks_ingested"])
    _set_rng_state(binding.rng, state["rng"])
    binding.bursting = bool(state["bursting"])
    binding.burst_state_until = float(state["burst_state_until"])
    delay_model = binding.spec.delay_model
    if getattr(delay_model, "_rng", None) is not None and "delay_rng" in state:
        # Installs the logical state and discards any prefetched draws;
        # the resumed stream re-prefetches from here, bit-identically.
        delay_model.restore_rng_state(state["delay_rng"])
    progress = binding.progress
    progress_state = state.get("progress")
    if progress is not None and progress_state is not None:
        progress.epoch_index = int(progress_state["epoch_index"])
        progress.epochs = deque(
            (EpochStats(*row) for row in progress_state["epochs"]),
            maxlen=progress.history_limit,
        )
        progress._delay_sum = float(progress_state["delay_sum"])
        progress._delay_sq_sum = float(progress_state["delay_sq_sum"])
        progress._delay_weight = float(progress_state["delay_weight"])
        progress.last_watermark_ts = float(progress_state["last_watermark_ts"])
        progress.last_swm_ingest_time = progress_state["last_swm_ingest_time"]
        progress.next_deadline = progress_state["next_deadline"]
        # The restore mutated the tracker in place: drop the estimator's
        # delay-moments memo so the next read recomputes from the
        # restored history.
        progress._invalidate_moments_memo()


# -- metrics ----------------------------------------------------------------


def _metrics_state(metrics: RunMetrics) -> Dict[str, Any]:
    return {
        "scalars": {name: getattr(metrics, name) for name in _METRIC_SCALARS},
        "swm_latencies": list(metrics.swm_latencies),
        "marker_latencies": list(metrics.marker_latencies),
        "slowdowns": list(metrics.slowdowns),
        "per_query_swm_latencies": {
            qid: list(values)
            for qid, values in metrics.per_query_swm_latencies.items()
        },
        "samples": [
            [s.time, s.memory_bytes, s.cpu_fraction, s.events_processed]
            for s in metrics.samples
        ],
        "alert_counts": dict(metrics.alert_counts),
    }


def _restore_metrics(metrics: RunMetrics, state: Dict[str, Any], mode: str) -> None:
    if mode == "resume":
        for name in _METRIC_SCALARS:
            setattr(metrics, name, state["scalars"][name])
        metrics.samples = [UtilizationSample(*row) for row in state["samples"]]
        metrics.alert_counts = dict(state["alert_counts"])
    else:  # rollback: only the event ledger rewinds
        for name in _LEDGER_SCALARS:
            setattr(metrics, name, state["scalars"][name])
    for name in _LEDGER_LISTS:
        setattr(metrics, name, list(state[name]))
    metrics.per_query_swm_latencies = {
        qid: list(values)
        for qid, values in state["per_query_swm_latencies"].items()
    }


# -- engine-level helpers ---------------------------------------------------


def _schedulers(engine: "Engine") -> List[Any]:
    """One scheduler per node when decentralized, else the single policy."""
    node_schedulers = getattr(engine, "node_schedulers", None)
    return list(node_schedulers) if node_schedulers else [engine.scheduler]


def _board_state(board: Any) -> List[Any]:
    rows = []
    for (node, query_id), history in sorted(board._entries.items()):
        rows.append(
            [
                node,
                query_id,
                [
                    [
                        published_at,
                        {
                            "published_at": info.published_at,
                            "mu": info.mu,
                            "chi": info.chi,
                            "last_watermark_ts": info.last_watermark_ts,
                            "next_deadline": info.next_deadline,
                            "last_swm_ingest_time": info.last_swm_ingest_time,
                            "pending_cost_ms": info.pending_cost_ms,
                        },
                    ]
                    for published_at, info in history
                ],
            ]
        )
    return rows


def _restore_board(board: Any, rows: List[Any]) -> None:
    from repro.distributed.forwarding import QueryInfo

    board._entries = {
        (int(node), str(query_id)): [
            (float(published_at), QueryInfo(**info))
            for published_at, info in history
        ]
        for node, query_id, history in rows
    }


def _check_topology(engine: "Engine", snapshot: Dict[str, Any]) -> None:
    """The snapshot must describe this engine's exact query topology."""
    queries = snapshot["queries"]
    if len(queries) != len(engine.queries):
        raise CheckpointError(
            f"snapshot holds {len(queries)} queries, engine has "
            f"{len(engine.queries)}"
        )
    for query, q_state in zip(engine.queries, queries):
        if q_state["query_id"] != query.query_id:
            raise CheckpointError(
                f"query id mismatch: snapshot {q_state['query_id']!r} vs "
                f"engine {query.query_id!r}"
            )
        names = [op.name for op in query.operators]
        if q_state["operator_names"] != names:
            raise CheckpointError(
                f"operator topology of {query.query_id!r} changed: snapshot "
                f"{q_state['operator_names']} vs engine {names}"
            )
        if len(q_state["bindings"]) != len(query.bindings):
            raise CheckpointError(
                f"source count of {query.query_id!r} changed"
            )
        for op, op_state in zip(query.operators, q_state["operators"]):
            if len(op_state["inputs"]) != len(op.inputs):
                raise CheckpointError(
                    f"input count of {query.query_id}.{op.name} changed"
                )


# -- public API -------------------------------------------------------------


def capture(engine: "Engine") -> Dict[str, Any]:
    """Snapshot ``engine`` into a JSON-safe dict. Pure: mutates nothing."""
    # The engine flattens whichever network layout is active (scalar heap
    # or vectorized calendar queue) into the same canonical
    # (ingest_time, seq)-sorted list, so snapshot bytes are identical
    # across kernel paths.
    network = [
        [ingest_time, seq, query.query_id, query.bindings.index(binding),
         _encode_record(record)]
        for ingest_time, seq, query, binding, record in engine.network_entries
    ]
    snapshot: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "time": engine.clock.now,
        "seq": engine._seq,
        "throttle_requested": engine._throttle_requested,
        "events_in_prev": engine._events_in_prev,
        "swm_drained": dict(engine._swm_drained),
        "marker_drained": dict(engine._marker_drained),
        "engine_rng": _rng_state(engine._rng),
        "external_bytes": engine.memory.external_bytes,
        "network": network,
        "schedulers": [s.snapshot_state() for s in _schedulers(engine)],
        "metrics": _metrics_state(engine.metrics),
        "queries": [
            {
                "query_id": query.query_id,
                "operator_names": [op.name for op in query.operators],
                "operators": [_operator_state(op) for op in query.operators],
                "bindings": [_binding_state(b) for b in query.bindings],
            }
            for query in engine.queries
        ],
    }
    board = getattr(engine, "board", None)
    if board is not None:
        snapshot["board"] = _board_state(board)
    return snapshot


def restore(engine: "Engine", snapshot: Dict[str, Any], *, mode: str = "resume") -> None:
    """Apply ``snapshot`` to ``engine``.

    ``mode="resume"`` restores everything, including the virtual clock
    (which only moves forward: resuming an engine that has already run
    past the snapshot raises). ``mode="rollback"`` rewinds stream state
    and the event-ledger metrics only — the clock and the
    processing-time accounting keep running, as in a real failover.
    """
    if mode not in ("resume", "rollback"):
        raise CheckpointError(f"unknown restore mode: {mode!r}")
    if snapshot.get("schema") != SCHEMA_VERSION:
        raise CheckpointError(
            f"snapshot schema {snapshot.get('schema')!r} != "
            f"supported {SCHEMA_VERSION}"
        )
    _check_topology(engine, snapshot)
    schedulers = _schedulers(engine)
    scheduler_states = snapshot["schedulers"]
    if len(scheduler_states) != len(schedulers):
        raise CheckpointError(
            f"snapshot holds {len(scheduler_states)} scheduler states, "
            f"engine has {len(schedulers)}"
        )
    if mode == "resume":
        if engine.clock.now > snapshot["time"] + 1e-9:
            raise CheckpointError(
                f"cannot resume backwards: engine at {engine.clock.now}ms, "
                f"snapshot at {snapshot['time']}ms"
            )
        engine.clock.advance_to(snapshot["time"])
    engine._seq = int(snapshot["seq"])
    engine._throttle_requested = bool(snapshot["throttle_requested"])
    engine._events_in_prev = float(snapshot["events_in_prev"])
    engine._swm_drained = {k: int(v) for k, v in snapshot["swm_drained"].items()}
    engine._marker_drained = {
        k: int(v) for k, v in snapshot["marker_drained"].items()
    }
    _set_rng_state(engine._rng, snapshot["engine_rng"])
    engine.memory.external_bytes = float(snapshot["external_bytes"])
    query_by_id = {q.query_id: q for q in engine.queries}
    network = []
    for ingest_time, seq, query_id, binding_index, record in snapshot["network"]:
        query = query_by_id[query_id]
        network.append(
            (
                float(ingest_time),
                int(seq),
                query,
                query.bindings[int(binding_index)],
                _decode_record(record),
            )
        )
    # The engine files the sorted list into its active network layout
    # (heap: a time-sorted list is a valid heap; calendar queue: bucket
    # keys are recomputed against the restored clock).
    engine.network_entries = network
    for scheduler, state in zip(schedulers, scheduler_states):
        scheduler.restore_state(state)
    board = getattr(engine, "board", None)
    if board is not None and "board" in snapshot:
        _restore_board(board, snapshot["board"])
    for query, q_state in zip(engine.queries, snapshot["queries"]):
        for op, op_state in zip(query.operators, q_state["operators"]):
            _restore_operator(op, op_state)
        for binding, b_state in zip(query.bindings, q_state["bindings"]):
            _restore_binding(binding, b_state)
    _restore_metrics(engine.metrics, snapshot["metrics"], mode)


def capture_lineage(tracker: "LineageTracker") -> Dict[str, Any]:
    """Sidecar snapshot of a :class:`~repro.obs.lineage.LineageTracker`.

    In-flight lineage state (sampled records riding queues, records
    parked on window panes, the completed-record log, and the
    SWM-forecast audit ledgers) survives checkpoint/restore through this
    codec pair. The sidecar is deliberately *not* part of the engine
    snapshot: enabling tracing must leave checkpoint bytes identical to
    an untraced run, so the store carries it alongside the snapshot.
    Dict iterations are sorted so equal states encode identically.
    """
    return {
        "inflight": [
            [list(key), [[rec.encode() for rec in group] for group in groups]]
            for key, groups in sorted(tracker._inflight.items())
        ],
        "window_wait": [
            [list(key), [rec.encode() for rec in records]]
            for key, records in sorted(tracker._window_wait.items())
        ],
        "completed": [dict(row) for row in tracker._completed],
        "rows_sampled": tracker.rows_sampled,
        "spans_recorded": tracker.spans_recorded,
        "forecast": tracker.forecast.encode(),
    }


def restore_lineage(tracker: "LineageTracker", state: Dict[str, Any]) -> None:
    """Apply a sidecar captured by :func:`capture_lineage`."""
    from repro.obs.lineage import _Record

    tracker._inflight = {
        (str(k[0]), str(k[1]), float(k[2])): deque(
            [_Record.decode(r) for r in group] for group in groups
        )
        for k, groups in state["inflight"]
    }
    tracker._window_wait = {
        (str(k[0]), str(k[1]), float(k[2])): [
            _Record.decode(r) for r in records
        ]
        for k, records in state["window_wait"]
    }
    tracker._completed = [dict(row) for row in state["completed"]]
    tracker.rows_sampled = int(state["rows_sampled"])
    tracker.spans_recorded = int(state["spans_recorded"])
    tracker.forecast.restore(state["forecast"])


def serialize(snapshot: Dict[str, Any]) -> str:
    """Canonical JSON text: sorted keys, fixed separators, non-finite
    floats as ``Infinity``/``-Infinity``/``NaN`` literals (round-trip
    exact in Python's json). Equal states serialize to equal bytes."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def deserialize(text: str) -> Dict[str, Any]:
    """Parse a snapshot serialized by :func:`serialize`.

    Raises :class:`CheckpointError` (not a bare ``json`` error) on
    corrupt input, so callers handle storage corruption and schema
    drift through one exception type.
    """
    try:
        snapshot = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"corrupt snapshot: not valid JSON at line {exc.lineno} "
            f"column {exc.colno} ({exc.msg}); the checkpoint file is "
            "truncated or damaged — discard it and fall back to an "
            "earlier checkpoint"
        ) from exc
    if not isinstance(snapshot, dict):
        raise CheckpointError(
            "corrupt snapshot: text decodes to "
            f"{type(snapshot).__name__}, expected a snapshot object"
        )
    return snapshot


class CheckpointStore:
    """In-memory ring of the most recent snapshots."""

    def __init__(self, keep: int = 4) -> None:
        if keep < 1:
            raise ValueError(f"must keep at least one checkpoint: {keep}")
        self.keep = keep
        self._snapshots: List[Dict[str, Any]] = []
        # lineage sidecars, index-aligned with _snapshots (None when the
        # engine ran untraced — the common case)
        self._lineage: List[Optional[Dict[str, Any]]] = []

    def add(
        self,
        snapshot: Dict[str, Any],
        lineage: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._snapshots.append(snapshot)
        self._lineage.append(lineage)
        if len(self._snapshots) > self.keep:
            drop = len(self._snapshots) - self.keep
            del self._snapshots[:drop]
            del self._lineage[:drop]

    def latest(self) -> Optional[Dict[str, Any]]:
        return self._snapshots[-1] if self._snapshots else None

    def latest_lineage(self) -> Optional[Dict[str, Any]]:
        """The lineage sidecar captured with the latest snapshot, if any."""
        return self._lineage[-1] if self._lineage else None

    def times(self) -> List[float]:
        return [float(s["time"]) for s in self._snapshots]

    def __len__(self) -> int:
        return len(self._snapshots)


class CheckpointCoordinator:
    """Takes aligned periodic checkpoints on the virtual clock.

    Attached to an engine via ``Engine(..., checkpoints=coordinator)``;
    the engine calls :meth:`maybe_checkpoint` at the end of every cycle.
    A checkpoint is due every ``period_ms`` of virtual time but is
    *skipped* while any node is down — snapshots must be globally
    consistent, and a failed node cannot contribute its state (the
    alignment rule of checkpoint-based recovery).
    """

    def __init__(self, period_ms: float, *, keep: int = 4) -> None:
        if period_ms <= 0:
            raise ValueError(f"checkpoint period must be positive: {period_ms}")
        self.period_ms = float(period_ms)
        self.store = CheckpointStore(keep)
        self._step = 0

    def ensure_baseline(self, engine: "Engine") -> None:
        """Guarantee at least one snapshot exists (taken at run start),
        so a failure in the first period can still roll back."""
        if self.store.latest() is None:
            self._take(engine)

    def maybe_checkpoint(
        self, engine: "Engine", now: float, down_nodes: FrozenSet[int] = frozenset()
    ) -> bool:
        """Take a checkpoint if one is due at ``now``; returns True if taken."""
        if now + 1e-9 < (self._step + 1) * self.period_ms:
            return False
        self._step = int(math.floor(now / self.period_ms + 1e-9))
        if down_nodes:
            return False  # unaligned: retry at the next period boundary
        self._take(engine)
        return True

    def _take(self, engine: "Engine") -> None:
        snapshot = capture(engine)
        tracker = getattr(engine, "lineage", None)
        # The sidecar rides the store but never enters the snapshot, so
        # checkpoint bytes (and the bytes accounting below) are identical
        # with tracing on or off.
        self.store.add(
            snapshot,
            lineage=capture_lineage(tracker) if tracker is not None else None,
        )
        engine.metrics.checkpoints_taken += 1
        engine.metrics.checkpoint_bytes_last = len(serialize(snapshot))
