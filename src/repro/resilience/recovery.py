"""Failure detection and recovery strategies on top of checkpoints.

A :class:`RecoveryManager` sits between the fault plan and the engine's
cycle loop. Each cycle the engine reports the *raw* set of down nodes
(straight from :meth:`repro.faults.plan.FaultPlan.node_down`); the
manager detects transitions, drives the configured strategy, and returns
the *effective* down set the engine should act on:

* ``restart`` — restart-from-checkpoint. The node stays dark for the
  whole failure episode (work placed on it is paused, exactly as
  before); when it returns, *all* state rolls back to the last global
  checkpoint and the sources replay deterministically from there. This
  is Flink's restart-all failover: recovery time ≈ episode length, and
  some work between the checkpoint and the failure is recomputed.
* ``standby`` — hot-standby promotion. On detection the engine rolls
  back to the last checkpoint and a standby immediately takes over the
  failed node's operators (on :class:`~repro.distributed.cluster.
  DistributedEngine` they are re-placed onto a surviving node; the
  single-node :class:`~repro.spe.engine.Engine` models an in-place
  standby). The node is masked as healthy for the rest of the episode,
  so recovery time ≈ one detection cycle.
* ``none`` — no recovery: the crash wipes the failed node's queues and
  window state. The lost events are counted in
  ``metrics.events_lost_to_failures`` and reported to the
  :class:`~repro.faults.invariants.InvariantMonitor`, which tolerates
  the loss *only* because recovery is explicitly disabled.

Leaving ``recovery=None`` on the engine keeps the legacy semantics
(lossless pause, no accounting) untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional, Tuple

from repro.faults.plan import NodeFailure
from repro.resilience import checkpoint as checkpoint_mod
from repro.resilience.checkpoint import CheckpointCoordinator
from repro.spe.operators import CountWindowedAggregate, _WindowedOperatorBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spe.engine import Engine

STRATEGIES = ("restart", "standby", "none")

#: pre/post window floor for the latency-inflation metric (virtual ms)
_INFLATION_WINDOW_FLOOR_MS = 5_000.0


@dataclass(frozen=True)
class RecoveryConfig:
    """Which strategy to run when a node failure is detected."""

    strategy: str

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown recovery strategy {self.strategy!r}; "
                f"expected one of {STRATEGIES}"
            )


@dataclass
class RecoveryEvent:
    """One detected failure and what recovery did about it."""

    node: int
    strategy: str
    failed_at: float
    detected_at: float
    recovered_at: Optional[float] = None
    checkpoint_time: Optional[float] = None
    events_lost: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "strategy": self.strategy,
            "failed_at": self.failed_at,
            "detected_at": self.detected_at,
            "recovered_at": self.recovered_at,
            "checkpoint_time": self.checkpoint_time,
            "events_lost": self.events_lost,
        }


def _node_operators(engine: "Engine", node: int) -> List[Tuple[Any, Any]]:
    """(query, operator) pairs placed on ``node`` (all of them when the
    engine has no physical plan — the single-node case)."""
    plan = getattr(engine, "plan", None)
    pairs = []
    for query in engine.queries:
        for op in query.operators:
            if plan is None or plan.node_of[id(op)] == node:
                pairs.append((query, op))
    return pairs


def _wipe_node_state(engine: "Engine", node: int) -> Tuple[Dict[str, float], float]:
    """Model a crash with no recovery: drop the node's queued/in-flight
    events and volatile window state. Returns (entry-channel losses by
    query id, total events lost)."""
    entry_channels = {
        id(binding.channel): query.query_id
        for query in engine.queries
        for binding in query.bindings
    }
    lost_entry: Dict[str, float] = {}
    total_lost = 0.0
    for query, op in _node_operators(engine, node):
        for channel in op.inputs:
            queued = channel.queued_events
            if queued > 0:
                total_lost += queued
                query_id = entry_channels.get(id(channel))
                if query_id is not None:
                    lost_entry[query_id] = lost_entry.get(query_id, 0.0) + queued
            channel.clear()
            # In-flight records addressed to a dead node are lost too;
            # they were never booked as pushed, so this is count-neutral.
            channel._pending.clear()
        if isinstance(op, _WindowedOperatorBase):
            op._panes.clear()
            op._pane_ends.clear()
            op._pane_heap.clear()
        if isinstance(op, CountWindowedAggregate):
            op._accumulated = 0.0
    return lost_entry, total_lost


class RecoveryManager:
    """Detects node-failure transitions and applies a recovery strategy."""

    def __init__(
        self,
        config: RecoveryConfig,
        coordinator: Optional[CheckpointCoordinator] = None,
    ) -> None:
        if config.strategy != "none" and coordinator is None:
            raise ValueError(
                f"strategy {config.strategy!r} needs a CheckpointCoordinator"
            )
        self.config = config
        self.coordinator = coordinator
        self.events: List[RecoveryEvent] = []
        self._down: set = set()
        self._masked: Dict[int, float] = {}
        self._pending_restart: Dict[int, RecoveryEvent] = {}
        self._began = False

    # -- engine hooks -------------------------------------------------------

    def begin_run(self, engine: "Engine") -> None:
        """Take the baseline checkpoint so an early failure can roll back."""
        self._began = True
        if self.coordinator is not None:
            self.coordinator.ensure_baseline(engine)

    def on_cycle(
        self, engine: "Engine", raw_down: FrozenSet[int], now: float
    ) -> FrozenSet[int]:
        """Map the fault plan's raw down set to the effective one."""
        if not self._began:
            self.begin_run(engine)
        self._masked = {n: until for n, until in self._masked.items() if now < until}
        effective = {n for n in raw_down if n not in self._masked}
        for node in sorted(self._down - effective):
            self._down.discard(node)
            self._on_return(engine, node, now)
        for node in sorted(effective - self._down):
            self._down.add(node)
            if self._on_failure(engine, node, now):
                # standby promoted: the node's work moved, so from the
                # engine's perspective nothing is down anymore
                effective.discard(node)
                self._down.discard(node)
        return frozenset(effective)

    def finalize(self, engine: "Engine") -> None:
        """Derive the post-failure latency-inflation metric: mean sink
        latency in a window after recovery over the same-width window
        before the failure, averaged across recoveries."""
        ratios = []
        for event in self.events:
            if event.recovered_at is None:
                continue
            window = max(
                _INFLATION_WINDOW_FLOOR_MS,
                2.0 * (event.recovered_at - event.failed_at),
            )
            # The rollback truncated sink output between the checkpoint
            # and the failure, so the healthy-baseline window ends at the
            # checkpoint (when there was one), not at the failure itself.
            pre_end = (
                event.checkpoint_time
                if event.checkpoint_time is not None
                else event.failed_at
            )
            pre: List[float] = []
            post: List[float] = []
            for query in engine.queries:
                for at, latency in query.sink.swm_latencies:
                    if pre_end - window <= at < pre_end:
                        pre.append(latency)
                    elif event.recovered_at <= at < event.recovered_at + window:
                        post.append(latency)
            if pre and post:
                pre_mean = sum(pre) / len(pre)
                if pre_mean > 0:
                    ratios.append((sum(post) / len(post)) / pre_mean)
        if ratios:
            engine.metrics.post_failure_latency_inflation = float(
                sum(ratios) / len(ratios)
            )

    # -- transitions --------------------------------------------------------

    def _episode(self, engine: "Engine", node: int, now: float) -> Optional[NodeFailure]:
        faults = engine.faults
        if faults is None:
            return None
        best: Optional[NodeFailure] = None
        for fault in faults:
            if (
                isinstance(fault, NodeFailure)
                and fault.node == node
                and fault.active(now)
            ):
                if best is None or fault.start_ms < best.start_ms:
                    best = fault
        return best

    def _on_failure(self, engine: "Engine", node: int, now: float) -> bool:
        """Handle a newly-down node; returns True if a standby took over."""
        episode = self._episode(engine, node, now)
        failed_at = episode.start_ms if episode is not None else now
        episode_end = episode.end_ms if episode is not None else now
        if self.config.strategy == "none":
            lost_entry, total_lost = _wipe_node_state(engine, node)
            engine.metrics.events_lost_to_failures += total_lost
            if engine.invariants is not None:
                engine.invariants.on_crash(
                    engine, lost_entry, recovery_enabled=False
                )
            event = RecoveryEvent(
                node, "none", failed_at, now, events_lost=total_lost
            )
            self.events.append(event)
            engine.metrics.recovery_events.append(event.to_dict())
            return False
        if self.config.strategy == "standby":
            checkpoint_time = self._rollback(engine, node)
            self._masked[node] = episode_end
            event = RecoveryEvent(
                node, "standby", failed_at, now,
                recovered_at=now, checkpoint_time=checkpoint_time,
            )
            self._commit_recovery(engine, event)
            engine._on_standby_promotion(node, now)
            return True
        # restart: stay dark for the episode, roll back when the node returns
        self._pending_restart[node] = RecoveryEvent(node, "restart", failed_at, now)
        return False

    def _on_return(self, engine: "Engine", node: int, now: float) -> None:
        event = self._pending_restart.pop(node, None)
        if event is None:
            return
        event.checkpoint_time = self._rollback(engine, node)
        event.recovered_at = now
        self._commit_recovery(engine, event)

    def _rollback(self, engine: "Engine", node: int) -> Optional[float]:
        """Roll the whole engine back to the latest checkpoint; returns the
        checkpoint time, or None if there was nothing to roll back to (in
        which case the crash loss stands and the invariant monitor flags
        it — recovery was enabled but failed to preserve the events)."""
        assert self.coordinator is not None
        snapshot = self.coordinator.store.latest()
        if snapshot is None:
            lost_entry, total_lost = _wipe_node_state(engine, node)
            engine.metrics.events_lost_to_failures += total_lost
            if engine.invariants is not None:
                engine.invariants.on_crash(
                    engine, lost_entry, recovery_enabled=True
                )
            return None
        checkpoint_mod.restore(engine, snapshot, mode="rollback")
        tracker = getattr(engine, "lineage", None)
        if tracker is not None:
            sidecar = self.coordinator.store.latest_lineage()
            if sidecar is not None:
                # Roll the in-flight lineage state back with the stream
                # state it shadows, so span chains stay consistent with
                # the replayed records.
                checkpoint_mod.restore_lineage(tracker, sidecar)
        if engine.invariants is not None:
            engine.invariants.on_rollback(engine)
        return float(snapshot["time"])

    def _commit_recovery(self, engine: "Engine", event: RecoveryEvent) -> None:
        self.events.append(event)
        metrics = engine.metrics
        metrics.recoveries += 1
        assert event.recovered_at is not None
        metrics.recovery_time_ms.append(event.recovered_at - event.failed_at)
        if event.checkpoint_time is not None:
            metrics.replay_span_ms.append(event.recovered_at - event.checkpoint_time)
        metrics.recovery_events.append(event.to_dict())
