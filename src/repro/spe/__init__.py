"""The stream processing engine substrate (discrete-event simulator)."""

from repro.spe.engine import Engine
from repro.spe.events import EventBatch, LatencyMarker, Watermark
from repro.spe.memory import GIB, MemoryConfig, MemoryModel
from repro.spe.metrics import RunMetrics, cdf_points, mean_with_ci, percentile
from repro.spe.chaining import FusedOperator, fuse_stateless, fusible_runs
from repro.spe.operators import (
    CountWindowedAggregate,
    FilterOperator,
    FlatMapOperator,
    MapOperator,
    Operator,
    SinkOperator,
    WindowedAggregate,
    WindowedJoin,
)
from repro.spe.reorder import ReorderBuffer
from repro.spe.watermarks import (
    BoundedOutOfOrderness,
    PunctuatedWatermarks,
    WatermarkGeneratorOperator,
    WatermarkStrategy,
)
from repro.spe.query import Query, SourceBinding, SourceSpec, StreamProgress, chain
from repro.spe.simtime import VirtualClock, millis, seconds
from repro.spe.streams import Channel
from repro.spe.windows import (
    CountWindows,
    Pane,
    SlidingEventTimeWindows,
    TumblingEventTimeWindows,
    WindowAssigner,
)

__all__ = [
    "Engine",
    "EventBatch",
    "Watermark",
    "LatencyMarker",
    "MemoryConfig",
    "MemoryModel",
    "GIB",
    "RunMetrics",
    "percentile",
    "cdf_points",
    "mean_with_ci",
    "Operator",
    "MapOperator",
    "FilterOperator",
    "FlatMapOperator",
    "WindowedAggregate",
    "WindowedJoin",
    "CountWindowedAggregate",
    "SinkOperator",
    "ReorderBuffer",
    "FusedOperator",
    "WatermarkStrategy",
    "BoundedOutOfOrderness",
    "PunctuatedWatermarks",
    "WatermarkGeneratorOperator",
    "fuse_stateless",
    "fusible_runs",
    "Query",
    "SourceBinding",
    "SourceSpec",
    "StreamProgress",
    "chain",
    "VirtualClock",
    "seconds",
    "millis",
    "Channel",
    "Pane",
    "WindowAssigner",
    "SlidingEventTimeWindows",
    "TumblingEventTimeWindows",
    "CountWindows",
]
