"""Operator chaining (fusion).

Flink deploys applications as Tasks that are "either operators or a
chain of operators" (Sec. 5): consecutive stateless operators are fused
into one task so records flow through function calls instead of queues.
Fusion reduces per-record queue handling and scheduling granularity at
the cost of coarser scheduling decisions.

:func:`fuse_stateless` builds the fused equivalent of a stateless
segment: per-event cost is the sum of each member's cost discounted by
the selectivity of the members before it (an event dropped by the first
filter never pays the later costs), and selectivity is the product.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.spe.operators import Operator, _WindowedOperatorBase
from repro.spe.operators import CountWindowedAggregate, SinkOperator


def is_stateless(op: Operator) -> bool:
    """True for operators that hold no window/accumulator state."""
    return not isinstance(
        op, (_WindowedOperatorBase, CountWindowedAggregate, SinkOperator)
    ) and type(op).__name__ != "ReorderBuffer"


class FusedOperator(Operator):
    """A chain of stateless operators deployed as a single task."""

    def __init__(self, name: str, members: Sequence[Operator]):
        if not members:
            raise ValueError("cannot fuse an empty chain")
        for member in members:
            if not is_stateless(member):
                raise ValueError(
                    f"cannot fuse stateful operator {member.name!r}"
                )
            if len(member.inputs) != 1:
                raise ValueError(
                    f"cannot fuse multi-input operator {member.name!r}"
                )
        cost = 0.0
        selectivity = 1.0
        for member in members:
            cost += selectivity * member.cost_per_event_ms
            selectivity *= member.selectivity
        super().__init__(
            name,
            cost_per_event_ms=cost,
            selectivity=selectivity,
            out_bytes_per_event=members[-1].out_bytes_per_event,
        )
        self.members: List[Operator] = list(members)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = "+".join(m.name.rsplit(".", 1)[-1] for m in self.members)
        return f"FusedOperator({inner})"


def fuse_stateless(ops: Sequence[Operator], name: str | None = None) -> FusedOperator:
    """Fuse a run of stateless unary operators into one task."""
    fused_name = name or "+".join(op.name for op in ops)
    return FusedOperator(fused_name, ops)


def fusible_runs(operators: Sequence[Operator]) -> List[List[Operator]]:
    """Partition a pipeline into maximal runs of fusible operators.

    Returns the list of runs with length >= 2 (single operators gain
    nothing from fusion). Stateful operators break runs.
    """
    runs: List[List[Operator]] = []
    current: List[Operator] = []
    for op in operators:
        if is_stateless(op) and len(op.inputs) == 1:
            current.append(op)
        else:
            if len(current) >= 2:
                runs.append(current)
            current = []
    if len(current) >= 2:
        runs.append(current)
    return runs
