"""Single-node stream processing engine (discrete-event simulator).

The engine plays the role of Flink's runtime in the paper's Sec. 5
framework. It owns the virtual clock, generates source traffic through the
network delay models, maintains operator input queues, and — once per
scheduling cycle of ``r`` milliseconds — *collects* runtime information,
asks the active policy for a :class:`~repro.core.scheduler.Plan`, and
*starts* the planned tasks with the cycle's CPU budget while the others
stay *paused* (the register/collect/start/pause API of Sec. 5).

CPU model
---------
A node has ``cores`` cores; one cycle provides ``cores * r`` CPU
milliseconds. A query pipeline executes sequentially, so a single query
can consume at most ``r`` ms per cycle (one core-slice); a priority plan
therefore effectively selects which ``cores`` queries run this cycle.
Unused budget is lost (cores idle), mirroring a real deployment.

Ingestion model
---------------
Sources generate event batches every ``gen_batch_ms`` with event-times
equal to generation time; each batch samples a network delay and enters
the engine's ingestion queue at ``generation + delay``. Watermarks are
generated every ``watermark_period_ms`` carrying ``generation - lateness``
and are subject to the same network. When the memory model signals
backpressure, delivery into operator queues is suspended (throttling the
input rate, as Flink's backpressure does) while generation continues —
events age in the network buffer and latency grows.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.scheduler import Allocation, Plan, Scheduler, SchedulerContext
from repro.obs.audit import explain_with_fallback
from repro.spe.events import EventBatch, LatencyMarker, Watermark
from repro.spe.memory import MemoryConfig, MemoryModel
from repro.spe.metrics import RunMetrics, UtilizationSample
from repro.spe.operators import Operator, SinkOperator
from repro.spe.query import Query, SourceBinding
from repro.spe.simtime import VirtualClock


class Engine:
    """Runs a set of queries under a scheduling policy on one node."""

    def __init__(
        self,
        queries: Sequence[Query],
        scheduler: Scheduler,
        *,
        cores: int = 24,
        cycle_ms: float = 120.0,
        memory: MemoryConfig | None = None,
        seed: int = 0,
        tracer=None,
        audit=None,
        profiler=None,
        faults=None,
        invariants=None,
        telemetry=None,
        checkpoints=None,
        recovery=None,
        lineage=None,
        validate: bool = True,
        batch_size: int = 1,
        vectorized: bool = True,
    ) -> None:
        if cores < 1:
            raise ValueError(f"need at least one core: {cores}")
        if cycle_ms <= 0:
            raise ValueError(f"cycle must be positive: {cycle_ms}")
        if not queries:
            raise ValueError("engine needs at least one query")
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1: {batch_size}")
        self.queries = list(queries)
        #: rows coalesced per channel queue entry (1 = per-event mode).
        #: All payload channels carry columnar RecordBatch runs instead of
        #: individual EventBatch entries. Single-input operators drain a
        #: run's rows within one budget-loop turn; multi-input (join)
        #: operators consume exactly one row per round-robin turn, which
        #: replicates the per-event entry granularity their budget split
        #: depends on. Execution is byte-identical for every batch size
        #: (the batch_size=1-vs-N equality gate in tests and CI enforces
        #: it).
        self.batch_size = int(batch_size)
        if self.batch_size > 1:
            for query in self.queries:
                for op in query.operators:
                    for channel in op.inputs:
                        channel.batch_size = self.batch_size
        if validate:
            # Fail fast on misconfigured plans (cycles, keyless keyed
            # windows, watermark-less event-time windows, ...) before a
            # single simulation cycle runs; ``validate=False`` bypasses.
            from repro.analysis.plan_check import validate_queries

            validate_queries(self.queries)
        self.scheduler = scheduler
        self.cores = cores
        self.cycle_ms = float(cycle_ms)
        self.memory = MemoryModel(memory)
        self.tracer = tracer
        #: optional scheduler-decision audit trail (repro.obs.AuditLog)
        self.audit = audit
        #: optional per-operator profiler (repro.obs.OperatorProfiler)
        self.profiler = profiler
        #: optional deterministic fault schedule (repro.faults.FaultPlan)
        self.faults = faults
        #: optional runtime invariant checker (repro.faults.InvariantMonitor)
        self.invariants = invariants
        #: optional in-run telemetry sampler (repro.obs.TelemetrySampler)
        self.telemetry = telemetry
        #: optional periodic checkpointing (repro.resilience.CheckpointCoordinator)
        self.checkpoints = checkpoints
        #: optional failover recovery (repro.resilience.RecoveryManager);
        #: None keeps the legacy node-failure semantics (lossless pause)
        self.recovery = recovery
        #: optional sampled per-record causal tracing (repro.obs.LineageTracker)
        self.lineage = lineage
        #: optional wall-clock phase profiler (repro.bench.perf
        #: CyclePhaseProfiler): pure observer of host time around the
        #: cycle phases, never read by the simulation.
        self.phase_profiler = None
        self.clock = VirtualClock()
        self.metrics = RunMetrics()
        self._rng = np.random.default_rng(seed)
        self._seq = 0
        #: vectorized cycle kernel (batched delay draws + calendar-queue
        #: network). The scalar reference path (``vectorized=False``) is
        #: kept verbatim; both paths are byte-identical by contract (the
        #: scalar-vs-vectorized equivalence gate in tests and CI enforces
        #: summaries, traces, decision logs, and checkpoint bytes).
        self.vectorized = bool(vectorized)
        # Scalar path: a global (ingest_time, seq) heapq.
        # (ingest_time, seq, query, binding, record)
        self._network: List[Tuple[float, int, Query, SourceBinding, object]] = []
        # Vectorized path: a bucketed calendar queue. Records land in the
        # bucket of the cycle that can first deliver them; each delivery
        # drains every bucket <= the current cycle index, keeps the
        # authoritative ``ingest_time <= now`` check, and sorts the
        # deliverable set once by the same (ingest_time, seq) key the heap
        # pops in — so delivery order is provably unchanged.
        self._cal_buckets: Dict[int, List[Tuple[float, int, Query, SourceBinding, object]]] = {}
        self._cal_cycle = 0
        # Delay draws may be block-prefetched (DelayModel.sample_amortized)
        # whenever generation is the only consumer of the delay models'
        # generators: the fault path interleaves direct sample_batch
        # calls on the same models, so it keeps per-record draws.
        # Checkpoints are safe — the codec captures the *logical* RNG
        # position (DelayModel.checkpoint_rng_state), so snapshot bytes
        # and restored streams are independent of prefetching.
        self._amortized_draws = self.vectorized and faults is None
        self._throttle_requested = False  # set by plans that stall sources
        self._swm_drained: Dict[str, int] = {q.query_id: 0 for q in self.queries}
        self._marker_drained: Dict[str, int] = {q.query_id: 0 for q in self.queries}
        self._events_in_prev = 0.0
        # Flat view of every operator's stats block in (query, operator)
        # order: the utilization sampler sums events_in once per cycle, and
        # both the query set and each query's operator list are fixed for
        # the engine's lifetime (stats blocks are mutated in place, never
        # replaced — checkpoint restore included).
        self._all_op_stats = [
            op.stats for q in self.queries for op in q.operators
        ]
        self._register()
        if lineage is not None:
            lineage.attach(self)

    # -- Sec. 5 framework: register -------------------------------------------

    def _register(self) -> None:
        """Register every task (operator) with the runtime scheduler."""
        seen_ids = set()
        for query in self.queries:
            if query.query_id in seen_ids:
                raise ValueError(f"duplicate query id: {query.query_id}")
            seen_ids.add(query.query_id)

    # -- source generation -------------------------------------------------------

    def _generate_until(self, horizon: float, shed_events: bool) -> None:
        """Generate source records with generation time <= ``horizon``.

        Under backpressure (``shed_events``), payload generation for the
        elapsed interval is shed — the throttled producer slows down and
        those events never enter the system, which is what bounds memory
        and caps throughput (Fig. 6d's plateau). Watermarks and latency
        markers are control traffic and keep flowing, so event-time keeps
        progressing while the input rate is throttled.
        """
        generate = (
            self._generate_binding_vec
            if self.vectorized
            else self._generate_binding
        )
        for query in self.queries:
            for binding in query.bindings:
                generate(query, binding, horizon, shed_events)

    def _generate_binding(
        self, query: Query, binding: SourceBinding, horizon: float, shed_events: bool
    ) -> None:
        spec = binding.spec
        start = query.deployed_at
        if binding.next_gen_time < start:
            binding.next_gen_time = start
            binding.next_watermark_time = start + spec.watermark_period_ms
            binding.next_marker_time = start + spec.marker_period_ms
        faults = self.faults
        qid = query.query_id
        metrics = self.metrics
        push = self._push_network
        sample = spec.delay_model.sample
        # The cursors' drift-free arithmetic (``origin + step * period``,
        # see PeriodicCursor.value) is inlined below with origin/period
        # hoisted: this loop runs for every binding every cycle and the
        # property indirection dominates its cost.
        gen_batch_ms = spec.gen_batch_ms
        bytes_per_event = spec.bytes_per_event
        cursor = binding._gen_cursor
        g_origin, g_period = cursor.origin, cursor.period
        # Event batches: one per generation interval, rate-modulated by the
        # source's burst state machine (load spikes, Sec. 1).
        g0 = g_origin + cursor.step * g_period
        while g0 + gen_batch_ms <= horizon:
            cursor.step += 1
            g1 = g_origin + cursor.step * g_period  # drift-free g0 + gen_batch_ms
            count = self._current_rate(binding, g0) * gen_batch_ms / 1000.0
            if shed_events:
                metrics.events_shed += count
            elif count > 0:
                delay = sample()  # klink: allow[KL007] scalar reference path; vec kernel batches via sample_amortized
                if faults is not None:
                    # A stalled source holds the batch until the stall ends;
                    # the extra time counts as experienced network delay, so
                    # Klink's delay history sees the perturbation.
                    hold = faults.source_hold_until(qid, g1)
                    delay = max(delay, hold - g1)
                batch = EventBatch(
                    count=count,
                    t_start=g0,
                    t_end=g1,
                    delay=delay,
                    bytes_per_event=bytes_per_event,
                )
                push(g1 + delay, query, binding, batch)
            g0 = g1
        # Watermarks: periodic, timestamp lags generation by the lateness
        # allowance (Sec. 2.2's "current time minus five seconds" pattern).
        # Suppressed for sources whose pipeline generates watermarks with
        # a WatermarkGeneratorOperator instead (Sec. 2.2 case ii).
        if spec.emit_watermarks:
            cursor = binding._watermark_cursor
            w_origin, w_period = cursor.origin, cursor.period
            lateness = spec.lateness_ms
            source_id = binding.source_id
            while True:
                g = w_origin + cursor.step * w_period
                if g > horizon:
                    break
                cursor.step += 1
                if faults is not None and faults.drops_watermark(qid, g):
                    metrics.watermarks_dropped_by_faults += 1
                    continue
                wm = Watermark(g - lateness, source_id=source_id)
                delay = sample()  # klink: allow[KL007] scalar reference path; vec kernel batches via sample_amortized
                if faults is not None:
                    delay += faults.watermark_extra_delay(qid, g)
                    delay = max(delay, faults.source_hold_until(qid, g) - g)
                push(g + delay, query, binding, wm)
        # Latency markers: 200 ms period per source (Sec. 6.1.2).
        cursor = binding._marker_cursor
        m_origin, m_period = cursor.origin, cursor.period
        while True:
            g = m_origin + cursor.step * m_period
            if g > horizon:
                break
            delay = sample()  # klink: allow[KL007] scalar reference path; vec kernel batches via sample_amortized
            if faults is not None:
                delay = max(delay, faults.source_hold_until(qid, g) - g)
            push(g + delay, query, binding, LatencyMarker(created_at=g))
            cursor.step += 1

    def _generate_binding_vec(
        self, query: Query, binding: SourceBinding, horizon: float, shed_events: bool
    ) -> None:
        """Vectorized twin of :meth:`_generate_binding` (same byte output).

        Computes the horizon's generation/watermark/marker grids with the
        identical drift-free cursor arithmetic, evaluates fault hooks
        through their range variants, then draws *every* network delay
        the binding needs this cycle in one ``sample_batch`` call —
        events first, then watermarks, then markers, which is exactly the
        scalar draw order — and materializes records only at the network
        boundary. Batched ``Generator`` draws are sequential, so the
        delay stream (and hence every downstream byte) is unchanged.
        """
        spec = binding.spec
        start = query.deployed_at
        if binding.next_gen_time < start:
            binding.next_gen_time = start
            binding.next_watermark_time = start + spec.watermark_period_ms
            binding.next_marker_time = start + spec.marker_period_ms
        faults = self.faults
        gen_batch_ms = spec.gen_batch_ms
        if faults is None:
            # Fault-free fast path: the grid walk, the delay draw, and the
            # calendar-queue filing fuse into one pass per record stream —
            # no intermediate tick/count lists, no batch staging. The
            # horizon of one binding-cycle yields ~3 draws on the pinned
            # grids — below the break-even batch size of a numpy round
            # trip — so draws are taken one at a time out of the model's
            # block-prefetch buffer when no checkpoint can observe the
            # generator's internal state, and via plain ``sample()``
            # otherwise. Both are byte-identical to the batched draw by
            # the pinned sample/sample_batch equivalence contract. The
            # fault path below batches via ``sample_batch`` + range fault
            # hooks.
            delay_model = spec.delay_model
            sample = (
                delay_model.sample_amortized
                if self._amortized_draws
                else delay_model.sample  # klink: allow[KL007]
            )
            seq = self._seq
            buckets = self._cal_buckets
            cur = self._cal_cycle
            now = self.clock.now
            cycle_ms = self.cycle_ms
            cursor = binding._gen_cursor
            g_origin, g_period = cursor.origin, cursor.period
            step = cursor.step
            g0 = g_origin + step * g_period
            bursty = spec.burst_factor > 1.0
            if not bursty:
                count = spec.rate_eps * gen_batch_ms / 1000.0
            else:
                rate = self._current_rate
            bytes_per_event = spec.bytes_per_event
            while g0 + gen_batch_ms <= horizon:
                step += 1
                g1 = g_origin + step * g_period  # drift-free g0 + gen_batch_ms
                if bursty:
                    count = rate(binding, g0) * gen_batch_ms / 1000.0
                if shed_events:
                    self.metrics.events_shed += count
                elif count > 0:
                    delay = sample()  # klink: allow[KL007]
                    t = g1 + delay
                    seq += 1
                    if t <= now:
                        key = cur
                    else:
                        key = cur + int((t - now) / cycle_ms)
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = bucket = []
                    bucket.append(
                        (
                            t,
                            seq,
                            query,
                            binding,
                            EventBatch(
                                count=count,
                                t_start=g0,
                                t_end=g1,
                                delay=delay,
                                bytes_per_event=bytes_per_event,
                            ),
                        )
                    )
                g0 = g1
            cursor.step = step
            if spec.emit_watermarks:
                cursor = binding._watermark_cursor
                w_origin, w_period = cursor.origin, cursor.period
                step = cursor.step
                lateness = spec.lateness_ms
                source_id = binding.source_id
                while True:
                    g = w_origin + step * w_period
                    if g > horizon:
                        break
                    step += 1
                    delay = sample()  # klink: allow[KL007]
                    t = g + delay
                    seq += 1
                    if t <= now:
                        key = cur
                    else:
                        key = cur + int((t - now) / cycle_ms)
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = bucket = []
                    bucket.append(
                        (
                            t,
                            seq,
                            query,
                            binding,
                            Watermark(g - lateness, source_id=source_id),
                        )
                    )
                cursor.step = step
            cursor = binding._marker_cursor
            m_origin, m_period = cursor.origin, cursor.period
            step = cursor.step
            while True:
                g = m_origin + step * m_period
                if g > horizon:
                    break
                delay = sample()  # klink: allow[KL007]
                t = g + delay
                seq += 1
                if t <= now:
                    key = cur
                else:
                    key = cur + int((t - now) / cycle_ms)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = bucket = []
                bucket.append(
                    (t, seq, query, binding, LatencyMarker(created_at=g))
                )
                step += 1
            cursor.step = step
            self._seq = seq
            return
        # Fault-injected path: build the horizon's tick grids, filter
        # drop-faulted watermarks, then draw every delay in one
        # ``sample_batch`` call and apply the range fault hooks.
        qid = query.query_id
        metrics = self.metrics
        cursor = binding._gen_cursor
        g_origin, g_period = cursor.origin, cursor.period
        step = cursor.step
        g0 = g_origin + step * g_period
        ev_g0: List[float] = []
        ev_g1: List[float] = []
        while g0 + gen_batch_ms <= horizon:
            step += 1
            g1 = g_origin + step * g_period  # drift-free g0 + gen_batch_ms
            ev_g0.append(g0)
            ev_g1.append(g1)
            g0 = g1
        cursor.step = step
        n_ev = len(ev_g0)
        if spec.burst_factor <= 1.0:
            count = spec.rate_eps * gen_batch_ms / 1000.0
            counts = [count] * n_ev
        else:
            # The burst state machine consumes binding.rng in interval
            # order, exactly like the scalar while-loop.
            rate = self._current_rate
            counts = [rate(binding, g) * gen_batch_ms / 1000.0 for g in ev_g0]
        if shed_events:
            # Sequential adds: float accumulation order matches the
            # scalar per-interval ``events_shed += count``.
            for count in counts:
                metrics.events_shed += count
            n_event_draws = 0
        else:
            n_event_draws = sum(1 for count in counts if count > 0)
        # Watermark grid. Drop-faulted ticks are filtered out *before*
        # sampling — a dropped watermark consumes no delay draw.
        wm_live: List[float] = []
        if spec.emit_watermarks:
            cursor = binding._watermark_cursor
            w_origin, w_period = cursor.origin, cursor.period
            step = cursor.step
            wm_ticks: List[float] = []
            while True:
                g = w_origin + step * w_period
                if g > horizon:
                    break
                step += 1
                wm_ticks.append(g)
            cursor.step = step
            if wm_ticks and faults is not None:
                dropped = faults.drops_watermark_range(qid, wm_ticks)
                n_dropped = sum(dropped)
                if n_dropped:
                    # Integer counter bumped by an integer tick count —
                    # no float drift is possible here.
                    metrics.watermarks_dropped_by_faults += n_dropped  # klink: allow[KL005]
                    wm_live = [
                        g for g, drop in zip(wm_ticks, dropped) if not drop
                    ]
                else:
                    wm_live = wm_ticks
            else:
                wm_live = wm_ticks
        # Latency-marker grid.
        cursor = binding._marker_cursor
        m_origin, m_period = cursor.origin, cursor.period
        step = cursor.step
        mk_ticks: List[float] = []
        while True:
            g = m_origin + step * m_period
            if g > horizon:
                break
            mk_ticks.append(g)
            step += 1
        cursor.step = step
        n_wm = len(wm_live)
        n_mk = len(mk_ticks)
        total = n_event_draws + n_wm + n_mk
        if total == 0:
            return
        # One batched draw covers the whole binding-cycle; slices are
        # consumed in the scalar order (events, watermarks, markers).
        delays = spec.delay_model.sample_batch(total).tolist()
        push = self._push_network
        i = 0
        if n_event_draws:
            bytes_per_event = spec.bytes_per_event
            holds = faults.source_hold_until_range(qid, ev_g1)
            for j, count in enumerate(counts):
                if count <= 0:
                    continue
                g1 = ev_g1[j]
                delay = delays[i]
                i += 1
                delay = max(delay, holds[j] - g1)
                push(
                    g1 + delay,
                    query,
                    binding,
                    EventBatch(
                        count=count,
                        t_start=ev_g0[j],
                        t_end=g1,
                        delay=delay,
                        bytes_per_event=bytes_per_event,
                    ),
                )
        if n_wm:
            lateness = spec.lateness_ms
            source_id = binding.source_id
            extras = faults.watermark_extra_delay_range(qid, wm_live)
            holds_w = faults.source_hold_until_range(qid, wm_live)
            for j, g in enumerate(wm_live):
                delay = delays[i]
                i += 1
                delay += extras[j]
                delay = max(delay, holds_w[j] - g)
                push(
                    g + delay,
                    query,
                    binding,
                    Watermark(g - lateness, source_id=source_id),
                )
        if n_mk:
            holds_m = faults.source_hold_until_range(qid, mk_ticks)
            for j, g in enumerate(mk_ticks):
                delay = delays[i]
                i += 1
                delay = max(delay, holds_m[j] - g)
                push(g + delay, query, binding, LatencyMarker(created_at=g))

    def _current_rate(self, binding: SourceBinding, at: float) -> float:
        """Source rate at generation time ``at``, per the burst state."""
        spec = binding.spec
        if spec.burst_factor <= 1.0:
            return spec.rate_eps
        while binding.burst_state_until <= at:
            binding.bursting = not binding.bursting
            mean = (
                spec.burst_on_mean_ms if binding.bursting else spec.burst_off_mean_ms
            )
            binding.burst_state_until += float(binding.rng.exponential(mean))
        factor = spec.burst_factor if binding.bursting else spec.quiet_factor
        return spec.rate_eps * factor

    def _push_network(
        self, ingest_time: float, query: Query, binding: SourceBinding, record: object
    ) -> None:
        self._seq += 1
        if not self.vectorized:
            heapq.heappush(  # klink: transient[canonical form captured as network_entries]
                self._network, (ingest_time, self._seq, query, binding, record)
            )
            return
        # Calendar queue: file the record under the first cycle whose
        # delivery pass may find it due. The bucket index only controls
        # *when the record is checked* — the authoritative test stays the
        # per-record ``ingest_time <= now`` in the delivery pass, so a
        # record bucketed one cycle early (float division is correctly
        # rounded, so it can never be bucketed late by more than an ulp's
        # worth, which the re-check absorbs) is simply deferred to the
        # next bucket, exactly as the heap would have left it unpopped.
        now = self.clock.now
        if ingest_time <= now:
            key = self._cal_cycle
        else:
            key = self._cal_cycle + int((ingest_time - now) / self.cycle_ms)
        bucket = self._cal_buckets.get(key)
        if bucket is None:
            self._cal_buckets[key] = bucket = []  # klink: transient[canonical form captured as network_entries]
        bucket.append((ingest_time, self._seq, query, binding, record))

    @property
    def network_entries(self) -> List[Tuple[float, int, Query, SourceBinding, object]]:
        """Every in-flight record, sorted by the (ingest_time, seq) total
        order both network layouts deliver in. The checkpoint codec
        captures this canonical form, so snapshot bytes are independent
        of the active layout; assigning it loads restored records into
        whichever layout the engine runs."""
        if self.vectorized:
            entries = [
                entry
                for bucket in self._cal_buckets.values()
                for entry in bucket
            ]
        else:
            entries = list(self._network)
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return entries

    @network_entries.setter
    def network_entries(
        self, entries: List[Tuple[float, int, Query, SourceBinding, object]]
    ) -> None:
        if self.vectorized:
            self._network = []
            self._cal_buckets = {}
            for entry in entries:
                ingest_time = entry[0]
                now = self.clock.now
                if ingest_time <= now:
                    key = self._cal_cycle
                else:
                    key = self._cal_cycle + int(
                        (ingest_time - now) / self.cycle_ms
                    )
                bucket = self._cal_buckets.get(key)
                if bucket is None:
                    self._cal_buckets[key] = bucket = []
                bucket.append(entry)
        else:
            # A time-sorted list is a valid heap, and pop order is total
            # in (ingest_time, seq), so the layout is behaviour-neutral.
            self._network = list(entries)
            self._cal_buckets = {}

    def _due_calendar_records(
        self, now: float
    ) -> List[Tuple[float, int, Query, SourceBinding, object]]:
        """Drain every bucket up to the current cycle and return the
        deliverable records in (ingest_time, seq) order; records checked
        early re-file under the next cycle's bucket."""
        buckets = self._cal_buckets
        cur = self._cal_cycle
        due_keys = [key for key in buckets if key <= cur]
        if not due_keys:
            return []
        if len(due_keys) == 1:
            checked = buckets.pop(due_keys[0])
        else:
            due_keys.sort()
            checked = []
            for key in due_keys:
                checked.extend(buckets.pop(key))
        ready = []
        early = None
        for entry in checked:
            if entry[0] <= now:
                ready.append(entry)
            else:
                if early is None:
                    early = []
                early.append(entry)
        if early is not None:
            nxt = buckets.get(cur + 1)
            if nxt is None:
                buckets[cur + 1] = early
            else:
                nxt.extend(early)
        # (ingest_time, seq) pairs are unique, so tuple comparison never
        # reaches the Query element and the order equals heap-pop order.
        ready.sort()
        return ready

    # -- ingestion ---------------------------------------------------------------

    def _deliver_ingestions(
        self, now: float, backpressured: bool, blocked=None
    ) -> None:
        """Move network records with ingest time <= now into source queues.

        Under backpressure, payload batches already in flight are deferred
        to the next cycle (they age in the network buffer) while control
        records (watermarks, markers) are still delivered — watermarks
        occupy no queue memory and progressing event-time is what lets
        window operators fire and release state. ``blocked`` (a predicate
        over queries) defers everything for queries whose ingestion path
        is unavailable — e.g. their source node failed.
        """
        if self.vectorized:
            ready = self._due_calendar_records(now)
        else:
            # Popping the whole due prefix first, then processing, is
            # identical to the historical pop-process interleave: the
            # processing body never pushes into the network (deferrals
            # re-enter only after the loop).
            ready = []
            network = self._network
            heappop = heapq.heappop
            while network and network[0][0] <= now:
                ready.append(heappop(network))
        self._ingest_records(ready, now, backpressured, blocked)

    def _ingest_records(
        self,
        ready: List[Tuple[float, int, Query, SourceBinding, object]],
        now: float,
        backpressured: bool,
        blocked=None,
    ) -> None:
        """Deliver ``ready`` (already in (ingest_time, seq) order) into
        source queues; shared by the heap and calendar network layouts."""
        deferred = []
        stalled: Dict[str, bool] = {}
        metrics = self.metrics
        lineage = self.lineage
        # With per-query credit bounds disabled, query_stalled is
        # constant-False: skip the per-record memo lookups entirely.
        check_stall = self.memory.config.per_query_bound_fraction is not None
        query_stalled = self.memory.query_stalled
        # The unconstrained cycle — no admission gate, no credit stalls,
        # no backpressure — delivers every record; skipping the three
        # constant-False tests per record matters at this loop's volume.
        # (The guard tests are pure reads, so the split is unobservable.)
        gated = check_stall or backpressured or blocked is not None
        for _, _, query, binding, record in ready:
            if gated:
                qid = query.query_id
                if blocked is not None and blocked(query):
                    deferred.append((query, binding, record))
                    continue
                if check_stall and qid not in stalled:
                    stalled[qid] = query_stalled(query)
                if check_stall and stalled[qid]:
                    # Credit-based flow control: the whole channel stalls —
                    # events, watermarks, and markers keep their order and
                    # age in the source buffer until credit frees up.
                    deferred.append((query, binding, record))
                    continue
                # Exact-type checks: network records are exactly EventBatch,
                # Watermark, or LatencyMarker (no subclasses in the codebase).
                is_payload = type(record) is EventBatch
                if backpressured and is_payload:
                    deferred.append((query, binding, record))
                    continue
            else:
                is_payload = type(record) is EventBatch
            progress = binding.progress
            if is_payload:
                # Inlined Channel.push dispatch for the common case: a
                # zero-latency coalescing channel routes EventBatch pushes
                # straight to push_row with the same arguments push would
                # forward, skipping one call and one isinstance per batch.
                ch = binding.channel
                if ch.batch_size > 1 and ch.latency_ms == 0.0:
                    ch.push_row(
                        record.count,
                        record.t_start,
                        record.t_end,
                        record.delay,
                        record.bytes_per_event,
                        now,
                    )
                else:
                    ch.push(record, now)
                binding.events_ingested += record.count
                if progress is not None:
                    progress.observe_delay(record.delay, record.count)
                metrics.total_events_ingested += record.count
                if lineage is not None:
                    lineage.on_ingested(query, binding, record, now)
            elif type(record) is Watermark:
                if progress is not None and record.timestamp <= progress.last_watermark_ts:
                    continue  # late watermark: dropped by the SPE (Sec. 2.2)
                if progress is not None:
                    swm = progress.observe_watermark(record.timestamp, now)
                    if swm and lineage is not None:
                        # This watermark finalized a source epoch: it is the
                        # sweeping watermark the SWM estimator predicted.
                        lineage.on_swm_ingested(
                            query.query_id, binding.source_id,
                            record.timestamp, now,
                        )
                binding.channel.push(record, now)
                binding.watermarks_ingested += 1
            else:  # LatencyMarker
                binding.channel.push(record, now)
        if deferred:
            push = self._push_network
            retry_at = now + self.cycle_ms
            for query, binding, record in deferred:
                push(retry_at, query, binding, record)

    # -- Sec. 5 framework: collect ------------------------------------------------

    def _collect(self) -> SchedulerContext:
        return SchedulerContext(
            now=self.clock.now,
            cycle_ms=self.cycle_ms,
            cores=self.cores,
            queries=self.queries,
            memory_utilization=self.memory.utilization(self.queries),
        )

    # -- Sec. 5 framework: start/pause (plan execution) ------------------------------

    def _execute_plan(self, plan: Plan, budget_ms: float) -> float:
        """Run the planned tasks within ``budget_ms``; return CPU ms used."""
        if plan.mode == "share":
            return self._execute_share(plan.allocations, budget_ms)
        return self._execute_priority(plan.allocations, budget_ms)

    def _execute_priority(
        self, allocations: List[Allocation], budget_ms: float
    ) -> float:
        """Grant core time in priority order until the budget runs out.

        Each scheduled query's operators run as parallel task threads, so
        one query can absorb up to ``cycle_ms`` per *operator* in a cycle
        (it rides load bursts on several cores); queries further down the
        order get whatever budget the higher-priority ones left.
        """
        used_total = 0.0
        cycle_ms = self.cycle_ms
        for alloc in allocations:
            remaining = budget_ms - used_total
            if remaining <= 1e-9:
                break
            ops = alloc.runnable_operators()
            slice_ms = min(cycle_ms * len(ops), remaining)
            used_total += self._fair_share_ops(ops, slice_ms, cap_per_op=cycle_ms)
        return used_total

    def _execute_share(
        self, allocations: List[Allocation], budget_ms: float
    ) -> float:
        """Operator-level processor sharing (Flink's Default behaviour).

        Every operator is a task thread; the OS scheduler shares cores
        fairly across *threads*, not queries, so the cycle budget is split
        evenly over all operators with queued work. Each thread can use at
        most one core for the cycle (``cycle_ms``). Leftover budget is
        re-offered in further rounds (work-conserving), which also lets
        records produced by upstream operators in round one be consumed
        downstream in round two.
        """
        all_ops = [
            op for alloc in allocations for op in alloc.runnable_operators()
        ]
        return self._fair_share_ops(all_ops, budget_ms, cap_per_op=self.cycle_ms)

    def _fair_share_ops(
        self, operators: List[Operator], budget_ms: float, cap_per_op: float
    ) -> float:
        """Fairly share ``budget_ms`` across operator threads.

        Several rounds re-offer unused budget to operators that still have
        work (work-conserving) and let records emitted upstream in an
        earlier round be consumed downstream in a later one. ``cap_per_op``
        bounds any single thread to one core for the cycle.
        """
        used_total = 0.0
        used_per_op: Dict[int, float] = {}
        used_get = used_per_op.get
        now = self.clock.now
        cap_cutoff = cap_per_op - 1e-9
        for rnd in range(3):
            # The work filter is has_work() inlined (any input channel
            # non-empty) — a pure read, so the explicit loop is
            # unobservable; round 0 additionally skips the per-op usage
            # lookups (no operator has usage yet, so the cap filter
            # passes trivially: 0 < cutoff for any positive cap).
            ops = []
            ops_append = ops.append
            if rnd == 0 and cap_cutoff > 0.0:
                for op in operators:
                    for ch in op.inputs:
                        if ch._entries:
                            ops_append(op)
                            break
            else:
                for op in operators:
                    for ch in op.inputs:
                        if ch._entries:
                            if used_get(id(op), 0.0) < cap_cutoff:
                                ops_append(op)
                            break
            if not ops or budget_ms - used_total <= 1e-9:
                break
            share = (budget_ms - used_total) / len(ops)
            for op in ops:
                prior = used_get(id(op), 0.0)
                # Inlined 3-way min (ties take the earlier argument,
                # matching the builtin's left-to-right resolution).
                grant = share
                cap_rem = cap_per_op - prior
                if cap_rem < grant:
                    grant = cap_rem
                budget_rem = budget_ms - used_total
                if budget_rem < grant:
                    grant = budget_rem
                if grant <= 1e-9:
                    continue
                used = op.step(grant, now)
                used_per_op[id(op)] = prior + used
                used_total += used
        return used_total

    def _run_allocation(self, alloc: Allocation, budget_ms: float) -> float:
        """Run one query's (or pipeline prefix's) task threads for a slice.

        The scheduled query's operator threads timeshare the granted
        core-slice; fair sharing with redistribution rounds approximates
        concurrent pipeline execution, with bottleneck operators absorbing
        the budget that fast operators leave unused. Records produced
        upstream in an early round reach downstream operators (and the
        sink) within the same slice — end-to-end propagation, which is
        what Klink's prioritization is designed to buy.
        """
        return self._fair_share_ops(
            alloc.runnable_operators(), budget_ms, cap_per_op=self.cycle_ms
        )

    # -- metrics ----------------------------------------------------------------

    def _drain_sink_metrics(self) -> None:
        for query in self.queries:
            sink = query.sink
            seen = self._swm_drained[query.query_id]
            fresh = sink.swm_latencies[seen:]
            if fresh:
                self._swm_drained[query.query_id] = len(sink.swm_latencies)
                ideal = query.pipeline_cost_per_event_ms()
                lat_list = self.metrics.per_query_swm_latencies.setdefault(
                    query.query_id, []
                )
                for _, latency in fresh:
                    self.metrics.swm_latencies.append(latency)
                    lat_list.append(latency)
                    if ideal > 0:
                        self.metrics.slowdowns.append(latency / ideal)
            seen_m = self._marker_drained[query.query_id]
            fresh_m = sink.marker_latencies[seen_m:]
            if fresh_m:
                self._marker_drained[query.query_id] = len(sink.marker_latencies)
                self.metrics.marker_latencies.extend(lat for _, lat in fresh_m)

    def _sample_utilization(self, cpu_used_ms: float) -> None:
        events_in = sum(s.events_in for s in self._all_op_stats)
        delta = events_in - self._events_in_prev
        self._events_in_prev = events_in
        self.metrics.total_events_processed += delta
        self.metrics.samples.append(
            UtilizationSample(
                time=self.clock.now,
                memory_bytes=self.memory.used_bytes(self.queries),
                cpu_fraction=cpu_used_ms / (self.cores * self.cycle_ms),
                events_processed=delta,
            )
        )

    # -- main loop -----------------------------------------------------------------

    def run(self, duration_ms: float) -> RunMetrics:
        """Advance the simulation by ``duration_ms`` and return metrics."""
        if duration_ms <= 0:
            raise ValueError(f"duration must be positive: {duration_ms}")
        if self.checkpoints is not None:
            self.checkpoints.ensure_baseline(self)
        if self.recovery is not None:
            self.recovery.begin_run(self)
        end = self.clock.now + duration_ms
        while self.clock.now < end - 1e-9:
            self.step_cycle()
        if self.recovery is not None:
            self.recovery.finalize(self)
        self.metrics.duration_ms = self.clock.now
        self.metrics.late_events_dropped = sum(
            op.stats.late_events_dropped for q in self.queries for op in q.operators
        )
        if self.profiler is not None:
            self.metrics.operator_profiles = self.profiler.profiles(self.queries)
        if self.invariants is not None:
            self.invariants.finalize(self)
            self.metrics.invariant_violations = self.invariants.total_violations
        if self.telemetry is not None:
            self.telemetry.finalize(self.metrics, self.clock.now)
        if self.lineage is not None:
            self.lineage.finalize(self.clock.now)
        return self.metrics

    def _apply_faults(self, now: float) -> bool:
        """Apply the cycle's active fault episodes; True when node is down."""
        faults = self.faults
        if faults is None:
            return False
        self.memory.external_bytes = faults.extra_memory_bytes(now)
        if faults.has_slowdowns:
            for query in self.queries:
                qid = query.query_id
                for op in query.operators:
                    op.cost_multiplier = faults.slowdown_factor(
                        qid, op.name, now
                    )
        if faults.active_at(now):
            self.metrics.fault_cycles += 1
        return faults.node_down(0, now)

    def step_cycle(self) -> None:
        """Execute one scheduling cycle of ``cycle_ms``."""
        self.clock.advance(self.cycle_ms)
        # The calendar queue's cycle index advances with the clock even on
        # cycles that skip delivery (node down): the next delivery pass
        # drains every bucket <= the current index, so nothing is checked
        # late.
        self._cal_cycle += 1  # klink: transient[relative bucket index; restore refiles buckets against it]
        now = self.clock.now
        node_down = self._apply_faults(now)
        if self.recovery is not None:
            raw_down = frozenset((0,)) if node_down else frozenset()
            node_down = 0 in self.recovery.on_cycle(self, raw_down, now)
        backpressured = self.memory.backpressured(self.queries) or self._throttle_requested
        if backpressured:
            self.metrics.backpressure_cycles += 1
        pp = self.phase_profiler
        if pp is not None:
            pp.cycle_start()
        self._generate_until(now, shed_events=backpressured)
        if pp is not None:
            pp.lap("generate")
        if node_down:
            # The (single) node is failed: nothing is ingested or executed
            # this cycle. Sources keep generating; their output ages in the
            # network buffer and floods in at recovery.
            plan = Plan([], mode="priority")
            ctx = self._collect()
            overhead = 0.0
            used = 0.0
            decisions: list = []
        else:
            self._deliver_ingestions(now, backpressured)
            if pp is not None:
                pp.lap("deliver")
            ctx = self._collect()
            plan = self.scheduler.plan(ctx)
            # Explanations are captured at *plan* time: policies that rank
            # on live queue state (FCFS arrival, HR productivity) must be
            # read before execution drains the queues they ranked on.
            decisions = (
                explain_with_fallback(self.scheduler, ctx, plan)
                if self.audit is not None
                else []
            )
            self._throttle_requested = plan.throttle_ingestion
            overhead = plan.overhead_ms + self.scheduler.overhead_ms(ctx)
            self.metrics.scheduler_overhead_ms += overhead
            # Memory pressure (heap churn, GC) taxes the cycle's useful CPU.
            tax = self.memory.pressure_tax(ctx.memory_utilization)
            budget = max(0.0, (self.cores * self.cycle_ms - overhead) * (1.0 - tax))
            if pp is not None:
                pp.lap("schedule")
            used = self._execute_plan(plan, budget)
            self.metrics.busy_cpu_ms += used
            if pp is not None:
                pp.lap("execute")
        self._drain_sink_metrics()
        self._sample_utilization(used + overhead)
        cycle_index = self.metrics.cycles
        self.metrics.cycles += 1
        if self.invariants is not None:
            self.invariants.on_cycle(
                self, plans=(plan,), cpu_used_ms=used + overhead
            )
        if self.tracer is not None:
            self.tracer.on_cycle(
                time=now,
                memory_utilization=ctx.memory_utilization,
                cpu_used_ms=used,
                overhead_ms=overhead,
                backpressured=backpressured,
                plan=plan,
            )
        if self.profiler is not None:
            self.profiler.on_cycle(self.queries)
        if self.telemetry is not None:
            self.telemetry.on_cycle(
                self, now, cpu_used_ms=used, overhead_ms=overhead
            )
        if self.audit is not None:
            self.audit.on_cycle(
                time=now,
                cycle=cycle_index,
                scheduler=self.scheduler,
                ctx=ctx,
                plan=plan,
                backpressured=backpressured,
                cpu_used_ms=used,
                overhead_ms=overhead,
                decisions=decisions,
            )
        if self.checkpoints is not None:
            self.checkpoints.maybe_checkpoint(
                self, now, frozenset((0,)) if node_down else frozenset()
            )
        if pp is not None:
            pp.lap("drain")
            pp.cycle_end()

    def _on_standby_promotion(self, node: int, now: float) -> None:
        """Hook invoked by the RecoveryManager when a hot standby takes
        over ``node``. The single-node engine models an in-place standby
        (same operators, same placement), so there is nothing to move;
        :class:`~repro.distributed.cluster.DistributedEngine` overrides
        this to re-place the failed node's operators on a survivor."""
