"""Stream records flowing between operators.

To keep a pure-Python simulation tractable at the paper's event rates
(10,000+ events per second per query), payload events are represented as
*batches*: one :class:`EventBatch` stands for ``count`` events generated over
the event-time interval ``[t_start, t_end]`` that experienced the same
network delay. All scheduling-relevant quantities — queue sizes, processing
cost, selectivity, memory footprint, window assignment — are functions of
counts and timestamp ranges, so batching preserves the behaviour the paper
measures while cutting interpreter overhead by orders of magnitude.

Watermarks and latency markers remain individual records because their
per-record semantics (progress signalling, latency probing) are the object
of study.
"""

from __future__ import annotations

import struct
from itertools import count as _counter

_marker_ids = _counter()


def record_identity(query_id: str, source_id: int, t_end: float) -> bytes:
    """Stable byte identity of a generated batch's final event.

    Used by the lineage sampler to decide — deterministically across
    reruns, worker processes, and ``PYTHONHASHSEED`` values — whether a
    record is traced. The event-time boundary is encoded via its IEEE-754
    bit pattern (not ``repr``), so two floats compare equal here exactly
    when they are the same value bit-for-bit.
    """
    return (
        query_id.encode("utf-8")
        + b"|"
        + str(source_id).encode("ascii")
        + b"|"
        + struct.pack("<d", t_end)
    )


class EventBatch:
    """A group of payload events sharing generation interval and delay.

    A plain ``__slots__`` class (not a dataclass): record construction is
    the hottest allocation in the simulator, and slots cut both the
    per-instance memory and the attribute access cost.

    Attributes:
        count: Number of events represented (may be fractional mid-pipeline
            after selectivity scaling; sources always emit integral counts).
        t_start: Earliest event-time in the batch (ms).
        t_end: Latest event-time in the batch (ms), ``>= t_start``. Event
            times are treated as uniformly spread over ``[t_start, t_end]``
            when a batch must be split across window panes.
        delay: Network delay the events experienced between generation at
            the source and ingestion by the engine (ms). Klink's runtime
            data acquisition reads this to build its delay history.
        bytes_per_event: Serialized size used by the memory model.
    """

    __slots__ = ("count", "t_start", "t_end", "delay", "bytes_per_event")

    def __init__(
        self,
        count: float,
        t_start: float,
        t_end: float,
        delay: float = 0.0,
        bytes_per_event: int = 100,
    ) -> None:
        if count < 0:
            raise ValueError(f"negative batch count: {count}")
        if t_end < t_start:
            raise ValueError(f"batch interval inverted: [{t_start}, {t_end}]")
        self.count = count
        self.t_start = t_start
        self.t_end = t_end
        self.delay = delay
        self.bytes_per_event = bytes_per_event

    # dataclass-equivalent value semantics (eq without hash)
    __hash__ = None  # type: ignore[assignment]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventBatch):
            return NotImplemented
        return (
            self.count == other.count
            and self.t_start == other.t_start
            and self.t_end == other.t_end
            and self.delay == other.delay
            and self.bytes_per_event == other.bytes_per_event
        )

    def __repr__(self) -> str:
        return (
            f"EventBatch(count={self.count!r}, t_start={self.t_start!r}, "
            f"t_end={self.t_end!r}, delay={self.delay!r}, "
            f"bytes_per_event={self.bytes_per_event!r})"
        )

    @property
    def bytes(self) -> float:
        """Total memory footprint of the batch."""
        return self.count * self.bytes_per_event

    def split_fraction(self, fraction: float) -> "EventBatch":
        """Return a new batch holding ``fraction`` of this batch's events.

        Used when a scheduling cycle's budget runs out mid-batch; the
        remainder stays queued. The event-time range is kept identical on
        both halves (events are interleaved in time, not prefix-ordered).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        return EventBatch(
            count=self.count * fraction,
            t_start=self.t_start,
            t_end=self.t_end,
            delay=self.delay,
            bytes_per_event=self.bytes_per_event,
        )


class RecordBatch:
    """A columnar run of :class:`EventBatch` rows coalesced in a queue.

    When a channel runs with ``batch_size > 1``, consecutive payload
    pushes are appended as *rows* of one ``RecordBatch`` instead of
    individual queue entries: parallel columns hold each row's count,
    event-time interval, and network delay, plus the engine time at which
    the row was enqueued. Operators drain rows in order with exactly the
    per-row arithmetic of the per-event path (the batch_size=1-vs-N
    equivalence gate holds byte-for-byte); the win is purely constant
    overhead — one queue entry, one dispatch, and one budget-loop round
    amortized over the run.

    Control records (watermarks, latency markers) are never coalesced,
    and a control push seals the current tail batch, so FIFO order across
    record kinds is preserved exactly.

    ``head`` indexes the first unconsumed row: partially drained batches
    advance it instead of shifting the columns.
    """

    __slots__ = (
        "counts",
        "t_starts",
        "t_ends",
        "delays",
        "enqueued_ats",
        "bytes_per_event",
        "head",
    )

    def __init__(self, bytes_per_event: int = 100) -> None:
        self.counts: list = []
        self.t_starts: list = []
        self.t_ends: list = []
        self.delays: list = []
        self.enqueued_ats: list = []
        self.bytes_per_event = int(bytes_per_event)
        self.head = 0

    def append_row(
        self,
        count: float,
        t_start: float,
        t_end: float,
        delay: float,
        enqueued_at: float,
    ) -> None:
        self.counts.append(count)
        self.t_starts.append(t_start)
        self.t_ends.append(t_end)
        self.delays.append(delay)
        self.enqueued_ats.append(enqueued_at)

    @property
    def n_rows(self) -> int:
        """Unconsumed rows remaining."""
        return len(self.counts) - self.head

    @property
    def count(self) -> float:
        """Total payload events across unconsumed rows (diagnostics)."""
        return sum(self.counts[self.head:])

    def row_batch(self, index: int) -> "EventBatch":
        """Materialize one row as a standalone :class:`EventBatch`."""
        return EventBatch(
            count=self.counts[index],
            t_start=self.t_starts[index],
            t_end=self.t_ends[index],
            delay=self.delays[index],
            bytes_per_event=self.bytes_per_event,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RecordBatch(rows={self.n_rows}, events={self.count:.0f}, "
            f"bpe={self.bytes_per_event})"
        )


class Watermark:
    """Progress event: no event with event-time ``<= timestamp`` follows.

    ``source_id`` identifies which input stream of a multi-input (join)
    operator carried the watermark; single-input pipelines leave it 0.
    ``is_swm`` is set by a window operator when this watermark unblocked at
    least one pane — it is then a *sweeping watermark* for downstream
    operators, and the sink measures output latency on it (Sec. 2.2).

    Value-semantic ``__slots__`` class (construction-hot: every operator
    forwards a fresh watermark per hop); treat instances as immutable.
    """

    __slots__ = ("timestamp", "source_id", "is_swm")

    def __init__(
        self, timestamp: float, source_id: int = 0, is_swm: bool = False
    ) -> None:
        object.__setattr__(self, "timestamp", timestamp)
        object.__setattr__(self, "source_id", source_id)
        object.__setattr__(self, "is_swm", is_swm)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"Watermark is immutable (tried to set {name!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Watermark):
            return NotImplemented
        return (
            self.timestamp == other.timestamp
            and self.source_id == other.source_id
            and self.is_swm == other.is_swm
        )

    def __hash__(self) -> int:
        return hash((self.timestamp, self.source_id, self.is_swm))

    def __repr__(self) -> str:
        return (
            f"Watermark(timestamp={self.timestamp!r}, "
            f"source_id={self.source_id!r}, is_swm={self.is_swm!r})"
        )


class LatencyMarker:
    """Probe injected at the source to measure propagation delay.

    The paper injects one marker per source every 200 ms; the sink records
    ``clock.now - created_at`` on arrival. Treat instances as immutable.
    """

    __slots__ = ("created_at", "marker_id")

    def __init__(self, created_at: float, marker_id: int | None = None) -> None:
        object.__setattr__(self, "created_at", created_at)
        object.__setattr__(
            self, "marker_id", next(_marker_ids) if marker_id is None else marker_id
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"LatencyMarker is immutable (tried to set {name!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyMarker):
            return NotImplemented
        return (
            self.created_at == other.created_at
            and self.marker_id == other.marker_id
        )

    def __hash__(self) -> int:
        return hash((self.created_at, self.marker_id))

    def __repr__(self) -> str:
        return (
            f"LatencyMarker(created_at={self.created_at!r}, "
            f"marker_id={self.marker_id!r})"
        )


Record = object  # EventBatch | RecordBatch | Watermark | LatencyMarker


def is_data(record: object) -> bool:
    """True for payload-bearing records (batches)."""
    return isinstance(record, (EventBatch, RecordBatch))


def is_control(record: object) -> bool:
    """True for control records (watermarks and latency markers)."""
    return isinstance(record, (Watermark, LatencyMarker))
