"""Stream records flowing between operators.

To keep a pure-Python simulation tractable at the paper's event rates
(10,000+ events per second per query), payload events are represented as
*batches*: one :class:`EventBatch` stands for ``count`` events generated over
the event-time interval ``[t_start, t_end]`` that experienced the same
network delay. All scheduling-relevant quantities — queue sizes, processing
cost, selectivity, memory footprint, window assignment — are functions of
counts and timestamp ranges, so batching preserves the behaviour the paper
measures while cutting interpreter overhead by orders of magnitude.

Watermarks and latency markers remain individual records because their
per-record semantics (progress signalling, latency probing) are the object
of study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count as _counter

_marker_ids = _counter()


@dataclass
class EventBatch:
    """A group of payload events sharing generation interval and delay.

    Attributes:
        count: Number of events represented (may be fractional mid-pipeline
            after selectivity scaling; sources always emit integral counts).
        t_start: Earliest event-time in the batch (ms).
        t_end: Latest event-time in the batch (ms), ``>= t_start``. Event
            times are treated as uniformly spread over ``[t_start, t_end]``
            when a batch must be split across window panes.
        delay: Network delay the events experienced between generation at
            the source and ingestion by the engine (ms). Klink's runtime
            data acquisition reads this to build its delay history.
        bytes_per_event: Serialized size used by the memory model.
    """

    count: float
    t_start: float
    t_end: float
    delay: float = 0.0
    bytes_per_event: int = 100

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"negative batch count: {self.count}")
        if self.t_end < self.t_start:
            raise ValueError(
                f"batch interval inverted: [{self.t_start}, {self.t_end}]"
            )

    @property
    def bytes(self) -> float:
        """Total memory footprint of the batch."""
        return self.count * self.bytes_per_event

    def split_fraction(self, fraction: float) -> "EventBatch":
        """Return a new batch holding ``fraction`` of this batch's events.

        Used when a scheduling cycle's budget runs out mid-batch; the
        remainder stays queued. The event-time range is kept identical on
        both halves (events are interleaved in time, not prefix-ordered).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        return EventBatch(
            count=self.count * fraction,
            t_start=self.t_start,
            t_end=self.t_end,
            delay=self.delay,
            bytes_per_event=self.bytes_per_event,
        )


@dataclass(frozen=True)
class Watermark:
    """Progress event: no event with event-time ``<= timestamp`` follows.

    ``source_id`` identifies which input stream of a multi-input (join)
    operator carried the watermark; single-input pipelines leave it 0.
    ``is_swm`` is set by a window operator when this watermark unblocked at
    least one pane — it is then a *sweeping watermark* for downstream
    operators, and the sink measures output latency on it (Sec. 2.2).
    """

    timestamp: float
    source_id: int = 0
    is_swm: bool = False


@dataclass(frozen=True)
class LatencyMarker:
    """Probe injected at the source to measure propagation delay.

    The paper injects one marker per source every 200 ms; the sink records
    ``clock.now - created_at`` on arrival.
    """

    created_at: float
    marker_id: int = field(default_factory=lambda: next(_marker_ids))


Record = object  # EventBatch | Watermark | LatencyMarker (py39-friendly alias)


def is_data(record: object) -> bool:
    """True for payload-bearing records (batches)."""
    return isinstance(record, EventBatch)


def is_control(record: object) -> bool:
    """True for control records (watermarks and latency markers)."""
    return isinstance(record, (Watermark, LatencyMarker))
