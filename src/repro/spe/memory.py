"""SPE memory model and backpressure.

Memory pressure is what separates Klink-with-MM from Klink-without-MM in
the paper's evaluation (Figs. 6b, 6d, 8, 9a). The model charges every
queued record's bytes plus window-operator state to a finite budget. When
utilization reaches the backpressure threshold, the engine stops delivering
ingested records into operator queues — the paper's "backpressure mechanism
that throttles the input rate" — which eases memory at the cost of delaying
the whole stream (including watermarks, and therefore SWMs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

GIB = 1024 ** 3


@dataclass
class MemoryConfig:
    """Memory budget parameters.

    Attributes:
        capacity_bytes: Total memory available to operator queues + state
            (the paper's machines max out at 17.5 GB of usable heap, Fig 8).
        backpressure_threshold: Fraction of capacity at which ingestion is
            throttled.
        pressure_tax_start: Utilization above which memory pressure starts
            costing CPU.
        pressure_tax_full: Utilization at which the tax saturates.
        pressure_tax_max: Fraction of the CPU budget lost once the tax
            saturates.

    The *pressure tax* models the runtime cost of operating a JVM-based SPE
    near its heap limit: garbage-collection pauses, allocation stalls, and
    cache pollution consume a growing share of CPU as the heap fills. This
    is the mechanism behind the paper's Figs. 8/9b — the Default scheduler
    pegs memory at the limit and its CPU utilization *drops* ("lower CPU
    utilization levels are a manifestation of the SPE not being able to
    process events efficiently"), while Klink's memory management keeps
    utilization lower and sustains high useful CPU. The tax ramps
    quadratically between ``pressure_tax_start`` and ``pressure_tax_full``.
    """

    capacity_bytes: float = 17.5 * GIB
    backpressure_threshold: float = 0.98
    pressure_tax_start: float = 0.05
    pressure_tax_full: float = 0.35
    pressure_tax_max: float = 0.30
    #: per-query credit bound as a fraction of capacity (None = unbounded).
    #: Models Flink's credit-based flow control: a query whose queued
    #: records exceed its bounded channel buffers stalls its own sources
    #: without affecting other queries. Disabled by default — stalling a
    #: channel reorders it against the watermark stream and drops late
    #: events at the stall boundary; the global backpressure model is the
    #: primary mechanism. Kept for ablation studies.
    per_query_bound_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {self.capacity_bytes}")
        if not 0 < self.backpressure_threshold <= 1:
            raise ValueError(
                f"threshold must be in (0, 1]: {self.backpressure_threshold}"
            )
        if not 0 <= self.pressure_tax_start < self.pressure_tax_full <= 1:
            raise ValueError(
                "tax thresholds must satisfy 0 <= start < full <= 1: "
                f"{self.pressure_tax_start}, {self.pressure_tax_full}"
            )
        if not 0 <= self.pressure_tax_max < 1:
            raise ValueError(
                f"tax max must be in [0, 1): {self.pressure_tax_max}"
            )
        if self.per_query_bound_fraction is not None and not (
            0 < self.per_query_bound_fraction <= 1
        ):
            raise ValueError(
                "per-query bound fraction must be in (0, 1]: "
                f"{self.per_query_bound_fraction}"
            )


class MemoryModel:
    """Tracks utilization across a set of queries and signals backpressure."""

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()
        #: bytes occupied by external tenants (set by fault injection's
        #: MemoryPressureSpike episodes); charged against the same budget.
        self.external_bytes: float = 0.0

    def used_bytes(self, queries: Sequence) -> float:
        """Current footprint: queued records plus window state."""
        return sum(q.memory_bytes for q in queries) + self.external_bytes

    def utilization(self, queries: Sequence) -> float:
        """Fraction of capacity in use (can exceed 1.0 transiently)."""
        return self.used_bytes(queries) / self.config.capacity_bytes

    def backpressured(self, queries: Sequence) -> bool:
        """True when ingestion must be throttled."""
        return self.utilization(queries) >= self.config.backpressure_threshold

    def query_stalled(self, query) -> bool:
        """True when a query's own credit bound is exhausted (its sources
        stall under Flink-style per-channel flow control)."""
        fraction = self.config.per_query_bound_fraction
        if fraction is None:
            return False
        return query.memory_bytes >= fraction * self.config.capacity_bytes

    def pressure_tax(self, utilization: float) -> float:
        """Fraction of CPU lost to memory pressure at ``utilization``."""
        start = self.config.pressure_tax_start
        full = self.config.pressure_tax_full
        if utilization <= start:
            return 0.0
        x = min((utilization - start) / (full - start), 1.0)
        return self.config.pressure_tax_max * x * x
