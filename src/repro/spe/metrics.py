"""Metrics collection: latency, throughput, slowdown, utilization.

Mirrors Sec. 6.1.2 of the paper:

* **Output latency** — the propagation delay of SWMs: SWM event-time
  subtracted from the engine clock at the moment the sink processes it.
* **Latency markers** — probes injected every 200 ms at each source to
  sample event propagation delay with negligible overhead.
* **Throughput** — aggregate events processed per second over all
  operators.
* **Slowdown** — SWM propagation delay divided by the ideal end-to-end
  cost of processing a single event through the pipeline.
* **Utilization time series** — memory bytes and CPU busy fraction sampled
  every cycle (the paper samples every 200 ms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import OperatorProfile


def percentile(values: Sequence[float], pct: float) -> float:
    """Percentile with linear interpolation; NaN for empty input.

    Accepts any array-like (list, tuple, numpy array, generator-backed
    sequence); emptiness is tested by length, not truthiness, because
    ``if not array`` is ambiguous for numpy arrays with more than one
    element.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return math.nan
    return float(np.percentile(arr, pct))


def cdf_points(values: Sequence[float], pcts: Iterable[float]) -> List[Tuple[float, float]]:
    """(percentile, latency) pairs for CDF figures (Figs. 6b, 7c, 7d).

    All requested percentiles are computed in one vectorized
    ``np.percentile`` call (which handles ordering internally), instead
    of re-sorting and re-scanning the data once per point.
    """
    pct_list = [float(p) for p in pcts]
    arr = np.asarray(values, dtype=float)
    if arr.size == 0 or not pct_list:
        return [(p, math.nan) for p in pct_list]
    qs = np.percentile(arr, pct_list)
    return [(p, float(v)) for p, v in zip(pct_list, qs)]


@dataclass
class UtilizationSample:
    """One per-cycle utilization snapshot."""

    time: float
    memory_bytes: float
    cpu_fraction: float
    events_processed: float


@dataclass
class RunMetrics:
    """Aggregated results of one engine run."""

    duration_ms: float = 0.0
    swm_latencies: List[float] = field(default_factory=list)
    marker_latencies: List[float] = field(default_factory=list)
    slowdowns: List[float] = field(default_factory=list)
    per_query_swm_latencies: Dict[str, List[float]] = field(default_factory=dict)
    samples: List[UtilizationSample] = field(default_factory=list)
    total_events_processed: float = 0.0
    total_events_ingested: float = 0.0
    events_shed: float = 0.0
    late_events_dropped: float = 0.0
    scheduler_overhead_ms: float = 0.0
    busy_cpu_ms: float = 0.0  # CPU-ms spent processing events (all cores)
    backpressure_cycles: int = 0
    cycles: int = 0
    # fault-injection / invariant-checking accounting
    fault_cycles: int = 0  # cycles with >= 1 active fault episode
    watermarks_dropped_by_faults: int = 0
    invariant_violations: int = 0
    # telemetry aggregates, populated by a TelemetrySampler attached to
    # the engine (repro.obs.timeseries); NaN/0 when telemetry is off
    deadline_misses: int = 0  # sink latencies above the deadline SLO
    watermark_lag_max_ms: float = math.nan
    watermark_lag_mean_ms: float = math.nan
    alerts_fired: int = 0
    alert_counts: Dict[str, int] = field(default_factory=dict)
    #: per-operator profiles, populated at the end of a run when an
    #: OperatorProfiler is attached to the engine (repro.obs.profile).
    operator_profiles: List["OperatorProfile"] = field(default_factory=list)  # klink: transient[end-of-run observability artifact, not run state]
    # resilience accounting, populated by repro.resilience when a
    # CheckpointCoordinator / RecoveryManager is attached; these are
    # processing-time counters and are never rolled back by a restore
    checkpoints_taken: int = 0  # klink: transient[processing-time resilience accounting; never rolls back]
    checkpoint_bytes_last: int = 0  # klink: transient[processing-time resilience accounting; never rolls back]
    recoveries: int = 0  # klink: transient[processing-time resilience accounting; never rolls back]
    recovery_time_ms: List[float] = field(default_factory=list)  # klink: transient[processing-time resilience accounting; never rolls back]
    replay_span_ms: List[float] = field(default_factory=list)  # klink: transient[processing-time resilience accounting; never rolls back]
    recovery_events: List[Dict[str, object]] = field(default_factory=list)  # klink: transient[processing-time resilience accounting; never rolls back]
    events_lost_to_failures: float = 0.0  # klink: transient[processing-time resilience accounting; never rolls back]
    post_failure_latency_inflation: float = math.nan  # klink: transient[processing-time resilience accounting; never rolls back]

    # -- latency ------------------------------------------------------------

    @property
    def mean_latency_ms(self) -> float:
        if not self.swm_latencies:
            return math.nan
        return float(np.mean(self.swm_latencies))

    def latency_percentile(self, pct: float) -> float:
        return percentile(self.swm_latencies, pct)

    def latency_cdf(self, pcts: Iterable[float] = (40, 50, 60, 70, 80, 90, 95, 99)):
        return cdf_points(self.swm_latencies, pcts)

    # -- throughput / slowdown ----------------------------------------------

    @property
    def throughput_eps(self) -> float:
        """Aggregate events processed per second across all operators."""
        if self.duration_ms <= 0:
            return 0.0
        return self.total_events_processed / (self.duration_ms / 1000.0)

    @property
    def mean_slowdown(self) -> float:
        if not self.slowdowns:
            return math.nan
        return float(np.mean(self.slowdowns))

    # -- utilization ----------------------------------------------------------

    @property
    def mean_memory_bytes(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([s.memory_bytes for s in self.samples]))

    def memory_percentile(self, pct: float) -> float:
        return percentile([s.memory_bytes for s in self.samples], pct)

    @property
    def mean_cpu_fraction(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([s.cpu_fraction for s in self.samples]))

    def cpu_percentile(self, pct: float) -> float:
        return percentile([s.cpu_fraction for s in self.samples], pct)

    @property
    def overhead_fraction(self) -> float:
        """Scheduler overhead as a fraction of total CPU time delivered
        (the paper reports it as % of throughput, Fig. 9d): the share of
        busy CPU-milliseconds the SPE spent running the scheduling
        algorithm instead of processing events."""
        denom = self.busy_cpu_ms + self.scheduler_overhead_ms
        return self.scheduler_overhead_ms / denom if denom > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        """Compact dictionary of headline numbers (used by benches)."""
        return {
            "mean_latency_ms": self.mean_latency_ms,
            "p90_latency_ms": self.latency_percentile(90),
            "p99_latency_ms": self.latency_percentile(99),
            "throughput_eps": self.throughput_eps,
            "mean_slowdown": self.mean_slowdown,
            "mean_memory_gb": self.mean_memory_bytes / (1024 ** 3),
            "mean_cpu_pct": 100.0 * self.mean_cpu_fraction,
            "overhead_pct": 100.0 * self.overhead_fraction,
            "fault_cycles": float(self.fault_cycles),
            "invariant_violations": float(self.invariant_violations),
            "deadline_misses": float(self.deadline_misses),
            "max_watermark_lag_ms": self.watermark_lag_max_ms,
            "mean_watermark_lag_ms": self.watermark_lag_mean_ms,
            "alerts_fired": float(self.alerts_fired),
        }

    def resilience_summary(self) -> Dict[str, object]:
        """Checkpoint/recovery headline numbers; kept out of
        :meth:`summary` so non-failure runs stay byte-identical with and
        without checkpointing enabled."""
        mean_recovery = (
            float(np.mean(self.recovery_time_ms))
            if self.recovery_time_ms
            else math.nan
        )
        return {
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_bytes_last": self.checkpoint_bytes_last,
            "recoveries": self.recoveries,
            "recovery_time_ms": list(self.recovery_time_ms),
            "mean_recovery_time_ms": mean_recovery,
            "replay_span_ms": list(self.replay_span_ms),
            "events_lost_to_failures": self.events_lost_to_failures,
            "post_failure_latency_inflation": self.post_failure_latency_inflation,
            "events": [dict(event) for event in self.recovery_events],
        }


def mean_with_ci(values: Sequence[float], confidence: float = 0.95) -> Tuple[float, float]:
    """(mean, half-width of the confidence interval) across repetitions.

    The paper reports 95% confidence intervals over >= 10 runs. The
    half-width uses the Student-t critical value with ``n - 1`` degrees
    of freedom (``sem * t.ppf((1 + confidence) / 2, n - 1)``), which is
    exact for normally distributed repetitions at any ``n`` and matters
    at the small repetition counts the harness defaults to — the normal
    approximation would understate the interval there (e.g. 12% narrower
    at n = 10, 27% at n = 5). Degenerate inputs: an empty sequence yields
    ``(nan, nan)``; a single value yields ``(value, 0.0)``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return math.nan, math.nan
    if arr.size == 1:
        return float(arr[0]), 0.0
    from scipy import stats

    mean = float(arr.mean())
    sem = float(stats.sem(arr))
    half = sem * float(stats.t.ppf((1 + confidence) / 2.0, arr.size - 1))
    return mean, half
