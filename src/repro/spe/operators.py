"""Stream operators.

Operators are the units the runtime scheduler executes (Sec. 5: Flink
*Tasks*). Each operator consumes records from one or more input
:class:`~repro.spe.streams.Channel` objects, charges processing cost
against the scheduling cycle's CPU budget, and emits records downstream.

Cost model
----------
Every operator declares ``cost_per_event_ms`` — CPU milliseconds consumed
per processed event — and a design-time ``selectivity`` (output events per
input event). Measured selectivity and mean cost are also tracked at
runtime, because Klink and Highest-Rate consume *measured* values from the
runtime data-acquisition module rather than trusting declarations.

Window semantics
----------------
:class:`WindowedAggregate` and :class:`WindowedJoin` implement the blocking
operators the paper targets: events accumulate in per-pane state and only a
watermark covering a pane's deadline unblocks (fires) it. The first
watermark to fire a pane is forwarded downstream flagged as a *sweeping
watermark* (SWM), after the pane's output events (invariant (ii) of
Sec. 2.2: the output operator receives the window's events before the SWM).
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.spe.events import EventBatch, LatencyMarker, RecordBatch, Watermark
from repro.spe.streams import _COMPACT_THRESHOLD, Channel, _Entry
from repro.spe.windows import Pane, WindowAssigner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.lineage import LineageTracker

# Budget below which a step loop stops rather than splitting ever-smaller
# batch fragments.
_MIN_BUDGET_MS = 1e-6


class OperatorStats:
    """Measured runtime statistics for one operator."""

    __slots__ = (
        "events_in",
        "events_out",
        "busy_ms",
        "late_events_dropped",
        "watermarks_seen",
        "panes_fired",
    )

    def __init__(self) -> None:
        self.events_in = 0.0
        self.events_out = 0.0
        self.busy_ms = 0.0
        self.late_events_dropped = 0.0
        self.watermarks_seen = 0
        self.panes_fired = 0

    @property
    def measured_selectivity(self) -> float:
        """Observed output/input ratio; falls back to 1.0 with no data."""
        if self.events_in <= 0:
            return 1.0
        return self.events_out / self.events_in

    @property
    def measured_cost_ms(self) -> float:
        """Observed CPU cost per input event; 0.0 with no data."""
        if self.events_in <= 0:
            return 0.0
        return self.busy_ms / self.events_in


class Operator:
    """Base class: a stateless unary operator applying selectivity.

    Subclasses override :meth:`_on_batch` and :meth:`_on_watermark` to
    change data/watermark handling; the budget-accounting loop in
    :meth:`step` is shared.
    """

    #: lineage tracker observer, installed by Engine when tracing is
    #: enabled; hooks fire on every FULL consumption of a queued record
    #: (a partially consumed batch keeps its final event queued, so its
    #: queue span is still open).
    lineage: Optional["LineageTracker"] = None

    def __init__(
        self,
        name: str,
        cost_per_event_ms: float,
        selectivity: float = 1.0,
        out_bytes_per_event: int = 100,
        n_inputs: int = 1,
    ) -> None:
        if cost_per_event_ms < 0:
            raise ValueError(f"negative cost: {cost_per_event_ms}")
        if selectivity < 0:
            raise ValueError(f"negative selectivity: {selectivity}")
        if n_inputs < 1:
            raise ValueError(f"operator needs >= 1 input: {n_inputs}")
        self.name = name
        self.cost_per_event_ms = float(cost_per_event_ms)
        #: transient cost scaling set by fault injection (interference /
        #: slowdown episodes); 1.0 under normal operation. Inflates the
        #: *measured* cost, which is what runtime-adaptive policies see.
        self.cost_multiplier = 1.0
        self.selectivity = float(selectivity)
        self.out_bytes_per_event = int(out_bytes_per_event)
        self.inputs: List[Channel] = [
            Channel(f"{name}.in{i}", owner=self) for i in range(n_inputs)
        ]
        for i, channel in enumerate(self.inputs):
            channel._consumer_index = i
        self.output: Optional[Channel] = None  # wired by Query
        self.stats = OperatorStats()
        # Memoized queue aggregates: schedulers, the memory policy, the
        # audit log, and the telemetry sampler all read queued_events /
        # queued_bytes several times per scheduling cycle. The input
        # channels mark this flag on every enqueue/dequeue, so the sums
        # are recomputed at most once per channel mutation instead of on
        # every read (byte-identical: the same sum over the same values).
        self._queues_dirty = True
        self._queued_events_memo = 0.0
        self._queued_bytes_memo = 0.0
        # True when this class's _on_row is exactly the stateless fast-path
        # handler: _consume_rows may then fuse row handling and emission
        # into its drain loop (same expressions, no per-row calls).
        self._stateless_row = (  # klink: transient[build-time classification derived from the class]
            type(self)._on_row is _StatelessRowFastPath._on_row
        )
        # Likewise for the windowed pane-assignment handler: when the class
        # inherits _WindowedOperatorBase._on_row unchanged (windowed
        # aggregates and joins both do), _consume_rows may inline the pane
        # bookkeeping into its drain loop with per-drain invariants hoisted.
        self._windowed_row = (  # klink: transient[build-time classification derived from the class]
            type(self)._on_row is _WindowedOperatorBase._on_row
        )

    # -- wiring --------------------------------------------------------------

    def connect(self, downstream: "Operator", input_index: int = 0) -> None:
        """Wire this operator's output to ``downstream``'s input channel."""
        self.output = downstream.inputs[input_index]  # klink: transient[build-time wiring, fixed for the life of the topology]

    # -- scheduler-facing introspection ---------------------------------------

    def _refresh_queue_memo(self) -> None:
        # Plain loops over the channel fields (same left-to-right float
        # adds as the generator-expression sums they replace; ``sum``
        # starts from int 0, and 0 + float == 0.0 + float bit-for-bit).
        events = 0.0
        nbytes = 0.0
        for ch in self.inputs:
            events += ch._queued_events
            nbytes += ch._queued_bytes
        self._queued_events_memo = events  # klink: transient[memo over channel state, which is captured]
        self._queued_bytes_memo = nbytes  # klink: transient[memo over channel state, which is captured]
        self._queues_dirty = False  # klink: transient[memo validity flag; restore marks it dirty]

    @property
    def queued_events(self) -> float:
        """Payload events waiting across all input channels."""
        if self._queues_dirty:
            self._refresh_queue_memo()
        return self._queued_events_memo

    @property
    def queued_bytes(self) -> float:
        if self._queues_dirty:
            self._refresh_queue_memo()
        return self._queued_bytes_memo

    @property
    def state_events(self) -> float:
        """Events buffered in operator state; stateless ops hold none."""
        return 0.0

    @property
    def state_bytes(self) -> float:
        """Memory held in operator state (windows); stateless ops hold none."""
        return 0.0

    def has_work(self) -> bool:
        """True when any input channel holds a record."""
        for ch in self.inputs:
            if ch._entries:
                return True
        return False

    def next_deadline(self, after: float) -> float:
        """Earliest window deadline after event-time ``after`` (inf if none)."""
        return math.inf

    # -- execution -------------------------------------------------------------

    def step(self, budget_ms: float, now: float) -> float:
        """Process queued records within ``budget_ms``; return ms consumed.

        Inputs are drained round-robin so multi-input operators make
        progress on every stream: each round splits the remaining budget
        evenly across the inputs that still hold records, so one stream's
        oversized batch cannot starve the others (a join must keep all its
        watermark fronts moving). Emission order preserves FIFO per input.
        """
        if len(self.inputs) == 1:
            # Single-input fast path: the round-robin loop degenerates —
            # one active channel means share == grant == budget - used,
            # exactly what the general loop computes (division by 1 is
            # exact), so this path is float-for-float identical.
            channel = self.inputs[0]
            entries = channel._entries
            used = 0.0
            while budget_ms - used > _MIN_BUDGET_MS and entries:
                entry = entries[0]
                record = entry.record
                if type(record) is RecordBatch:
                    used = self._consume_rows(entry, channel, budget_ms, used, now)
                    continue
                # Channel.pop inlined: the head entry is already in hand,
                # and control records (the common case here) need no
                # payload accounting.
                entries.popleft()
                if type(record) is EventBatch:
                    channel._pop_batch_accounting(record)
                used += self._dispatch(
                    record, channel, entry.enqueued_at, budget_ms - used, now
                )
            return used
        used = 0.0
        if len(self.inputs) == 2:
            # Binary joins dominate the multi-input population, and their
            # row-per-channel-per-turn granularity makes this loop the
            # engine's hottest scaffold. Specialized round-robin over the
            # fixed (a, b) pair: the same expressions in the same order as
            # the general loop below with ``active == [a, b]`` (division
            # by len(active) == 2, grant recomputed per turn), minus the
            # per-round list construction and peek() calls.
            in_a, in_b = self.inputs
            a_entries = in_a._entries
            b_entries = in_b._entries
            while budget_ms - used > _MIN_BUDGET_MS:
                if a_entries:
                    if not b_entries:
                        channel = in_a
                        break_after = True
                    else:
                        channel = None  # both active: run the pair round
                elif b_entries:
                    channel = in_b
                    break_after = True
                else:
                    break
                if channel is not None:
                    # Single active channel: drain whole batches, exactly
                    # like the general loop's len(active) == 1 branch.
                    entries = channel._entries
                    while budget_ms - used > _MIN_BUDGET_MS and entries:
                        entry = entries[0]
                        record = entry.record
                        if type(record) is RecordBatch:
                            used = self._consume_rows(
                                entry, channel, budget_ms, used, now
                            )
                            continue
                        entries.popleft()
                        if type(record) is EventBatch:
                            channel._pop_batch_accounting(record)
                        used += self._dispatch(
                            record, channel, entry.enqueued_at,
                            budget_ms - used, now,
                        )
                    break
                rem = budget_ms - used
                share = rem / 2
                # channel a's turn (inlined min: ties take the first arg)
                grant = share if share <= rem else rem
                if grant <= _MIN_BUDGET_MS:
                    break
                entry = a_entries[0]
                record = entry.record
                if type(record) is RecordBatch:
                    used += self._consume_row_turn(entry, in_a, grant, now)
                else:
                    a_entries.popleft()
                    if type(record) is EventBatch:
                        in_a._pop_batch_accounting(record)
                    used += self._dispatch(
                        record, in_a, entry.enqueued_at, grant, now
                    )
                # channel b's turn
                rem = budget_ms - used
                grant = share if share <= rem else rem
                if grant <= _MIN_BUDGET_MS:
                    continue
                if not b_entries:  # pragma: no cover - acyclic topology
                    continue
                entry = b_entries[0]
                record = entry.record
                if type(record) is RecordBatch:
                    used += self._consume_row_turn(entry, in_b, grant, now)
                else:
                    b_entries.popleft()
                    if type(record) is EventBatch:
                        in_b._pop_batch_accounting(record)
                    used += self._dispatch(
                        record, in_b, entry.enqueued_at, grant, now
                    )
            return used
        progressed = True
        while budget_ms - used > _MIN_BUDGET_MS and progressed:
            progressed = False
            active = [ch for ch in self.inputs if ch._entries]
            if not active:
                break
            if len(active) == 1:
                # Only one input holds records: the round-robin loop
                # degenerates (share == grant == budget - used per record,
                # division by 1 is exact) into the single-input path, so
                # whole batches can be drained here byte-identically.
                # Nothing is pushed to this operator's own inputs during
                # its step (the topology is acyclic), so the other inputs
                # stay empty for the rest of the budget.
                channel = active[0]
                entries = channel._entries
                while budget_ms - used > _MIN_BUDGET_MS and entries:
                    entry = entries[0]
                    if type(entry.record) is RecordBatch:
                        used = self._consume_rows(
                            entry, channel, budget_ms, used, now
                        )
                        continue
                    channel.pop()
                    used += self._dispatch(
                        entry.record, channel, entry.enqueued_at,
                        budget_ms - used, now,
                    )
                break
            share = (budget_ms - used) / len(active)
            for channel in active:
                grant = min(share, budget_ms - used)
                if grant <= _MIN_BUDGET_MS:
                    break
                entry = channel.peek()
                if entry is None:
                    continue
                if type(entry.record) is RecordBatch:
                    # Coalesced channel on a multi-input operator: consume
                    # exactly ONE row this turn — the per-event loop pops
                    # one record per channel per round, and the row cap
                    # replicates that granularity (and thus the budget
                    # split) byte-for-byte.
                    used += self._consume_row_turn(entry, channel, grant, now)
                    progressed = True
                    continue
                channel.pop()
                used += self._dispatch(
                    entry.record, channel, entry.enqueued_at, grant, now
                )
                progressed = True
        return used

    def _consume_rows(
        self,
        entry: object,
        channel: Channel,
        budget_ms: float,
        used: float,
        now: float,
    ) -> float:
        """Drain rows of the head :class:`RecordBatch` within the budget.

        Replays, row by row, the exact arithmetic the per-event path
        performs — grant recomputation (`budget - used` per row), the
        full-vs-partial cost split of :meth:`_consume_batch`, and the
        channel pop / push_front accounting sequence — so every float the
        scheduler or the invariant monitor can observe is byte-identical
        to ``batch_size=1`` execution. Only called on single-input
        operators (multi-input ones use :meth:`_consume_row_turn`).
        Returns the updated ``used``.
        """
        if self.lineage is None:
            # Fusion/inlining skips the per-row _on_row calls the lineage
            # hooks piggyback on; fused and unfused execution are
            # byte-identical (proven by the equivalence gate), so tracing
            # simply takes the unfused path.
            if self._stateless_row:
                output = self.output
                if (
                    output is not None
                    and output.batch_size > 1
                    and output.latency_ms == 0.0
                ):
                    return self._consume_rows_fused(
                        entry, channel, budget_ms, used, now, output
                    )
            elif self._windowed_row:
                return self._consume_rows_windowed(
                    entry, channel, budget_ms, used, now
                )
        rb = entry.record
        counts = rb.counts
        n = len(counts)
        bpe = rb.bytes_per_event
        cpe = self.cost_per_event_ms
        mult = self.cost_multiplier
        stats = self.stats
        input_index = channel._consumer_index
        on_row = self._on_row
        lineage = self.lineage
        # Channel accounting hoisted into locals: the same additions in
        # the same order, written back after the loop. _on_row never
        # touches its own input channel's accounting (outputs are a
        # different channel; the topology is acyclic), so no reader can
        # observe the intermediate values.
        q_events = channel._queued_events
        q_bytes = channel._queued_bytes
        popped = channel.events_popped
        ev_in = stats.events_in
        busy = stats.busy_ms
        i = rb.head
        while i < n:
            grant = budget_ms - used
            if grant <= _MIN_BUDGET_MS:
                break
            count = counts[i]
            full_cost = count * cpe * mult
            if full_cost <= grant or cpe == 0.0:
                # Pop accounting for the whole row, then process it —
                # the order of Channel.pop followed by _consume_batch.
                q_events -= count
                q_bytes -= count * bpe
                popped += count
                if q_events < 1e-9:
                    q_events = 0.0
                if q_bytes < 1e-6:
                    q_bytes = 0.0
                ev_in += count
                busy += full_cost
                on_row(rb, i, count, input_index, now)
                if lineage is not None:
                    lineage.on_consumed(
                        self, rb.t_starts[i], rb.t_ends[i],
                        rb.enqueued_ats[i], channel, now,
                    )
                used += full_cost
                i += 1
                continue
            # Budget covers only part of the row: process the affordable
            # fraction and leave the remainder as the new head row (the
            # pop + push_front sequence of the per-event path).
            fraction = grant / full_cost
            head_count = count * fraction
            tail_count = count * (1.0 - fraction)
            q_events -= count
            q_bytes -= count * bpe
            popped += count
            if q_events < 1e-9:
                q_events = 0.0
            if q_bytes < 1e-6:
                q_bytes = 0.0
            ev_in += head_count
            busy += grant
            on_row(rb, i, head_count, input_index, now)
            used += grant
            if tail_count > 0:
                q_events += tail_count
                q_bytes += tail_count * bpe
                channel.events_returned += tail_count
                counts[i] = tail_count
            else:  # pragma: no cover - zero-mass remainder
                i += 1
            break
        channel._queued_events = q_events
        channel._queued_bytes = q_bytes
        channel.events_popped = popped
        stats.events_in = ev_in
        stats.busy_ms = busy
        rb.head = i
        if i >= n:
            channel.discard_head()
        else:
            # The first unconsumed row's arrival defines head_arrival,
            # exactly as the per-event queue's next entry would.
            entry.enqueued_at = rb.enqueued_ats[i]
        self._queues_dirty = True
        return used

    def _consume_rows_windowed(
        self,
        entry: object,
        channel: Channel,
        budget_ms: float,
        used: float,
        now: float,
    ) -> float:
        """:meth:`_consume_rows` with ``_WindowedOperatorBase._on_row``
        inlined into the drain loop.

        Same per-row arithmetic in the same order; the drain-constant
        reads of the row handler are hoisted once per call: the input's
        watermark clock and the combined event clock only move in
        ``_on_watermark`` (never during a payload drain), and the pane
        table / heap objects are stable attributes. ``late_events_dropped``
        joins the hoisted stats accumulators (left-fold float adds are
        associative-free, so the running local equals the per-row
        attribute adds bit-for-bit), and the state-events memo is
        invalidated once up front — an extra invalidation is unobservable
        because the memoized recomputation returns the same sum.
        """
        rb = entry.record
        counts = rb.counts
        n = len(counts)
        bpe = rb.bytes_per_event
        cpe = self.cost_per_event_ms
        mult = self.cost_multiplier
        stats = self.stats
        t_starts = rb.t_starts
        t_ends = rb.t_ends
        clock = self._input_watermarks[channel._consumer_index]
        event_clock = self._event_clock
        panes = self._panes
        panes_get = panes.get
        pane_ends = self._pane_ends
        pane_heap = self._pane_heap
        heappush = heapq.heappush
        assign_range_raw = self.assigner.assign_range_raw
        self._state_events_memo = None  # klink: transient[memo over _panes, which is captured]
        q_events = channel._queued_events
        q_bytes = channel._queued_bytes
        popped = channel.events_popped
        ev_in = stats.events_in
        busy = stats.busy_ms
        late = stats.late_events_dropped
        i = rb.head
        while i < n:
            grant = budget_ms - used
            if grant <= _MIN_BUDGET_MS:
                break
            count = counts[i]
            full_cost = count * cpe * mult
            if full_cost <= grant or cpe == 0.0:
                q_events -= count
                q_bytes -= count * bpe
                popped += count
                if q_events < 1e-9:
                    q_events = 0.0
                if q_bytes < 1e-6:
                    q_bytes = 0.0
                ev_in += count
                busy += full_cost
                c = count
                used += full_cost
                i += 1
            else:
                # Partial row: the affordable fraction flows into panes,
                # the remainder becomes the new head row.
                fraction = grant / full_cost
                c = count * fraction
                tail_count = count * (1.0 - fraction)
                q_events -= count
                q_bytes -= count * bpe
                popped += count
                if q_events < 1e-9:
                    q_events = 0.0
                if q_bytes < 1e-6:
                    q_bytes = 0.0
                ev_in += c
                busy += grant
                used += grant
                # -- inlined _on_row body for the head fraction --
                t_end = t_ends[i]
                if t_end <= clock:
                    late += c
                else:
                    t_start = t_starts[i]
                    if t_start < clock < t_end:
                        keep = (t_end - clock) / (t_end - t_start)
                        late += c * (1.0 - keep)
                        c *= keep
                        t_start = clock
                    for p_start, p_end, pane_count in assign_range_raw(
                        t_start, t_end, c
                    ):
                        if p_end <= event_clock:
                            late += pane_count
                            continue
                        panes[p_start] = panes_get(p_start, 0.0) + pane_count
                        if p_start not in pane_ends:
                            pane_ends[p_start] = p_end
                            heappush(pane_heap, (p_end, p_start))
                if tail_count > 0:
                    q_events += tail_count
                    q_bytes += tail_count * bpe
                    channel.events_returned += tail_count
                    counts[i] = tail_count
                else:  # pragma: no cover - zero-mass remainder
                    i += 1
                break
            # -- inlined _on_row body (full row) --
            t_end = t_ends[i - 1]
            if t_end <= clock:
                late += c
                continue
            t_start = t_starts[i - 1]
            if t_start < clock < t_end:
                keep = (t_end - clock) / (t_end - t_start)
                late += c * (1.0 - keep)
                c *= keep
                t_start = clock
            for p_start, p_end, pane_count in assign_range_raw(
                t_start, t_end, c
            ):
                if p_end <= event_clock:
                    late += pane_count
                    continue
                panes[p_start] = panes_get(p_start, 0.0) + pane_count
                if p_start not in pane_ends:
                    pane_ends[p_start] = p_end
                    heappush(pane_heap, (p_end, p_start))
        channel._queued_events = q_events
        channel._queued_bytes = q_bytes
        channel.events_popped = popped
        stats.events_in = ev_in
        stats.busy_ms = busy
        stats.late_events_dropped = late
        rb.head = i
        if i >= n:
            channel.discard_head()
        else:
            entry.enqueued_at = rb.enqueued_ats[i]
        self._queues_dirty = True
        return used

    def _consume_rows_fused(
        self,
        entry: object,
        channel: Channel,
        budget_ms: float,
        used: float,
        now: float,
        output: Channel,
    ) -> float:
        """:meth:`_consume_rows` with the stateless ``_on_row`` and its
        :meth:`Channel.push_row` emission fused into the drain loop.

        Same expressions in the same order as the unfused pair — the row
        handler is known to be ``_StatelessRowFastPath._on_row`` and the
        output channel is known to coalesce, so the per-row calls collapse
        into straight-line code. The output tail batch is carried across
        rows (push_row would re-read ``entries[-1]``, which only this loop
        appends to) and the output accounting is hoisted into locals and
        written back once, like the input side. Byte-identical by the
        same argument as :meth:`_consume_rows`.
        """
        rb = entry.record
        counts = rb.counts
        t_starts = rb.t_starts
        t_ends = rb.t_ends
        delays = rb.delays
        n = len(counts)
        bpe = rb.bytes_per_event
        cpe = self.cost_per_event_ms
        mult = self.cost_multiplier
        sel = self.selectivity
        out_bpe = self.out_bytes_per_event
        stats = self.stats
        q_events = channel._queued_events
        q_bytes = channel._queued_bytes
        popped = channel.events_popped
        ev_in = stats.events_in
        busy = stats.busy_ms
        ev_out = stats.events_out
        o_entries = output._entries
        o_cap = output.batch_size
        oq_events = output._queued_events
        oq_bytes = output._queued_bytes
        o_pushed = output.events_pushed
        tail = o_entries[-1].record if o_entries else None
        if type(tail) is not RecordBatch or tail.bytes_per_event != out_bpe:
            tail = None
        else:
            # append_row inlined below: the tail's column lists are bound
            # once per tail (compaction dels in place, so the bindings
            # survive it; a fresh tail rebinds them).
            tl_counts = tail.counts
            tl_t_starts = tail.t_starts
            tl_t_ends = tail.t_ends
            tl_delays = tail.delays
            tl_enqueued = tail.enqueued_ats
        emitted = False
        i = rb.head
        while i < n:
            grant = budget_ms - used
            if grant <= _MIN_BUDGET_MS:
                break
            count = counts[i]
            full_cost = count * cpe * mult
            if full_cost <= grant or cpe == 0.0:
                q_events -= count
                q_bytes -= count * bpe
                popped += count
                if q_events < 1e-9:
                    q_events = 0.0
                if q_bytes < 1e-6:
                    q_bytes = 0.0
                ev_in += count
                busy += full_cost
                out_count = count * sel
                if out_count > 0:
                    ev_out += out_count
                    if (
                        tail is not None
                        and len(tl_counts) - tail.head < o_cap
                    ):
                        if tail.head > _COMPACT_THRESHOLD:
                            h = tail.head
                            del tl_counts[:h]
                            del tl_t_starts[:h]
                            del tl_t_ends[:h]
                            del tl_delays[:h]
                            del tl_enqueued[:h]
                            tail.head = 0
                    else:
                        tail = RecordBatch(out_bpe)
                        tl_counts = tail.counts
                        tl_t_starts = tail.t_starts
                        tl_t_ends = tail.t_ends
                        tl_delays = tail.delays
                        tl_enqueued = tail.enqueued_ats
                        o_entries.append(_Entry(tail, now))
                    tl_counts.append(out_count)
                    tl_t_starts.append(t_starts[i])
                    tl_t_ends.append(t_ends[i])
                    tl_delays.append(delays[i])
                    tl_enqueued.append(now)
                    oq_events += out_count
                    oq_bytes += out_count * out_bpe
                    o_pushed += out_count
                    emitted = True
                used += full_cost
                i += 1
                continue
            fraction = grant / full_cost
            head_count = count * fraction
            tail_count = count * (1.0 - fraction)
            q_events -= count
            q_bytes -= count * bpe
            popped += count
            if q_events < 1e-9:
                q_events = 0.0
            if q_bytes < 1e-6:
                q_bytes = 0.0
            ev_in += head_count
            busy += grant
            out_count = head_count * sel
            if out_count > 0:
                ev_out += out_count
                if tail is not None and len(tail.counts) - tail.head < o_cap:
                    if tail.head > _COMPACT_THRESHOLD:
                        h = tail.head
                        del tail.counts[:h]
                        del tail.t_starts[:h]
                        del tail.t_ends[:h]
                        del tail.delays[:h]
                        del tail.enqueued_ats[:h]
                        tail.head = 0
                    tail.append_row(
                        out_count, t_starts[i], t_ends[i], delays[i], now
                    )
                else:
                    tail = RecordBatch(out_bpe)
                    tail.append_row(
                        out_count, t_starts[i], t_ends[i], delays[i], now
                    )
                    o_entries.append(_Entry(tail, now))
                oq_events += out_count
                oq_bytes += out_count * out_bpe
                o_pushed += out_count
                emitted = True
            used += grant
            if tail_count > 0:
                q_events += tail_count
                q_bytes += tail_count * bpe
                channel.events_returned += tail_count
                counts[i] = tail_count
            else:  # pragma: no cover - zero-mass remainder
                i += 1
            break
        channel._queued_events = q_events
        channel._queued_bytes = q_bytes
        channel.events_popped = popped
        stats.events_in = ev_in
        stats.busy_ms = busy
        stats.events_out = ev_out
        output._queued_events = oq_events
        output._queued_bytes = oq_bytes
        output.events_pushed = o_pushed
        if emitted and output._owner is not None:
            output._owner._queues_dirty = True
        rb.head = i
        if i >= n:
            channel.discard_head()
        else:
            entry.enqueued_at = rb.enqueued_ats[i]
        self._queues_dirty = True
        return used

    def _consume_row_turn(
        self,
        entry: object,
        channel: Channel,
        grant: float,
        now: float,
    ) -> float:
        """Consume ONE row of the head :class:`RecordBatch` for one
        round-robin turn of a multi-input operator.

        Same arithmetic as one iteration of :meth:`_consume_rows` with
        the turn's ``grant`` as the budget — which is exactly what the
        per-event path's pop + :meth:`_consume_batch` does for a single
        queued record. Returns the cost charged this turn.
        """
        rb = entry.record
        counts = rb.counts
        i = rb.head
        count = counts[i]
        cpe = self.cost_per_event_ms
        full_cost = count * cpe * self.cost_multiplier
        bpe = rb.bytes_per_event
        stats = self.stats
        if full_cost <= grant or cpe == 0.0:
            channel._queued_events -= count
            channel._queued_bytes -= count * bpe
            channel.events_popped += count
            if channel._queued_events < 1e-9:
                channel._queued_events = 0.0
            if channel._queued_bytes < 1e-6:
                channel._queued_bytes = 0.0
            stats.events_in += count
            stats.busy_ms += full_cost
            if self._windowed_row and self.lineage is None:
                # _WindowedOperatorBase._on_row inlined (joins take this
                # turn path on every row — the handler's statements in
                # the handler's order, minus the call frame).
                clock = self._input_watermarks[channel._consumer_index]
                t_end = rb.t_ends[i]
                if t_end <= clock:
                    stats.late_events_dropped += count
                else:
                    c = count
                    t_start = rb.t_starts[i]
                    if t_start < clock < t_end:
                        keep = (t_end - clock) / (t_end - t_start)
                        stats.late_events_dropped += c * (1.0 - keep)
                        c *= keep
                        t_start = clock
                    panes = self._panes
                    pane_ends = self._pane_ends
                    event_clock = self._event_clock
                    self._state_events_memo = None  # klink: transient[memo over _panes, which is captured]
                    for p_start, p_end, pane_count in self.assigner.assign_range_raw(
                        t_start, t_end, c
                    ):
                        if p_end <= event_clock:
                            stats.late_events_dropped += pane_count
                            continue
                        panes[p_start] = panes.get(p_start, 0.0) + pane_count
                        if p_start not in pane_ends:
                            pane_ends[p_start] = p_end
                            heapq.heappush(self._pane_heap, (p_end, p_start))
            else:
                self._on_row(rb, i, count, channel._consumer_index, now)
                if self.lineage is not None:
                    self.lineage.on_consumed(
                        self, rb.t_starts[i], rb.t_ends[i],
                        rb.enqueued_ats[i], channel, now,
                    )
            i += 1
            rb.head = i
            if i >= len(counts):
                channel.discard_head()
            else:
                entry.enqueued_at = rb.enqueued_ats[i]
            self._queues_dirty = True
            return full_cost
        # Partial row: process the affordable fraction; the remainder
        # stays as the head row (per-event pop + push_front sequence).
        fraction = grant / full_cost
        head_count = count * fraction
        tail_count = count * (1.0 - fraction)
        channel._queued_events -= count
        channel._queued_bytes -= count * bpe
        channel.events_popped += count
        if channel._queued_events < 1e-9:
            channel._queued_events = 0.0
        if channel._queued_bytes < 1e-6:
            channel._queued_bytes = 0.0
        stats.events_in += head_count
        stats.busy_ms += grant
        self._on_row(rb, i, head_count, channel._consumer_index, now)
        if tail_count > 0:
            channel._queued_events += tail_count
            channel._queued_bytes += tail_count * bpe
            channel.events_returned += tail_count
            counts[i] = tail_count
        else:  # pragma: no cover - zero-mass remainder
            i += 1
            rb.head = i
            if i >= len(counts):
                channel.discard_head()
            else:
                entry.enqueued_at = rb.enqueued_ats[i]
        self._queues_dirty = True
        return grant

    def _dispatch(
        self,
        record: object,
        channel: Channel,
        enqueued_at: float,
        budget_ms: float,
        now: float,
    ) -> float:
        # Exact-type checks: queue records are exactly EventBatch,
        # RecordBatch (handled by the callers), Watermark, or LatencyMarker.
        if type(record) is EventBatch:
            return self._consume_batch(record, channel, enqueued_at, budget_ms, now)
        if type(record) is Watermark:
            self.stats.watermarks_seen += 1
            cost = min(self.cost_per_event_ms * self.cost_multiplier, budget_ms)
            self._on_watermark(record, channel._consumer_index, now)
            self.stats.busy_ms += cost
            return cost
        if isinstance(record, LatencyMarker):
            cost = min(self.cost_per_event_ms * self.cost_multiplier, budget_ms)
            self._emit(record, now)
            self.stats.busy_ms += cost
            return cost
        raise TypeError(f"unknown record type: {type(record)!r}")

    def _consume_batch(
        self,
        batch: EventBatch,
        channel: Channel,
        enqueued_at: float,
        budget_ms: float,
        now: float,
    ) -> float:
        full_cost = batch.count * self.cost_per_event_ms * self.cost_multiplier
        if full_cost <= budget_ms or self.cost_per_event_ms == 0.0:
            self.stats.events_in += batch.count
            self.stats.busy_ms += full_cost
            self._on_batch(batch, channel._consumer_index, now)
            if self.lineage is not None:
                self.lineage.on_consumed(
                    self, batch.t_start, batch.t_end, enqueued_at, channel, now
                )
            return full_cost
        # Budget covers only part of the batch: process the affordable
        # fraction, return the remainder to the head of the queue.
        fraction = budget_ms / full_cost
        head = batch.split_fraction(fraction)
        tail = batch.split_fraction(1.0 - fraction) if fraction < 1.0 else None
        self.stats.events_in += head.count
        self.stats.busy_ms += budget_ms
        self._on_batch(head, channel._consumer_index, now)
        if tail is not None and tail.count > 0:
            channel.push_front(tail, enqueued_at)
        return budget_ms

    # -- record handlers (overridden by subclasses) ------------------------------

    def _on_batch(self, batch: EventBatch, input_index: int, now: float) -> None:
        out_count = batch.count * self.selectivity
        if out_count > 0:
            self._emit(
                EventBatch(
                    count=out_count,
                    t_start=batch.t_start,
                    t_end=batch.t_end,
                    delay=batch.delay,
                    bytes_per_event=self.out_bytes_per_event,
                ),
                now,
            )

    def _on_row(
        self,
        rb: RecordBatch,
        index: int,
        count: float,
        input_index: int,
        now: float,
    ) -> None:
        """Handle one row of a coalesced batch carrying ``count`` events.

        The base implementation materializes the row as an
        :class:`EventBatch` and defers to :meth:`_on_batch`, so any
        subclass that only overrides ``_on_batch`` (reorder buffers,
        watermark generators, user operators) stays correct under
        batching. Performance-critical leaf operators override this with
        an allocation-free equivalent.
        """
        self._on_batch(
            EventBatch(
                count=count,
                t_start=rb.t_starts[index],
                t_end=rb.t_ends[index],
                delay=rb.delays[index],
                bytes_per_event=rb.bytes_per_event,
            ),
            input_index,
            now,
        )

    def _on_watermark(self, wm: Watermark, input_index: int, now: float) -> None:
        self._emit(wm, now)

    def _emit(self, record: object, now: float) -> None:
        output = self.output
        if type(record) is EventBatch:
            self.stats.events_out += record.count
            if output is not None:
                if output.batch_size > 1 and output.latency_ms == 0.0:
                    # Coalescing channel: append the columns directly —
                    # the same accounting Channel.push would route to.
                    output.push_row(
                        record.count,
                        record.t_start,
                        record.t_end,
                        record.delay,
                        record.bytes_per_event,
                        now,
                    )
                else:
                    output.push(record, now)
        elif output is not None:
            # Control record (watermark/marker): Channel.push inlined —
            # no payload accounting, just the entry append (or the
            # in-flight queue on a latency channel).
            if output.latency_ms > 0.0:
                output._pending.append(_Entry(record, now + output.latency_ms))
            else:
                output._entries.append(_Entry(record, now))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class _StatelessRowFastPath:
    """Allocation-free ``_on_row`` for operators using the base ``_on_batch``.

    Mirrors ``Operator._on_batch`` + ``_emit`` exactly (same expressions,
    same order) but emits through :meth:`Channel.push_row` instead of
    constructing an intermediate :class:`EventBatch`. Only safe for
    classes that do NOT override ``_on_batch``.
    """

    def _on_row(
        self,
        rb: RecordBatch,
        index: int,
        count: float,
        input_index: int,
        now: float,
    ) -> None:
        out_count = count * self.selectivity  # type: ignore[attr-defined]
        if out_count > 0:
            self.stats.events_out += out_count  # type: ignore[attr-defined]
            output = self.output  # type: ignore[attr-defined]
            if output is not None:
                output.push_row(
                    out_count,
                    rb.t_starts[index],
                    rb.t_ends[index],
                    rb.delays[index],
                    self.out_bytes_per_event,  # type: ignore[attr-defined]
                    now,
                )


class MapOperator(_StatelessRowFastPath, Operator):
    """One-to-one transformation (projection, enrichment, parsing)."""

    def __init__(self, name: str, cost_per_event_ms: float, out_bytes_per_event: int = 100):
        super().__init__(name, cost_per_event_ms, selectivity=1.0,
                         out_bytes_per_event=out_bytes_per_event)


class FilterOperator(_StatelessRowFastPath, Operator):
    """Drops a fraction of events: selectivity < 1."""

    def __init__(
        self,
        name: str,
        cost_per_event_ms: float,
        selectivity: float,
        out_bytes_per_event: int = 100,
    ):
        if selectivity > 1.0:
            raise ValueError(f"filter selectivity must be <= 1: {selectivity}")
        super().__init__(name, cost_per_event_ms, selectivity=selectivity,
                         out_bytes_per_event=out_bytes_per_event)


class FlatMapOperator(_StatelessRowFastPath, Operator):
    """One-to-many transformation: selectivity may exceed 1."""

    def __init__(
        self,
        name: str,
        cost_per_event_ms: float,
        selectivity: float,
        out_bytes_per_event: int = 100,
    ):
        super().__init__(name, cost_per_event_ms, selectivity=selectivity,
                         out_bytes_per_event=out_bytes_per_event)


class KeyByOperator(_StatelessRowFastPath, Operator):
    """Key-partitioning marker (Flink's ``keyBy``).

    Declares the key selector under which downstream keyed windows group
    their state. Routing itself is not simulated (per-key matching does
    not affect scheduling behaviour), so the operator is a zero-cost
    stateless pass-through by default — but its *presence* is what the
    plan validator checks for upstream of keyed windows (rule KP110),
    mirroring the SPE rule that a keyed window needs a keyed stream.
    """

    def __init__(
        self,
        name: str,
        key: str,
        cost_per_event_ms: float = 0.0,
        out_bytes_per_event: int = 100,
    ) -> None:
        if not key:
            raise ValueError("key selector must be a non-empty field name")
        super().__init__(name, cost_per_event_ms, selectivity=1.0,
                         out_bytes_per_event=out_bytes_per_event)
        self.key = key


class _WindowedOperatorBase(Operator):
    """Shared pane-state machinery for windowed aggregate and join."""

    def __init__(
        self,
        name: str,
        assigner: WindowAssigner,
        cost_per_event_ms: float,
        output_events_per_pane: float,
        state_bytes_per_event: int,
        out_bytes_per_event: int,
        incremental: bool,
        n_inputs: int,
        fire_cost_per_event_ms: float | None = None,
    ) -> None:
        super().__init__(
            name,
            cost_per_event_ms,
            selectivity=1.0,  # true selectivity emerges from pane firing
            out_bytes_per_event=out_bytes_per_event,
            n_inputs=n_inputs,
        )
        self.assigner = assigner
        self.output_events_per_pane = float(output_events_per_pane)
        self.state_bytes_per_event = int(state_bytes_per_event)
        self.incremental = bool(incremental)
        self.fire_cost_per_event_ms = (
            cost_per_event_ms if fire_cost_per_event_ms is None
            else fire_cost_per_event_ms
        )
        # pane start -> accumulated event count
        self._panes: Dict[float, float] = {}
        self._pane_ends: Dict[float, float] = {}
        # Memoized sum over _panes: the memory model and schedulers read
        # state_events several times per cycle; mutation sites clear the
        # memo, so a hit equals a fresh sum over the unchanged table.
        self._state_events_memo: Optional[float] = None  # klink: transient[memo over _panes, which is captured]
        # Min-heap of (deadline, pane start), kept in lockstep with
        # _pane_ends: pushed when a pane is first buffered, popped when it
        # fires. Gives O(log n) firing and O(1) next_deadline instead of
        # scanning + sorting the whole pane table on every watermark and
        # every scheduler collect. Heap order (end, then start) matches
        # the firing order of a per-watermark sort because a single
        # assigner's pane ends are monotone in their starts.
        self._pane_heap: List[Tuple[float, float]] = []
        # per-input last watermark (event-time clock per stream)
        self._input_watermarks: List[float] = [-math.inf] * n_inputs
        self._event_clock: float = -math.inf  # combined (min) watermark

    # -- state introspection ------------------------------------------------------

    @property
    def state_events(self) -> float:
        """Events currently buffered in window state."""
        memo = self._state_events_memo
        if memo is None:
            memo = self._state_events_memo = sum(self._panes.values())
        return memo

    def _invalidate_state_memo(self) -> None:
        """Drop the memoized pane mass (e.g. after a restore rebuilt the
        pane table); the next ``state_events`` read re-sums ``_panes``."""
        self._state_events_memo = None  # klink: transient[memo over _panes, which is captured]

    @property
    def state_bytes(self) -> float:
        if self.incremental:
            # Online (partial) aggregation keeps one accumulator per pane
            # output, not the raw events.
            return (
                len(self._panes)
                * self.output_events_per_pane
                * self.state_bytes_per_event
            )
        return self.state_events * self.state_bytes_per_event

    @property
    def event_clock(self) -> float:
        """Current combined event-time clock (min over input watermarks)."""
        return self._event_clock

    def next_deadline(self, after: float) -> float:
        # Every buffered pane's end is > the event clock (due panes are
        # popped the moment the clock advances, late panes are never
        # buffered), so the heap head IS the earliest pending deadline.
        if self._pane_heap:
            return self._pane_heap[0][0]
        return self.assigner.next_deadline(max(after, self._event_clock, 0.0))

    def pending_pane_deadlines(self) -> List[float]:
        """Deadlines of panes buffered but not yet fired (sorted)."""
        return sorted(end for end, _ in self._pane_heap)

    # -- record handlers -----------------------------------------------------------

    def _on_batch(self, batch: EventBatch, input_index: int, now: float) -> None:
        clock = self._input_watermarks[input_index]
        if batch.t_end <= clock:
            # Entirely late: every event precedes the stream's watermark.
            self.stats.late_events_dropped += batch.count
            return
        t_start = batch.t_start
        count = batch.count
        if t_start < clock < batch.t_end:
            # Partially late: drop the uniform mass before the watermark.
            keep = (batch.t_end - clock) / (batch.t_end - t_start)
            self.stats.late_events_dropped += count * (1.0 - keep)
            count *= keep
            t_start = clock
        panes = self._panes
        pane_ends = self._pane_ends
        event_clock = self._event_clock
        self._state_events_memo = None
        for p_start, p_end, pane_count in self.assigner.assign_range_raw(
            t_start, batch.t_end, count
        ):
            if p_end <= event_clock:
                # Pane already fired; late contribution is dropped (Flink's
                # default allowed-lateness of zero).
                self.stats.late_events_dropped += pane_count
                continue
            panes[p_start] = panes.get(p_start, 0.0) + pane_count
            if p_start not in pane_ends:
                pane_ends[p_start] = p_end
                heapq.heappush(self._pane_heap, (p_end, p_start))

    def _on_row(
        self,
        rb: "RecordBatch",
        index: int,
        count: float,
        input_index: int,
        now: float,
    ) -> None:
        # Same logic as _on_batch, reading row columns directly.
        clock = self._input_watermarks[input_index]
        t_end = rb.t_ends[index]
        if t_end <= clock:
            self.stats.late_events_dropped += count
            return
        t_start = rb.t_starts[index]
        if t_start < clock < t_end:
            keep = (t_end - clock) / (t_end - t_start)
            self.stats.late_events_dropped += count * (1.0 - keep)
            count *= keep
            t_start = clock
        panes = self._panes
        pane_ends = self._pane_ends
        event_clock = self._event_clock
        self._state_events_memo = None
        for p_start, p_end, pane_count in self.assigner.assign_range_raw(
            t_start, t_end, count
        ):
            if p_end <= event_clock:
                self.stats.late_events_dropped += pane_count
                continue
            panes[p_start] = panes.get(p_start, 0.0) + pane_count
            if p_start not in pane_ends:
                pane_ends[p_start] = p_end
                heapq.heappush(self._pane_heap, (p_end, p_start))

    def _on_watermark(self, wm: Watermark, input_index: int, now: float) -> None:
        if wm.timestamp <= self._input_watermarks[input_index]:
            # Out-of-order watermark: dropped (Flink's behaviour, Sec. 2.2).
            return
        wms = self._input_watermarks
        wms[input_index] = wm.timestamp
        # min() over one (or two) elements, inlined: single-input windowed
        # operators dominate, and ties resolve to the first element just
        # as the builtin does.
        if len(wms) == 1:
            combined = wms[0]
        elif len(wms) == 2:
            a, b = wms
            combined = a if a <= b else b
        else:
            combined = min(wms)
        if combined <= self._event_clock:
            return  # other inputs still hold the clock back; nothing fires
        self._event_clock = combined
        fired = self._fire_due_panes(combined, now)
        # Forward the watermark after any window output (invariant ii).
        # It is an SWM for downstream if it unblocked at least one pane here
        # or was already sweeping upstream.
        self._emit(
            Watermark(combined, source_id=0, is_swm=fired or wm.is_swm), now
        )

    def _fire_due_panes(self, up_to: float, now: float) -> bool:
        heap = self._pane_heap
        if not heap or heap[0][0] > up_to:
            return False
        self._state_events_memo = None
        lineage = self.lineage
        while heap and heap[0][0] <= up_to:
            end, start = heapq.heappop(heap)
            del self._pane_ends[start]
            buffered = self._panes.pop(start, 0.0)
            out_count = self._pane_output_count(buffered)
            self.stats.panes_fired += 1
            fire_cost = out_count * self.fire_cost_per_event_ms * self.cost_multiplier
            self.stats.busy_ms += fire_cost
            if out_count > 0:
                self._emit(
                    EventBatch(
                        count=out_count,
                        t_start=end,
                        t_end=end,
                        delay=0.0,
                        bytes_per_event=self.out_bytes_per_event,
                    ),
                    now,
                )
            if lineage is not None:
                lineage.on_pane_fire(self, end, out_count, now)
        return True

    def _pane_output_count(self, buffered: float) -> float:
        """Events emitted when a pane holding ``buffered`` events fires."""
        raise NotImplementedError


class WindowedAggregate(_WindowedOperatorBase):
    """Keyed windowed aggregation (e.g. per-campaign counts in YSB).

    Emits ``output_events_per_pane`` records per fired pane — one per
    distinct key/group — independent of how many raw events the pane held,
    which is what gives window operators their characteristically low
    selectivity at SWM ingestion (Sec. 3.4).

    A window emitting more than one record per pane is *keyed* (its
    outputs are per-key aggregates) and must declare its key selector:
    either pass ``key_by`` here or place a :class:`KeyByOperator`
    upstream — the plan validator rejects keyed windows with neither
    (rule KP110), the static analogue of Flink refusing a keyed window
    on an un-keyed stream.
    """

    def __init__(
        self,
        name: str,
        assigner: WindowAssigner,
        cost_per_event_ms: float,
        output_events_per_pane: float = 1.0,
        state_bytes_per_event: int = 100,
        out_bytes_per_event: int = 100,
        incremental: bool = True,
        key_by: Optional[str] = None,
    ):
        super().__init__(
            name,
            assigner,
            cost_per_event_ms,
            output_events_per_pane=output_events_per_pane,
            state_bytes_per_event=state_bytes_per_event,
            out_bytes_per_event=out_bytes_per_event,
            incremental=incremental,
            n_inputs=1,
        )
        self.key_by = key_by

    def _pane_output_count(self, buffered: float) -> float:
        return min(self.output_events_per_pane, buffered) if buffered else 0.0


class WindowedJoin(_WindowedOperatorBase):
    """Windowed join over ``n_inputs`` streams (Sec. 3.3).

    The operator unblocks a pane only once *every* input stream's watermark
    passes the pane deadline (the combined event clock is the minimum of
    the per-input watermarks). Join output per pane is modelled by
    ``join_selectivity`` — output events per buffered input event — since
    key-level matching does not affect scheduling behaviour.
    """

    def __init__(
        self,
        name: str,
        assigner: WindowAssigner,
        cost_per_event_ms: float,
        n_inputs: int = 2,
        join_selectivity: float = 0.1,
        state_bytes_per_event: int = 100,
        out_bytes_per_event: int = 100,
    ):
        if n_inputs < 2:
            raise ValueError(f"join needs >= 2 inputs: {n_inputs}")
        super().__init__(
            name,
            assigner,
            cost_per_event_ms,
            output_events_per_pane=0.0,  # output scales with input instead
            state_bytes_per_event=state_bytes_per_event,
            out_bytes_per_event=out_bytes_per_event,
            incremental=False,  # joins buffer raw events until the pane fires
            n_inputs=n_inputs,
        )
        self.join_selectivity = float(join_selectivity)

    def _pane_output_count(self, buffered: float) -> float:
        return buffered * self.join_selectivity

    def input_watermark(self, input_index: int) -> float:
        """Last watermark seen on one input (used by Klink's join slack)."""
        return self._input_watermarks[input_index]


class CountWindowedAggregate(Operator):
    """Count-based windowed aggregation (Sec. 2.1's count-based windows).

    A count-based window function closes a window after ``size`` events:
    the deadline is the arrival of the ``size``-th event rather than an
    event-time instant, so watermarks play no role in unblocking it and
    Klink's SWM machinery treats such queries as deadline-free (they are
    scheduled after deadline-bearing queries, which is correct: their
    output is never "due" at a wall-clock point).

    Windows tumble by count: events are accumulated until ``size`` is
    reached, then ``output_events_per_window`` records are emitted.
    Fractional batch mass carries over exactly.
    """

    def __init__(
        self,
        name: str,
        size: int,
        cost_per_event_ms: float,
        output_events_per_window: float = 1.0,
        state_bytes_per_event: int = 100,
        out_bytes_per_event: int = 100,
        incremental: bool = True,
    ) -> None:
        if size <= 0:
            raise ValueError(f"count window size must be positive: {size}")
        super().__init__(name, cost_per_event_ms, selectivity=1.0,
                         out_bytes_per_event=out_bytes_per_event)
        self.size = int(size)
        self.output_events_per_window = float(output_events_per_window)
        self.state_bytes_per_event = int(state_bytes_per_event)
        self.incremental = bool(incremental)
        self._accumulated = 0.0
        self.windows_fired = 0

    @property
    def state_events(self) -> float:
        return self._accumulated

    @property
    def state_bytes(self) -> float:
        if self.incremental:
            return self.output_events_per_window * self.state_bytes_per_event
        return self._accumulated * self.state_bytes_per_event

    def _on_batch(self, batch: EventBatch, input_index: int, now: float) -> None:
        self._accumulate(batch.count, batch.t_end, now)

    def _on_row(
        self,
        rb: RecordBatch,
        index: int,
        count: float,
        input_index: int,
        now: float,
    ) -> None:
        self._accumulate(count, rb.t_ends[index], now)

    def _accumulate(self, count: float, last_t: float, now: float) -> None:
        self._accumulated += count
        while self._accumulated >= self.size:
            self._accumulated -= self.size
            self.windows_fired += 1
            if self.output_events_per_window > 0:
                self._emit(
                    EventBatch(
                        count=self.output_events_per_window,
                        t_start=last_t,
                        t_end=last_t,
                        delay=0.0,
                        bytes_per_event=self.out_bytes_per_event,
                    ),
                    now,
                )

    def _on_watermark(self, wm: Watermark, input_index: int, now: float) -> None:
        # Count windows are watermark-agnostic: forward progress untouched.
        self._emit(wm, now)


class SinkOperator(Operator):
    """Terminal (output) operator recording output latencies.

    Latency of the stream is the propagation delay of SWMs: for each SWM
    reaching the sink, ``now - swm.timestamp`` (Sec. 6.1.2). Latency
    markers record source-to-sink propagation of individual probes.
    """

    def __init__(self, name: str, cost_per_event_ms: float = 0.0):
        super().__init__(name, cost_per_event_ms, selectivity=1.0)
        self.swm_latencies: List[Tuple[float, float]] = []  # (now, latency)
        self.marker_latencies: List[Tuple[float, float]] = []
        self.events_delivered: float = 0.0

    def _on_batch(self, batch: EventBatch, input_index: int, now: float) -> None:
        self.events_delivered += batch.count

    def _on_row(
        self,
        rb: RecordBatch,
        index: int,
        count: float,
        input_index: int,
        now: float,
    ) -> None:
        self.events_delivered += count

    def _on_watermark(self, wm: Watermark, input_index: int, now: float) -> None:
        if wm.is_swm:
            self.swm_latencies.append((now, now - wm.timestamp))

    def _dispatch(self, record, channel, enqueued_at, budget_ms, now):
        if isinstance(record, LatencyMarker):
            cost = min(self.cost_per_event_ms, budget_ms)
            self.marker_latencies.append((now, now - record.created_at))
            self.stats.busy_ms += cost
            return cost
        return super()._dispatch(record, channel, enqueued_at, budget_ms, now)
