"""Stream operators.

Operators are the units the runtime scheduler executes (Sec. 5: Flink
*Tasks*). Each operator consumes records from one or more input
:class:`~repro.spe.streams.Channel` objects, charges processing cost
against the scheduling cycle's CPU budget, and emits records downstream.

Cost model
----------
Every operator declares ``cost_per_event_ms`` — CPU milliseconds consumed
per processed event — and a design-time ``selectivity`` (output events per
input event). Measured selectivity and mean cost are also tracked at
runtime, because Klink and Highest-Rate consume *measured* values from the
runtime data-acquisition module rather than trusting declarations.

Window semantics
----------------
:class:`WindowedAggregate` and :class:`WindowedJoin` implement the blocking
operators the paper targets: events accumulate in per-pane state and only a
watermark covering a pane's deadline unblocks (fires) it. The first
watermark to fire a pane is forwarded downstream flagged as a *sweeping
watermark* (SWM), after the pane's output events (invariant (ii) of
Sec. 2.2: the output operator receives the window's events before the SWM).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from repro.spe.events import EventBatch, LatencyMarker, Watermark
from repro.spe.streams import Channel
from repro.spe.windows import Pane, WindowAssigner

# Budget below which a step loop stops rather than splitting ever-smaller
# batch fragments.
_MIN_BUDGET_MS = 1e-6


class OperatorStats:
    """Measured runtime statistics for one operator."""

    __slots__ = (
        "events_in",
        "events_out",
        "busy_ms",
        "late_events_dropped",
        "watermarks_seen",
        "panes_fired",
    )

    def __init__(self) -> None:
        self.events_in = 0.0
        self.events_out = 0.0
        self.busy_ms = 0.0
        self.late_events_dropped = 0.0
        self.watermarks_seen = 0
        self.panes_fired = 0

    @property
    def measured_selectivity(self) -> float:
        """Observed output/input ratio; falls back to 1.0 with no data."""
        if self.events_in <= 0:
            return 1.0
        return self.events_out / self.events_in

    @property
    def measured_cost_ms(self) -> float:
        """Observed CPU cost per input event; 0.0 with no data."""
        if self.events_in <= 0:
            return 0.0
        return self.busy_ms / self.events_in


class Operator:
    """Base class: a stateless unary operator applying selectivity.

    Subclasses override :meth:`_on_batch` and :meth:`_on_watermark` to
    change data/watermark handling; the budget-accounting loop in
    :meth:`step` is shared.
    """

    def __init__(
        self,
        name: str,
        cost_per_event_ms: float,
        selectivity: float = 1.0,
        out_bytes_per_event: int = 100,
        n_inputs: int = 1,
    ) -> None:
        if cost_per_event_ms < 0:
            raise ValueError(f"negative cost: {cost_per_event_ms}")
        if selectivity < 0:
            raise ValueError(f"negative selectivity: {selectivity}")
        if n_inputs < 1:
            raise ValueError(f"operator needs >= 1 input: {n_inputs}")
        self.name = name
        self.cost_per_event_ms = float(cost_per_event_ms)
        #: transient cost scaling set by fault injection (interference /
        #: slowdown episodes); 1.0 under normal operation. Inflates the
        #: *measured* cost, which is what runtime-adaptive policies see.
        self.cost_multiplier = 1.0
        self.selectivity = float(selectivity)
        self.out_bytes_per_event = int(out_bytes_per_event)
        self.inputs: List[Channel] = [
            Channel(f"{name}.in{i}", owner=self) for i in range(n_inputs)
        ]
        self.output: Optional[Channel] = None  # wired by Query
        self.stats = OperatorStats()
        # Memoized queue aggregates: schedulers, the memory policy, the
        # audit log, and the telemetry sampler all read queued_events /
        # queued_bytes several times per scheduling cycle. The input
        # channels mark this flag on every enqueue/dequeue, so the sums
        # are recomputed at most once per channel mutation instead of on
        # every read (byte-identical: the same sum over the same values).
        self._queues_dirty = True
        self._queued_events_memo = 0.0
        self._queued_bytes_memo = 0.0

    # -- wiring --------------------------------------------------------------

    def connect(self, downstream: "Operator", input_index: int = 0) -> None:
        """Wire this operator's output to ``downstream``'s input channel."""
        self.output = downstream.inputs[input_index]  # klink: transient[build-time wiring, fixed for the life of the topology]

    # -- scheduler-facing introspection ---------------------------------------

    def _refresh_queue_memo(self) -> None:
        self._queued_events_memo = sum(ch.queued_events for ch in self.inputs)  # klink: transient[memo over channel state, which is captured]
        self._queued_bytes_memo = sum(ch.queued_bytes for ch in self.inputs)  # klink: transient[memo over channel state, which is captured]
        self._queues_dirty = False  # klink: transient[memo validity flag; restore marks it dirty]

    @property
    def queued_events(self) -> float:
        """Payload events waiting across all input channels."""
        if self._queues_dirty:
            self._refresh_queue_memo()
        return self._queued_events_memo

    @property
    def queued_bytes(self) -> float:
        if self._queues_dirty:
            self._refresh_queue_memo()
        return self._queued_bytes_memo

    @property
    def state_events(self) -> float:
        """Events buffered in operator state; stateless ops hold none."""
        return 0.0

    @property
    def state_bytes(self) -> float:
        """Memory held in operator state (windows); stateless ops hold none."""
        return 0.0

    def has_work(self) -> bool:
        """True when any input channel holds a record."""
        return any(len(ch) > 0 for ch in self.inputs)

    def next_deadline(self, after: float) -> float:
        """Earliest window deadline after event-time ``after`` (inf if none)."""
        return math.inf

    # -- execution -------------------------------------------------------------

    def step(self, budget_ms: float, now: float) -> float:
        """Process queued records within ``budget_ms``; return ms consumed.

        Inputs are drained round-robin so multi-input operators make
        progress on every stream: each round splits the remaining budget
        evenly across the inputs that still hold records, so one stream's
        oversized batch cannot starve the others (a join must keep all its
        watermark fronts moving). Emission order preserves FIFO per input.
        """
        used = 0.0
        progressed = True
        while budget_ms - used > _MIN_BUDGET_MS and progressed:
            progressed = False
            active = [ch for ch in self.inputs if len(ch) > 0]
            if not active:
                break
            share = (budget_ms - used) / len(active)
            for channel in active:
                grant = min(share, budget_ms - used)
                if grant <= _MIN_BUDGET_MS:
                    break
                entry = channel.pop()
                if entry is None:
                    continue
                used += self._dispatch(
                    entry.record, channel, entry.enqueued_at, grant, now
                )
                progressed = True
        return used

    def _dispatch(
        self,
        record: object,
        channel: Channel,
        enqueued_at: float,
        budget_ms: float,
        now: float,
    ) -> float:
        if isinstance(record, EventBatch):
            return self._consume_batch(record, channel, enqueued_at, budget_ms, now)
        if isinstance(record, Watermark):
            self.stats.watermarks_seen += 1
            cost = min(self.cost_per_event_ms * self.cost_multiplier, budget_ms)
            self._on_watermark(record, self.inputs.index(channel), now)
            self.stats.busy_ms += cost
            return cost
        if isinstance(record, LatencyMarker):
            cost = min(self.cost_per_event_ms * self.cost_multiplier, budget_ms)
            self._emit(record, now)
            self.stats.busy_ms += cost
            return cost
        raise TypeError(f"unknown record type: {type(record)!r}")

    def _consume_batch(
        self,
        batch: EventBatch,
        channel: Channel,
        enqueued_at: float,
        budget_ms: float,
        now: float,
    ) -> float:
        full_cost = batch.count * self.cost_per_event_ms * self.cost_multiplier
        if full_cost <= budget_ms or self.cost_per_event_ms == 0.0:
            self.stats.events_in += batch.count
            self.stats.busy_ms += full_cost
            self._on_batch(batch, self.inputs.index(channel), now)
            return full_cost
        # Budget covers only part of the batch: process the affordable
        # fraction, return the remainder to the head of the queue.
        fraction = budget_ms / full_cost
        head = batch.split_fraction(fraction)
        tail = batch.split_fraction(1.0 - fraction) if fraction < 1.0 else None
        self.stats.events_in += head.count
        self.stats.busy_ms += budget_ms
        self._on_batch(head, self.inputs.index(channel), now)
        if tail is not None and tail.count > 0:
            channel.push_front(tail, enqueued_at)
        return budget_ms

    # -- record handlers (overridden by subclasses) ------------------------------

    def _on_batch(self, batch: EventBatch, input_index: int, now: float) -> None:
        out_count = batch.count * self.selectivity
        if out_count > 0:
            self._emit(
                EventBatch(
                    count=out_count,
                    t_start=batch.t_start,
                    t_end=batch.t_end,
                    delay=batch.delay,
                    bytes_per_event=self.out_bytes_per_event,
                ),
                now,
            )

    def _on_watermark(self, wm: Watermark, input_index: int, now: float) -> None:
        self._emit(wm, now)

    def _emit(self, record: object, now: float) -> None:
        if isinstance(record, EventBatch):
            self.stats.events_out += record.count
        if self.output is not None:
            self.output.push(record, now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class MapOperator(Operator):
    """One-to-one transformation (projection, enrichment, parsing)."""

    def __init__(self, name: str, cost_per_event_ms: float, out_bytes_per_event: int = 100):
        super().__init__(name, cost_per_event_ms, selectivity=1.0,
                         out_bytes_per_event=out_bytes_per_event)


class FilterOperator(Operator):
    """Drops a fraction of events: selectivity < 1."""

    def __init__(
        self,
        name: str,
        cost_per_event_ms: float,
        selectivity: float,
        out_bytes_per_event: int = 100,
    ):
        if selectivity > 1.0:
            raise ValueError(f"filter selectivity must be <= 1: {selectivity}")
        super().__init__(name, cost_per_event_ms, selectivity=selectivity,
                         out_bytes_per_event=out_bytes_per_event)


class FlatMapOperator(Operator):
    """One-to-many transformation: selectivity may exceed 1."""

    def __init__(
        self,
        name: str,
        cost_per_event_ms: float,
        selectivity: float,
        out_bytes_per_event: int = 100,
    ):
        super().__init__(name, cost_per_event_ms, selectivity=selectivity,
                         out_bytes_per_event=out_bytes_per_event)


class KeyByOperator(Operator):
    """Key-partitioning marker (Flink's ``keyBy``).

    Declares the key selector under which downstream keyed windows group
    their state. Routing itself is not simulated (per-key matching does
    not affect scheduling behaviour), so the operator is a zero-cost
    stateless pass-through by default — but its *presence* is what the
    plan validator checks for upstream of keyed windows (rule KP110),
    mirroring the SPE rule that a keyed window needs a keyed stream.
    """

    def __init__(
        self,
        name: str,
        key: str,
        cost_per_event_ms: float = 0.0,
        out_bytes_per_event: int = 100,
    ) -> None:
        if not key:
            raise ValueError("key selector must be a non-empty field name")
        super().__init__(name, cost_per_event_ms, selectivity=1.0,
                         out_bytes_per_event=out_bytes_per_event)
        self.key = key


class _WindowedOperatorBase(Operator):
    """Shared pane-state machinery for windowed aggregate and join."""

    def __init__(
        self,
        name: str,
        assigner: WindowAssigner,
        cost_per_event_ms: float,
        output_events_per_pane: float,
        state_bytes_per_event: int,
        out_bytes_per_event: int,
        incremental: bool,
        n_inputs: int,
        fire_cost_per_event_ms: float | None = None,
    ) -> None:
        super().__init__(
            name,
            cost_per_event_ms,
            selectivity=1.0,  # true selectivity emerges from pane firing
            out_bytes_per_event=out_bytes_per_event,
            n_inputs=n_inputs,
        )
        self.assigner = assigner
        self.output_events_per_pane = float(output_events_per_pane)
        self.state_bytes_per_event = int(state_bytes_per_event)
        self.incremental = bool(incremental)
        self.fire_cost_per_event_ms = (
            cost_per_event_ms if fire_cost_per_event_ms is None
            else fire_cost_per_event_ms
        )
        # pane start -> accumulated event count
        self._panes: Dict[float, float] = {}
        self._pane_ends: Dict[float, float] = {}
        # Min-heap of (deadline, pane start), kept in lockstep with
        # _pane_ends: pushed when a pane is first buffered, popped when it
        # fires. Gives O(log n) firing and O(1) next_deadline instead of
        # scanning + sorting the whole pane table on every watermark and
        # every scheduler collect. Heap order (end, then start) matches
        # the firing order of a per-watermark sort because a single
        # assigner's pane ends are monotone in their starts.
        self._pane_heap: List[Tuple[float, float]] = []
        # per-input last watermark (event-time clock per stream)
        self._input_watermarks: List[float] = [-math.inf] * n_inputs
        self._event_clock: float = -math.inf  # combined (min) watermark

    # -- state introspection ------------------------------------------------------

    @property
    def state_events(self) -> float:
        """Events currently buffered in window state."""
        return sum(self._panes.values())

    @property
    def state_bytes(self) -> float:
        if self.incremental:
            # Online (partial) aggregation keeps one accumulator per pane
            # output, not the raw events.
            return (
                len(self._panes)
                * self.output_events_per_pane
                * self.state_bytes_per_event
            )
        return self.state_events * self.state_bytes_per_event

    @property
    def event_clock(self) -> float:
        """Current combined event-time clock (min over input watermarks)."""
        return self._event_clock

    def next_deadline(self, after: float) -> float:
        # Every buffered pane's end is > the event clock (due panes are
        # popped the moment the clock advances, late panes are never
        # buffered), so the heap head IS the earliest pending deadline.
        if self._pane_heap:
            return self._pane_heap[0][0]
        return self.assigner.next_deadline(max(after, self._event_clock, 0.0))

    def pending_pane_deadlines(self) -> List[float]:
        """Deadlines of panes buffered but not yet fired (sorted)."""
        return sorted(end for end, _ in self._pane_heap)

    # -- record handlers -----------------------------------------------------------

    def _on_batch(self, batch: EventBatch, input_index: int, now: float) -> None:
        clock = self._input_watermarks[input_index]
        if batch.t_end <= clock:
            # Entirely late: every event precedes the stream's watermark.
            self.stats.late_events_dropped += batch.count
            return
        t_start = batch.t_start
        count = batch.count
        if t_start < clock < batch.t_end:
            # Partially late: drop the uniform mass before the watermark.
            keep = (batch.t_end - clock) / (batch.t_end - t_start)
            self.stats.late_events_dropped += count * (1.0 - keep)
            count *= keep
            t_start = clock
        for pane, pane_count in self.assigner.assign_range(t_start, batch.t_end, count):
            if pane.end <= self._event_clock:
                # Pane already fired; late contribution is dropped (Flink's
                # default allowed-lateness of zero).
                self.stats.late_events_dropped += pane_count
                continue
            self._panes[pane.start] = self._panes.get(pane.start, 0.0) + pane_count
            if pane.start not in self._pane_ends:
                self._pane_ends[pane.start] = pane.end
                heapq.heappush(self._pane_heap, (pane.end, pane.start))

    def _on_watermark(self, wm: Watermark, input_index: int, now: float) -> None:
        if wm.timestamp <= self._input_watermarks[input_index]:
            # Out-of-order watermark: dropped (Flink's behaviour, Sec. 2.2).
            return
        self._input_watermarks[input_index] = wm.timestamp
        combined = min(self._input_watermarks)
        if combined <= self._event_clock:
            return  # other inputs still hold the clock back; nothing fires
        self._event_clock = combined
        fired = self._fire_due_panes(combined, now)
        # Forward the watermark after any window output (invariant ii).
        # It is an SWM for downstream if it unblocked at least one pane here
        # or was already sweeping upstream.
        self._emit(
            Watermark(combined, source_id=0, is_swm=fired or wm.is_swm), now
        )

    def _fire_due_panes(self, up_to: float, now: float) -> bool:
        heap = self._pane_heap
        if not heap or heap[0][0] > up_to:
            return False
        while heap and heap[0][0] <= up_to:
            end, start = heapq.heappop(heap)
            del self._pane_ends[start]
            buffered = self._panes.pop(start, 0.0)
            out_count = self._pane_output_count(buffered)
            self.stats.panes_fired += 1
            fire_cost = out_count * self.fire_cost_per_event_ms * self.cost_multiplier
            self.stats.busy_ms += fire_cost
            if out_count > 0:
                self._emit(
                    EventBatch(
                        count=out_count,
                        t_start=end,
                        t_end=end,
                        delay=0.0,
                        bytes_per_event=self.out_bytes_per_event,
                    ),
                    now,
                )
        return True

    def _pane_output_count(self, buffered: float) -> float:
        """Events emitted when a pane holding ``buffered`` events fires."""
        raise NotImplementedError


class WindowedAggregate(_WindowedOperatorBase):
    """Keyed windowed aggregation (e.g. per-campaign counts in YSB).

    Emits ``output_events_per_pane`` records per fired pane — one per
    distinct key/group — independent of how many raw events the pane held,
    which is what gives window operators their characteristically low
    selectivity at SWM ingestion (Sec. 3.4).

    A window emitting more than one record per pane is *keyed* (its
    outputs are per-key aggregates) and must declare its key selector:
    either pass ``key_by`` here or place a :class:`KeyByOperator`
    upstream — the plan validator rejects keyed windows with neither
    (rule KP110), the static analogue of Flink refusing a keyed window
    on an un-keyed stream.
    """

    def __init__(
        self,
        name: str,
        assigner: WindowAssigner,
        cost_per_event_ms: float,
        output_events_per_pane: float = 1.0,
        state_bytes_per_event: int = 100,
        out_bytes_per_event: int = 100,
        incremental: bool = True,
        key_by: Optional[str] = None,
    ):
        super().__init__(
            name,
            assigner,
            cost_per_event_ms,
            output_events_per_pane=output_events_per_pane,
            state_bytes_per_event=state_bytes_per_event,
            out_bytes_per_event=out_bytes_per_event,
            incremental=incremental,
            n_inputs=1,
        )
        self.key_by = key_by

    def _pane_output_count(self, buffered: float) -> float:
        return min(self.output_events_per_pane, buffered) if buffered else 0.0


class WindowedJoin(_WindowedOperatorBase):
    """Windowed join over ``n_inputs`` streams (Sec. 3.3).

    The operator unblocks a pane only once *every* input stream's watermark
    passes the pane deadline (the combined event clock is the minimum of
    the per-input watermarks). Join output per pane is modelled by
    ``join_selectivity`` — output events per buffered input event — since
    key-level matching does not affect scheduling behaviour.
    """

    def __init__(
        self,
        name: str,
        assigner: WindowAssigner,
        cost_per_event_ms: float,
        n_inputs: int = 2,
        join_selectivity: float = 0.1,
        state_bytes_per_event: int = 100,
        out_bytes_per_event: int = 100,
    ):
        if n_inputs < 2:
            raise ValueError(f"join needs >= 2 inputs: {n_inputs}")
        super().__init__(
            name,
            assigner,
            cost_per_event_ms,
            output_events_per_pane=0.0,  # output scales with input instead
            state_bytes_per_event=state_bytes_per_event,
            out_bytes_per_event=out_bytes_per_event,
            incremental=False,  # joins buffer raw events until the pane fires
            n_inputs=n_inputs,
        )
        self.join_selectivity = float(join_selectivity)

    def _pane_output_count(self, buffered: float) -> float:
        return buffered * self.join_selectivity

    def input_watermark(self, input_index: int) -> float:
        """Last watermark seen on one input (used by Klink's join slack)."""
        return self._input_watermarks[input_index]


class CountWindowedAggregate(Operator):
    """Count-based windowed aggregation (Sec. 2.1's count-based windows).

    A count-based window function closes a window after ``size`` events:
    the deadline is the arrival of the ``size``-th event rather than an
    event-time instant, so watermarks play no role in unblocking it and
    Klink's SWM machinery treats such queries as deadline-free (they are
    scheduled after deadline-bearing queries, which is correct: their
    output is never "due" at a wall-clock point).

    Windows tumble by count: events are accumulated until ``size`` is
    reached, then ``output_events_per_window`` records are emitted.
    Fractional batch mass carries over exactly.
    """

    def __init__(
        self,
        name: str,
        size: int,
        cost_per_event_ms: float,
        output_events_per_window: float = 1.0,
        state_bytes_per_event: int = 100,
        out_bytes_per_event: int = 100,
        incremental: bool = True,
    ) -> None:
        if size <= 0:
            raise ValueError(f"count window size must be positive: {size}")
        super().__init__(name, cost_per_event_ms, selectivity=1.0,
                         out_bytes_per_event=out_bytes_per_event)
        self.size = int(size)
        self.output_events_per_window = float(output_events_per_window)
        self.state_bytes_per_event = int(state_bytes_per_event)
        self.incremental = bool(incremental)
        self._accumulated = 0.0
        self.windows_fired = 0

    @property
    def state_events(self) -> float:
        return self._accumulated

    @property
    def state_bytes(self) -> float:
        if self.incremental:
            return self.output_events_per_window * self.state_bytes_per_event
        return self._accumulated * self.state_bytes_per_event

    def _on_batch(self, batch: EventBatch, input_index: int, now: float) -> None:
        self._accumulated += batch.count
        last_t = batch.t_end
        while self._accumulated >= self.size:
            self._accumulated -= self.size
            self.windows_fired += 1
            if self.output_events_per_window > 0:
                self._emit(
                    EventBatch(
                        count=self.output_events_per_window,
                        t_start=last_t,
                        t_end=last_t,
                        delay=0.0,
                        bytes_per_event=self.out_bytes_per_event,
                    ),
                    now,
                )

    def _on_watermark(self, wm: Watermark, input_index: int, now: float) -> None:
        # Count windows are watermark-agnostic: forward progress untouched.
        self._emit(wm, now)


class SinkOperator(Operator):
    """Terminal (output) operator recording output latencies.

    Latency of the stream is the propagation delay of SWMs: for each SWM
    reaching the sink, ``now - swm.timestamp`` (Sec. 6.1.2). Latency
    markers record source-to-sink propagation of individual probes.
    """

    def __init__(self, name: str, cost_per_event_ms: float = 0.0):
        super().__init__(name, cost_per_event_ms, selectivity=1.0)
        self.swm_latencies: List[Tuple[float, float]] = []  # (now, latency)
        self.marker_latencies: List[Tuple[float, float]] = []
        self.events_delivered: float = 0.0

    def _on_batch(self, batch: EventBatch, input_index: int, now: float) -> None:
        self.events_delivered += batch.count

    def _on_watermark(self, wm: Watermark, input_index: int, now: float) -> None:
        if wm.is_swm:
            self.swm_latencies.append((now, now - wm.timestamp))

    def _dispatch(self, record, channel, enqueued_at, budget_ms, now):
        if isinstance(record, LatencyMarker):
            cost = min(self.cost_per_event_ms, budget_ms)
            self.marker_latencies.append((now, now - record.created_at))
            self.stats.busy_ms += cost
            return cost
        return super()._dispatch(record, channel, enqueued_at, budget_ms, now)
