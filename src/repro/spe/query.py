"""Queries: operator pipelines plus the runtime bookkeeping Klink consumes.

A :class:`Query` is a DAG of operators ending in a single
:class:`~repro.spe.operators.SinkOperator`. Multiple source streams are
supported (windowed joins); each source is described by a
:class:`SourceSpec` and bound to an input channel of its first operator.

Each source binding carries a :class:`StreamProgress` tracker — the
per-stream slice of the paper's *runtime data acquisition* module. It
observes network delays of ingested batches, detects SWM ingestions (a
watermark whose timestamp covers the next un-swept window deadline of the
stream's downstream window operator), demarcates epochs, and accumulates
the per-epoch delay statistics (mu_n, chi_n of Eqs. 3-4) that Klink's
estimator consumes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.report import Report

from repro.net.delays import DelayModel
from repro.spe.operators import (
    Operator,
    SinkOperator,
    WindowedJoin,
    _WindowedOperatorBase,
)
from repro.spe.windows import WindowAssigner


@dataclass
class SourceSpec:
    """Static description of one input stream.

    Attributes:
        name: Human-readable stream name.
        rate_eps: Event generation rate (events per second).
        watermark_period_ms: Watermark injection period p_q (Sec. 2.2:
            watermarks are injected periodically, independent of data rate).
        lateness_ms: Watermark allowance — a watermark emitted at
            generation time g carries timestamp ``g - lateness_ms``.
            Choosing the delay model's bound makes every event on-time.
        delay_model: Network delay distribution applied between generation
            and ingestion.
        bytes_per_event: Serialized event size for the memory model.
        gen_batch_ms: Generation granularity — one EventBatch per interval.
        marker_period_ms: Latency-marker injection period (paper: 200 ms).
        burst_factor: Rate multiplier while the source is bursting. Real
            streams carry "fluctuating or unpredictable load spikes"
            (Sec. 1); sources alternate between a burst state at
            ``burst_factor`` x the base rate and a quiet state scaled so
            the long-run mean remains ``rate_eps``. Set to 1.0 for a
            perfectly steady source.
        burst_duty: Long-run fraction of time spent bursting.
        burst_on_mean_ms: Mean burst duration (exponentially distributed).
        burst_off_mean_ms: Mean quiet duration; left ``None`` it is derived
            from the duty cycle (``on * (1 - duty) / duty``) so the
            long-run mean rate stays exactly ``rate_eps``.
    """

    name: str
    rate_eps: float
    watermark_period_ms: float
    lateness_ms: float
    delay_model: DelayModel
    bytes_per_event: int = 100
    gen_batch_ms: float = 50.0
    marker_period_ms: float = 200.0
    burst_factor: float = 1.0
    burst_duty: float = 0.3
    burst_on_mean_ms: float = 3_000.0
    burst_off_mean_ms: Optional[float] = None
    #: disable to generate watermarks mid-pipeline instead (Sec. 2.2 case
    #: (ii), via repro.spe.watermarks.WatermarkGeneratorOperator)
    emit_watermarks: bool = True

    def __post_init__(self) -> None:
        if self.rate_eps < 0:
            raise ValueError(f"negative rate: {self.rate_eps}")
        if self.watermark_period_ms <= 0:
            raise ValueError(f"watermark period must be positive: {self.watermark_period_ms}")
        if self.gen_batch_ms <= 0:
            raise ValueError(f"generation interval must be positive: {self.gen_batch_ms}")
        if self.burst_factor < 1.0:
            raise ValueError(f"burst factor must be >= 1: {self.burst_factor}")
        if not 0 < self.burst_duty < 1:
            raise ValueError(f"burst duty must be in (0, 1): {self.burst_duty}")
        if self.burst_factor * self.burst_duty >= 1.0:
            raise ValueError(
                "burst_factor * burst_duty must stay below 1 so the quiet "
                f"rate remains positive: {self.burst_factor} * {self.burst_duty}"
            )
        if self.burst_off_mean_ms is None:
            self.burst_off_mean_ms = (
                self.burst_on_mean_ms * (1.0 - self.burst_duty) / self.burst_duty
            )

    @property
    def quiet_factor(self) -> float:
        """Rate multiplier in the quiet state (keeps the long-run mean)."""
        return (1.0 - self.burst_factor * self.burst_duty) / (1.0 - self.burst_duty)


@dataclass
class EpochStats:
    """Finalized delay statistics for one epoch (inputs to Eqs. 3-6)."""

    mu: float    # mean network delay over the epoch's events
    chi: float   # mean squared network delay
    swm_ingest_time: float  # engine time the epoch's closing SWM arrived
    swm_timestamp: float    # event-time the closing SWM carried


class StreamProgress:
    """Per-input-stream progress tracking (epochs, delays, SWM ingestions).

    Epoch ``n+1`` starts after the ingestion of the ``n``-th SWM (Sec. 3).
    Whether an arriving watermark is sweeping is decided against the next
    un-swept deadline of the stream's downstream window operator, known
    from its window assigner — applications never mark SWMs themselves.
    """

    def __init__(
        self,
        assigner: Optional[WindowAssigner],
        watermark_period_ms: float,
        history: int = 400,
        start_time: float = 0.0,
    ) -> None:
        self.assigner = assigner
        self.watermark_period_ms = watermark_period_ms
        self.history_limit = history
        self.epoch_index = 0
        self.epochs: Deque[EpochStats] = deque(maxlen=history)
        # accumulators for the in-flight epoch
        self._delay_sum = 0.0
        self._delay_sq_sum = 0.0
        self._delay_weight = 0.0
        # Version counter + single-slot memo for the estimator's delay
        # moments: the estimator reads (mu, chi) several times per cycle
        # (plan, audit, slack), but the underlying accumulators mutate
        # only on ingestion. The memo caches the last fresh computation,
        # keyed by (version, history window); any mutation bumps the
        # version, so a hit returns exactly the value a recomputation
        # over the unchanged history would produce.
        self._version = 0  # klink: transient[cache-key counter for the moments memo below]
        self._moments_memo: Optional[Tuple[int, int, float, float]] = None  # klink: transient[memoized (version, history, mu, chi); recomputed on demand]
        # Epoch-keyed memos: the finalized-epoch history only changes when
        # an epoch closes, while delay observations arrive every cycle —
        # caching the history-side sums turns the estimator's per-cycle
        # moment computation into O(1). Keys use ``epoch_index`` (total
        # epochs finalized), which the deque's maxlen eviction preserves.
        self._hist_sums_memo: Optional[Tuple[int, int, int, float, float]] = None  # klink: transient[memoized (epoch_index, history, n, mu_sum, chi_sum)]
        self._epoch_mean_memo: Optional[Tuple[int, float, float]] = None  # klink: transient[memoized (epoch_index, mu, chi) for the idle-epoch fallback]
        self.last_watermark_ts = -math.inf
        self.last_swm_ingest_time: Optional[float] = None
        self.next_deadline: Optional[float] = (
            assigner.next_deadline(max(start_time, 0.0))
            if assigner is not None
            else None
        )

    # -- observations ------------------------------------------------------

    def observe_delay(self, delay: float, weight: float = 1.0) -> None:
        """Record the network delay of ``weight`` ingested events."""
        self._delay_sum += delay * weight
        self._delay_sq_sum += delay * delay * weight
        self._delay_weight += weight
        self._version += 1  # klink: transient[cache-key counter for the moments memo]

    def observe_watermark(self, timestamp: float, now: float) -> bool:
        """Record a watermark ingestion; returns True if it was an SWM."""
        if timestamp <= self.last_watermark_ts:
            return False  # late watermark, dropped by the SPE
        self.last_watermark_ts = timestamp
        if self.assigner is None or self.next_deadline is None:
            return False
        if timestamp < self.next_deadline:
            return False
        self._finalize_epoch(now, timestamp)
        self.next_deadline = self.assigner.next_deadline(timestamp)
        return True

    def _finalize_epoch(self, now: float, wm_ts: float) -> None:
        if self._delay_weight > 0:
            mu = self._delay_sum / self._delay_weight
            chi = self._delay_sq_sum / self._delay_weight
        elif self.epochs:
            # No events this epoch (idle stream): carry the last profile.
            mu, chi = self.epochs[-1].mu, self.epochs[-1].chi
        else:
            mu, chi = 0.0, 0.0
        self.epochs.append(EpochStats(mu, chi, now, wm_ts))
        self.epoch_index += 1
        self.last_swm_ingest_time = now
        self._delay_sum = 0.0
        self._delay_sq_sum = 0.0
        self._delay_weight = 0.0
        self._version += 1  # klink: transient[cache-key counter for the moments memo]

    def _invalidate_moments_memo(self) -> None:
        """Drop the estimator's delay-moments memo (e.g. after a restore
        rebuilt the accumulators in place); the next read recomputes from
        the current history."""
        self._moments_memo = None  # klink: transient[memo over the captured accumulators]
        self._hist_sums_memo = None  # klink: transient[memo over the captured epoch history]
        self._epoch_mean_memo = None  # klink: transient[memo over the captured epoch history]

    # -- estimator inputs ----------------------------------------------------

    @property
    def has_observations(self) -> bool:
        """True once at least one delay observation or finalized epoch
        exists. While False, the estimator is in *cold start* and must not
        trust the zeroed accumulators (see
        ``SwmIngestionEstimator.delay_moments``)."""
        return self._delay_weight > 0 or bool(self.epochs)

    def current_epoch_mean(self) -> Tuple[float, float]:
        """(mu, chi) for the in-flight epoch: observed data if any, else
        the average over the history (the two cases of Eqs. 3-4)."""
        if self._delay_weight > 0:
            return (
                self._delay_sum / self._delay_weight,
                self._delay_sq_sum / self._delay_weight,
            )
        if self.epochs:
            # The history-average fallback is fixed until the next epoch
            # closes; memoize it per epoch_index (same sums, same order).
            memo = self._epoch_mean_memo
            if memo is not None and memo[0] == self.epoch_index:
                return memo[1], memo[2]
            n = len(self.epochs)
            mu = sum(e.mu for e in self.epochs) / n
            chi = sum(e.chi for e in self.epochs) / n
            self._epoch_mean_memo = (self.epoch_index, mu, chi)
            return mu, chi
        return 0.0, 0.0

    def mu_history(self) -> List[float]:
        return [e.mu for e in self.epochs]

    def chi_history(self) -> List[float]:
        return [e.chi for e in self.epochs]


class PeriodicCursor:
    """Drift-free periodic time cursor: ``value = origin + step * period``.

    Accumulating a float period (``cursor += period``) rounds once per
    addition, so two code paths that should agree on the k-th tick drift
    apart by ulps — enough to reorder records at horizon boundaries
    (lint rule KL005). Deriving the value from an integer step count
    rounds once total, keeping every tick exactly reproducible.
    """

    __slots__ = ("origin", "period", "step")

    def __init__(self, origin: float, period: float) -> None:
        self.origin = float(origin)
        self.period = float(period)
        self.step = 0

    @property
    def value(self) -> float:
        return self.origin + self.step * self.period

    def advance(self) -> float:
        """Move to the next tick; returns the new cursor value."""
        self.step += 1
        return self.value

    def reset(self, origin: float) -> None:
        """Re-anchor the cursor at ``origin`` (tick zero)."""
        self.origin = float(origin)
        self.step = 0


class SourceBinding:
    """Wires a :class:`SourceSpec` into a query and tracks its generation
    and progress state. Generation cursors are owned by the engine."""

    def __init__(
        self,
        spec: SourceSpec,
        operator: Operator,
        input_index: int = 0,
        source_id: int = 0,
        history: int = 400,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.operator = operator
        self.input_index = input_index
        self.source_id = source_id
        self.channel = operator.inputs[input_index]
        self.progress: Optional[StreamProgress] = None  # set by Query
        # cumulative ingestion counters (engine-maintained); the invariant
        # monitor balances these against entry-operator consumption.
        self.events_ingested = 0.0
        self.watermarks_ingested = 0
        # generation cursors (engine-managed, drift-free)
        self._gen_cursor = PeriodicCursor(0.0, spec.gen_batch_ms)
        self._watermark_cursor = PeriodicCursor(
            spec.watermark_period_ms, spec.watermark_period_ms
        )
        self._marker_cursor = PeriodicCursor(
            spec.marker_period_ms, spec.marker_period_ms
        )
        self._history = history
        # burst-state machine (engine-managed)
        self.rng = np.random.default_rng(seed)
        self.bursting = False
        self.burst_state_until = 0.0

    # -- generation cursors ------------------------------------------------
    # Exposed as plain float attributes for compatibility (tests re-anchor
    # them); assignment resets the integer tick count at the new origin.

    @property
    def next_gen_time(self) -> float:
        """Generation time of the next event batch's start."""
        return self._gen_cursor.value

    @next_gen_time.setter
    def next_gen_time(self, value: float) -> None:
        self._gen_cursor.reset(value)

    @property
    def next_watermark_time(self) -> float:
        return self._watermark_cursor.value

    @next_watermark_time.setter
    def next_watermark_time(self, value: float) -> None:
        self._watermark_cursor.reset(value)

    @property
    def next_marker_time(self) -> float:
        return self._marker_cursor.value

    @next_marker_time.setter
    def next_marker_time(self, value: float) -> None:
        self._marker_cursor.reset(value)

    def advance_gen(self) -> float:
        return self._gen_cursor.advance()

    def advance_watermark(self) -> float:
        return self._watermark_cursor.advance()

    def advance_marker(self) -> float:
        return self._marker_cursor.advance()

    def bind_progress(
        self, assigner: Optional[WindowAssigner], start_time: float = 0.0
    ) -> None:
        self.progress = StreamProgress(
            assigner,
            self.spec.watermark_period_ms,
            history=self._history,
            start_time=start_time,
        )


class Query:
    """A deployed streaming query: sources -> operator DAG -> sink."""

    def __init__(
        self,
        query_id: str,
        bindings: Sequence[SourceBinding],
        operators: Sequence[Operator],
        sink: SinkOperator,
        epoch_history: int = 400,
        deployed_at: float = 0.0,
    ) -> None:
        if not bindings:
            raise ValueError("query needs at least one source")
        if deployed_at < 0:
            raise ValueError(f"negative deployment time: {deployed_at}")
        self.query_id = query_id
        self.bindings = list(bindings)
        self.operators = list(operators)
        self.sink = sink
        self.deployed_at = float(deployed_at)
        # Structural validation first: _assigner_for walks downstream
        # pointers and must only run on a graph known to be acyclic.
        self._validate()
        self._downstream: Dict[Operator, Optional[Operator]] = {}
        self._wire_downstream_map()
        # The operator list is fixed for the query's lifetime, so the
        # windowed subset can be classified once instead of per lookup
        # (schedulers read it every cycle).
        self._windowed_ops: List[_WindowedOperatorBase] = [  # klink: transient[build-time classification of the fixed operator list]
            op for op in self.operators if isinstance(op, _WindowedOperatorBase)
        ]
        # Operators whose state_bytes can be non-zero (the property is
        # overridden). memory_bytes skips the stateless rest: their base
        # property returns exactly 0.0 and adding 0.0 to a non-negative
        # accumulator is a bit-exact no-op.
        self._stateful_ops: List[Operator] = [  # klink: transient[build-time classification of the fixed operator list]
            op
            for op in self.operators
            if type(op).state_bytes is not Operator.state_bytes
        ]
        for binding in self.bindings:
            binding._history = epoch_history
            binding.bind_progress(
                self._assigner_for(binding.operator), start_time=self.deployed_at
            )

    # -- construction helpers ---------------------------------------------------

    def _wire_downstream_map(self) -> None:
        from repro.analysis.plan_check import build_downstream_map

        downstream, _ = build_downstream_map(self.operators)
        self._downstream = downstream
        # Position-indexed twin of the downstream map (-1 = sink/none) for
        # the per-cycle cost walk in pending_cost_ms.
        index = {op: i for i, op in enumerate(self.operators)}
        self._downstream_idx = [  # klink: transient[build-time wiring, fixed for the life of the topology]
            index[down] if down is not None else -1
            for down in (downstream[op] for op in self.operators)
        ]

    def _validate(self) -> None:
        """Graph-shape validation (cycles, wiring, sink placement, topo
        order), delegated to the static plan validator. Raises
        :class:`~repro.analysis.plan_check.PlanValidationError` — a
        ``ValueError`` — on any structural error. The full semantic pass
        (watermark reachability, key selectors, cost bounds) runs at
        engine submission via ``repro.analysis.plan_check.check_query``.
        """
        from repro.analysis.plan_check import PlanValidationError, check_structure

        report = check_structure(self.operators, self.sink)
        if not report.ok:
            raise PlanValidationError(report)

    def validate(self) -> "Report":
        """Run the full static plan check; returns the diagnostics report."""
        from repro.analysis.plan_check import check_query

        return check_query(self)

    def _assigner_for(self, entry: Operator) -> Optional[WindowAssigner]:
        """First window assigner on the path from ``entry`` downstream."""
        op: Optional[Operator] = entry
        while op is not None:
            if isinstance(op, _WindowedOperatorBase):
                return op.assigner
            op = self._downstream[op]
        return None

    # -- scheduler-facing aggregates -------------------------------------------

    def downstream_of(self, op: Operator) -> Optional[Operator]:
        return self._downstream[op]

    @property
    def queued_events(self) -> float:
        return sum(op.queued_events for op in self.operators)

    @property
    def queued_bytes(self) -> float:
        return sum(op.queued_bytes for op in self.operators)

    @property
    def state_bytes(self) -> float:
        return sum(op.state_bytes for op in self.operators)

    @property
    def memory_bytes(self) -> float:
        """Total memory footprint: queued records plus window state.

        One pass over the operators with separate accumulators — the same
        two float-add sequences as summing ``queued_bytes`` and
        ``state_bytes`` independently.
        """
        queued = 0.0
        state = 0.0
        for op in self.operators:
            if op._queues_dirty:
                op._refresh_queue_memo()
            queued += op._queued_bytes_memo
        # Stateless operators contribute exactly 0.0 to ``state``; only
        # the overridden properties are read (same adds, same order).
        for op in self._stateful_ops:
            state += op.state_bytes
        return queued + state

    def has_work(self) -> bool:
        return any(op.has_work() for op in self.operators)

    def windowed_operators(self) -> List[_WindowedOperatorBase]:
        """The query's window operators (do not mutate the returned list)."""
        return self._windowed_ops

    def join_operators(self) -> List[WindowedJoin]:
        return [op for op in self.operators if isinstance(op, WindowedJoin)]

    def unit_costs(self) -> Dict[Operator, float]:
        """Cost to push one event end-to-end from each operator (ms).

        ``unit_cost[op] = cost(op) + selectivity(op) * unit_cost(downstream)``
        using measured selectivities where available (Sec. 3: cost is
        estimated from per-operator processing time and selectivity [33]).
        """
        costs: Dict[Operator, float] = {}
        for op in reversed(self.operators):
            down = self._downstream[op]
            sel = op.stats.measured_selectivity if op.stats.events_in > 0 else op.selectivity
            tail = costs[down] if down is not None else 0.0
            costs[op] = op.cost_per_event_ms + sel * tail
        return costs

    def pending_cost_ms(self) -> float:
        """cost_q(t): CPU time to process every queued event end-to-end.

        Inlines :meth:`unit_costs` (same expressions, same walk order)
        over position-indexed scratch arrays instead of an
        operator-keyed dict: the scheduler evaluates this for every
        query every cycle, and list indexing beats identity hashing.
        """
        ops = self.operators
        n = len(ops)
        costs = [0.0] * n
        downstream_idx = self._downstream_idx
        for i in range(n - 1, -1, -1):
            op = ops[i]
            di = downstream_idx[i]
            stats = op.stats
            sel = (
                stats.measured_selectivity
                if stats.events_in > 0
                else op.selectivity
            )
            tail = costs[di] if di >= 0 else 0.0
            costs[i] = op.cost_per_event_ms + sel * tail
        total = 0.0
        for i, op in enumerate(ops):
            if op._queues_dirty:
                op._refresh_queue_memo()
            total += op._queued_events_memo * costs[i]
        return total

    def pipeline_cost_per_event_ms(self) -> float:
        """Ideal end-to-end processing cost of a single event (slowdown
        denominator, Sec. 6.1.2)."""
        return sum(op.cost_per_event_ms for op in self.operators)

    def next_window_deadline(self) -> float:
        """Earliest pending window deadline across the query's window ops."""
        deadlines = [
            op.next_deadline(op.event_clock) for op in self.windowed_operators()
        ]
        return min(deadlines) if deadlines else math.inf

    def oldest_queued_arrival(self) -> Optional[float]:
        """Engine time of the oldest queued record (FCFS ordering key)."""
        arrivals = [
            ch.head_arrival
            for op in self.operators
            for ch in op.inputs
            if ch.head_arrival is not None
        ]
        return min(arrivals) if arrivals else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Query({self.query_id!r}, ops={len(self.operators)})"


def chain(*operators: Operator) -> List[Operator]:
    """Wire a linear pipeline: each operator's output feeds the next."""
    for up, down in zip(operators, operators[1:]):
        up.connect(down)
    return list(operators)
