"""In-order processing (IOP) support.

Sec. 2.1 of the paper contrasts two architectures for handling
out-of-order streams:

* **IOP** — the SPE enforces event-time order before processing, which
  "typically imposes large performance overheads as in-order processing
  can perilously delay the processing of events";
* **OOP** — operators process events as they arrive and watermarks
  guarantee completeness (the architecture Klink assumes).

:class:`ReorderBuffer` implements the IOP building block: it holds every
arriving batch until a watermark certifies that no earlier event can
still arrive, then releases the buffered batches sorted by event-time
(followed by the watermark). Inserting it after a source turns that
stream into an in-order stream at the cost of buffering memory and an
added delay of up to the watermark period plus the lateness allowance —
the overhead the paper attributes to IOP, measurable with the
``test_ablation_iop_vs_oop`` bench.
"""

from __future__ import annotations

from typing import List

from repro.spe.events import EventBatch, Watermark
from repro.spe.operators import Operator


class ReorderBuffer(Operator):
    """Buffers and sorts events until watermarks certify completeness."""

    def __init__(
        self,
        name: str,
        cost_per_event_ms: float = 0.002,
        state_bytes_per_event: int | None = None,
    ) -> None:
        super().__init__(name, cost_per_event_ms, selectivity=1.0)
        self._buffer: List[EventBatch] = []
        self._buffered_events = 0.0
        self._buffered_bytes = 0.0
        self._state_bytes_per_event = state_bytes_per_event
        self.released_events = 0.0

    @property
    def state_events(self) -> float:
        return self._buffered_events

    @property
    def state_bytes(self) -> float:
        if self._state_bytes_per_event is not None:
            return self._buffered_events * self._state_bytes_per_event
        return self._buffered_bytes

    def _on_batch(self, batch: EventBatch, input_index: int, now: float) -> None:
        self._buffer.append(batch)
        self._buffered_events += batch.count
        self._buffered_bytes += batch.bytes

    def _on_watermark(self, wm: Watermark, input_index: int, now: float) -> None:
        ready = [b for b in self._buffer if b.t_end <= wm.timestamp]
        if ready:
            # Release complete batches in event-time order: the defining
            # property of IOP. Batches straddling the watermark stay
            # buffered in full (splitting them would reorder their mass).
            ready.sort(key=lambda b: (b.t_start, b.t_end))
            for batch in ready:
                self._buffered_events -= batch.count
                self._buffered_bytes -= batch.bytes
                self.released_events += batch.count
                # Pass bytes through unchanged: reordering transforms
                # nothing.
                self._emit(batch, now)
            remaining = [b for b in self._buffer if b.t_end > wm.timestamp]
            self._buffer = remaining
        self._emit(wm, now)

    def pending_batches(self) -> int:
        """Number of batches still awaiting a certifying watermark."""
        return len(self._buffer)
