"""Virtual time for the simulated stream processing engine.

All simulator timestamps are expressed in *milliseconds* as floats. Both
event-time (timestamps assigned at the source) and processing-time (the
engine's clock) share this unit, mirroring Flink's millisecond epoch
timestamps. Helpers are provided so workload definitions can be written in
natural units.
"""

from __future__ import annotations

MILLIS = 1.0
SECONDS = 1000.0
MINUTES = 60 * SECONDS


def seconds(value: float) -> float:
    """Convert seconds to simulator milliseconds."""
    return value * SECONDS


def millis(value: float) -> float:
    """Identity helper for symmetry with :func:`seconds`."""
    return value * MILLIS


class VirtualClock:
    """A monotonically advancing virtual clock.

    The engine owns one clock and advances it in scheduling-cycle steps.
    Components hold a reference and read ``clock.now`` instead of wall time,
    which keeps every experiment deterministic and independent of host speed.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` (must be non-negative)."""
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock backwards: {delta_ms}")
        self._now += delta_ms
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute ``timestamp`` (never backwards)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: {timestamp} < {self._now}"
            )
        self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.3f}ms)"
