"""Inter-operator channels.

A :class:`Channel` is the FIFO queue connecting two operators (or a source
to its first operator). It tracks the aggregate statistics the schedulers
consume: number of queued events, queued bytes, and the engine-clock time
at which the head record arrived (FCFS orders queries by this).

Batched mode
------------
With ``batch_size > 1`` a channel coalesces consecutive payload pushes
into columnar :class:`~repro.spe.events.RecordBatch` entries of up to
``batch_size`` rows. Control records are never merged and seal the tail
batch, so FIFO order across record kinds is exact. All aggregate
accounting is applied *per row* in push order — the same float-add
sequence the per-event path performs — so queue statistics (and thus
every scheduler decision derived from them) are byte-identical whatever
the batch size.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from repro.spe.events import EventBatch, LatencyMarker, RecordBatch, Watermark

#: rows a partially drained tail batch may accumulate before its consumed
#: prefix is compacted away (purely a memory bound; never observable)
_COMPACT_THRESHOLD = 256


class _Entry:
    __slots__ = ("record", "enqueued_at")

    def __init__(self, record: object, enqueued_at: float) -> None:
        self.record = record
        self.enqueued_at = enqueued_at


class Channel:
    """Bounded-accounting FIFO queue between operators.

    A channel whose endpoints live on different nodes carries a transfer
    ``latency_ms``: pushed records stay in a pending buffer until the
    engine calls :meth:`release` once the latency has elapsed (the RPC /
    network hop of a distributed deployment, Sec. 4). Latency channels
    never coalesce (each record is an independent transfer).
    """

    def __init__(
        self, name: str = "", latency_ms: float = 0.0, owner: object = None
    ) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative channel latency: {latency_ms}")
        self.name = name
        self.latency_ms = latency_ms
        #: payload rows coalesced per queue entry (1 = per-event mode);
        #: set by the engine at wiring time for single-input consumers.
        self.batch_size = 1
        #: consuming operator (if any); its memoized queue aggregates are
        #: invalidated whenever this channel's payload accounting changes.
        self._owner = owner
        #: position of this channel in the consumer's ``inputs`` list
        #: (set by the owning operator; saves a list.index per dispatch).
        self._consumer_index = 0  # klink: transient[build-time wiring, fixed for the life of the topology]
        self._entries: Deque[_Entry] = deque()
        self._pending: Deque[_Entry] = deque()  # in-flight cross-node records
        self._queued_events: float = 0.0
        self._queued_bytes: float = 0.0
        # Cumulative flow counters (never reset) — the invariant monitor
        # asserts pushed + returned - popped == queued after every cycle.
        self.events_pushed: float = 0.0
        self.events_returned: float = 0.0
        self.events_popped: float = 0.0

    # -- producer side -----------------------------------------------------

    def push(self, record: object, now: float) -> None:
        """Enqueue ``record`` at engine time ``now``."""
        if self.latency_ms > 0.0:
            self._pending.append(_Entry(record, now + self.latency_ms))
            return
        if isinstance(record, EventBatch):
            if self.batch_size > 1:
                self.push_row(
                    record.count,
                    record.t_start,
                    record.t_end,
                    record.delay,
                    record.bytes_per_event,
                    now,
                )
                return
            self._entries.append(_Entry(record, now))
            self._queued_events += record.count
            self._queued_bytes += record.bytes
            self.events_pushed += record.count
            if self._owner is not None:
                self._owner._queues_dirty = True  # klink: transient[back-pointer; only invalidates the owner's queue memo]
        else:
            self._entries.append(_Entry(record, now))

    def push_row(
        self,
        count: float,
        t_start: float,
        t_end: float,
        delay: float,
        bytes_per_event: int,
        now: float,
    ) -> None:
        """Enqueue one payload row, coalescing into the tail batch.

        The fast emission path in batched mode: appends columns directly
        instead of constructing an :class:`EventBatch`. Falls back to a
        per-event push when this channel does not coalesce.
        """
        if self.batch_size > 1 and self.latency_ms == 0.0:
            entries = self._entries
            tail = entries[-1].record if entries else None
            if (
                type(tail) is RecordBatch
                and tail.bytes_per_event == bytes_per_event
                and len(tail.counts) - tail.head < self.batch_size
            ):
                if tail.head > _COMPACT_THRESHOLD:
                    h = tail.head
                    del tail.counts[:h]
                    del tail.t_starts[:h]
                    del tail.t_ends[:h]
                    del tail.delays[:h]
                    del tail.enqueued_ats[:h]
                    tail.head = 0
                tail.append_row(count, t_start, t_end, delay, now)
            else:
                batch = RecordBatch(bytes_per_event)
                batch.append_row(count, t_start, t_end, delay, now)
                self._entries.append(_Entry(batch, now))
            self._queued_events += count
            self._queued_bytes += count * bytes_per_event
            self.events_pushed += count
            if self._owner is not None:
                self._owner._queues_dirty = True
            return
        self.push(
            EventBatch(
                count=count,
                t_start=t_start,
                t_end=t_end,
                delay=delay,
                bytes_per_event=bytes_per_event,
            ),
            now,
        )

    def release(self, now: float) -> int:
        """Deliver in-flight records whose transfer completed; returns count."""
        released = 0
        while self._pending and self._pending[0].enqueued_at <= now:
            entry = self._pending.popleft()
            self._entries.append(entry)
            if isinstance(entry.record, EventBatch):
                self._queued_events += entry.record.count
                self._queued_bytes += entry.record.bytes
                self.events_pushed += entry.record.count
                if self._owner is not None:
                    self._owner._queues_dirty = True
            released += 1
        return released

    def push_front(self, record: object, enqueued_at: float) -> None:
        """Return a partially processed record to the head of the queue."""
        self._entries.appendleft(_Entry(record, enqueued_at))
        if isinstance(record, EventBatch):
            self._queued_events += record.count
            self._queued_bytes += record.bytes
            self.events_returned += record.count
            if self._owner is not None:
                self._owner._queues_dirty = True

    # -- consumer side -----------------------------------------------------

    def pop(self) -> Optional[_Entry]:
        """Dequeue the head entry, or ``None`` when empty."""
        if not self._entries:
            return None
        entry = self._entries.popleft()
        record = entry.record
        if isinstance(record, EventBatch):
            self._queued_events -= record.count
            self._queued_bytes -= record.bytes
            self.events_popped += record.count
            # Guard against float drift accumulating into negatives.
            if self._queued_events < 1e-9:
                self._queued_events = 0.0
            if self._queued_bytes < 1e-6:
                self._queued_bytes = 0.0
            if self._owner is not None:
                self._owner._queues_dirty = True
        elif isinstance(record, RecordBatch):
            # Row-by-row accounting in row order: the same float sequence
            # popping the rows as individual entries would produce.
            bpe = record.bytes_per_event
            for i in range(record.head, len(record.counts)):
                count = record.counts[i]
                self._queued_events -= count
                self._queued_bytes -= count * bpe
                self.events_popped += count
                if self._queued_events < 1e-9:
                    self._queued_events = 0.0
                if self._queued_bytes < 1e-6:
                    self._queued_bytes = 0.0
            if self._owner is not None:
                self._owner._queues_dirty = True
        return entry

    def _pop_batch_accounting(self, record: EventBatch) -> None:
        """Payload accounting of :meth:`pop`'s EventBatch branch.

        The operator step loops inline the popleft itself (the head entry
        is already in hand) and call this only when the popped record
        carries payload — the same statements :meth:`pop` runs, in the
        same order.
        """
        self._queued_events -= record.count
        self._queued_bytes -= record.bytes
        self.events_popped += record.count
        if self._queued_events < 1e-9:
            self._queued_events = 0.0
        if self._queued_bytes < 1e-6:
            self._queued_bytes = 0.0
        if self._owner is not None:
            self._owner._queues_dirty = True

    def peek(self) -> Optional[_Entry]:
        """Return (without removing) the head entry, or ``None``."""
        return self._entries[0] if self._entries else None

    def discard_head(self) -> None:
        """Remove the head entry without payload accounting.

        Used by the batched consume path once every row of the head
        :class:`RecordBatch` has been drained (row accounting already
        applied as each row was consumed).
        """
        self._entries.popleft()

    # -- introspection -----------------------------------------------------

    def transfer_interval(self, enqueued_at: float) -> Optional[tuple]:
        """``(push_time, arrival)`` of a record's cross-node transfer.

        For a latency channel, a record enqueued (arrived) at
        ``enqueued_at`` was pushed ``latency_ms`` earlier — the interval is
        the *emit* leg of the lineage waterfall. Local channels transfer
        instantaneously and return ``None``. Pure arithmetic over the
        channel's fixed latency; shares its boundary floats with the
        adjacent queue span so the lineage chain stays exactly contiguous.
        """
        if self.latency_ms <= 0.0:
            return None
        return (enqueued_at - self.latency_ms, enqueued_at)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[_Entry]:
        return iter(self._entries)

    @property
    def queued_events(self) -> float:
        """Number of payload events currently queued."""
        return self._queued_events

    @property
    def queued_bytes(self) -> float:
        """Memory footprint of queued payload events."""
        return self._queued_bytes

    @property
    def head_arrival(self) -> Optional[float]:
        """Engine time at which the oldest queued record arrived."""
        return self._entries[0].enqueued_at if self._entries else None

    def oldest_event_arrival(self) -> Optional[float]:
        """Arrival time of the oldest queued *payload* record, if any."""
        for entry in self._entries:
            if isinstance(entry.record, (EventBatch, RecordBatch, LatencyMarker)):
                return entry.enqueued_at
        return None

    def has_watermark(self) -> bool:
        """True when at least one watermark is queued."""
        return any(isinstance(e.record, Watermark) for e in self._entries)

    def clear(self) -> None:
        """Drop all queued records (used by tests and teardown)."""
        # Dropped records count as consumed so the cumulative flow
        # counters stay consistent with the (now empty) queue.
        for entry in self._entries:
            record = entry.record
            if isinstance(record, EventBatch):
                self.events_popped += record.count
            elif isinstance(record, RecordBatch):
                for i in range(record.head, len(record.counts)):
                    self.events_popped += record.counts[i]
        self._entries.clear()
        self._queued_events = 0.0
        self._queued_bytes = 0.0
        if self._owner is not None:
            self._owner._queues_dirty = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Channel({self.name!r}, records={len(self._entries)}, "
            f"events={self._queued_events:.0f})"
        )
