"""Inter-operator channels.

A :class:`Channel` is the FIFO queue connecting two operators (or a source
to its first operator). It tracks the aggregate statistics the schedulers
consume: number of queued events, queued bytes, and the engine-clock time
at which the head record arrived (FCFS orders queries by this).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional

from repro.spe.events import EventBatch, LatencyMarker, Watermark


@dataclass
class _Entry:
    record: object
    enqueued_at: float


class Channel:
    """Bounded-accounting FIFO queue between operators.

    A channel whose endpoints live on different nodes carries a transfer
    ``latency_ms``: pushed records stay in a pending buffer until the
    engine calls :meth:`release` once the latency has elapsed (the RPC /
    network hop of a distributed deployment, Sec. 4).
    """

    def __init__(
        self, name: str = "", latency_ms: float = 0.0, owner: object = None
    ) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative channel latency: {latency_ms}")
        self.name = name
        self.latency_ms = latency_ms
        #: consuming operator (if any); its memoized queue aggregates are
        #: invalidated whenever this channel's payload accounting changes.
        self._owner = owner
        self._entries: Deque[_Entry] = deque()
        self._pending: Deque[_Entry] = deque()  # in-flight cross-node records
        self._queued_events: float = 0.0
        self._queued_bytes: float = 0.0
        # Cumulative flow counters (never reset) — the invariant monitor
        # asserts pushed + returned - popped == queued after every cycle.
        self.events_pushed: float = 0.0
        self.events_returned: float = 0.0
        self.events_popped: float = 0.0

    # -- producer side -----------------------------------------------------

    def push(self, record: object, now: float) -> None:
        """Enqueue ``record`` at engine time ``now``."""
        if self.latency_ms > 0.0:
            self._pending.append(_Entry(record, now + self.latency_ms))
            return
        self._entries.append(_Entry(record, now))
        if isinstance(record, EventBatch):
            self._queued_events += record.count
            self._queued_bytes += record.bytes
            self.events_pushed += record.count
            if self._owner is not None:
                self._owner._queues_dirty = True  # klink: transient[back-pointer; only invalidates the owner's queue memo]

    def release(self, now: float) -> int:
        """Deliver in-flight records whose transfer completed; returns count."""
        released = 0
        while self._pending and self._pending[0].enqueued_at <= now:
            entry = self._pending.popleft()
            self._entries.append(entry)
            if isinstance(entry.record, EventBatch):
                self._queued_events += entry.record.count
                self._queued_bytes += entry.record.bytes
                self.events_pushed += entry.record.count
                if self._owner is not None:
                    self._owner._queues_dirty = True
            released += 1
        return released

    def push_front(self, record: object, enqueued_at: float) -> None:
        """Return a partially processed record to the head of the queue."""
        self._entries.appendleft(_Entry(record, enqueued_at))
        if isinstance(record, EventBatch):
            self._queued_events += record.count
            self._queued_bytes += record.bytes
            self.events_returned += record.count
            if self._owner is not None:
                self._owner._queues_dirty = True

    # -- consumer side -----------------------------------------------------

    def pop(self) -> Optional[_Entry]:
        """Dequeue the head entry, or ``None`` when empty."""
        if not self._entries:
            return None
        entry = self._entries.popleft()
        record = entry.record
        if isinstance(record, EventBatch):
            self._queued_events -= record.count
            self._queued_bytes -= record.bytes
            self.events_popped += record.count
            # Guard against float drift accumulating into negatives.
            if self._queued_events < 1e-9:
                self._queued_events = 0.0
            if self._queued_bytes < 1e-6:
                self._queued_bytes = 0.0
            if self._owner is not None:
                self._owner._queues_dirty = True
        return entry

    def peek(self) -> Optional[_Entry]:
        """Return (without removing) the head entry, or ``None``."""
        return self._entries[0] if self._entries else None

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[_Entry]:
        return iter(self._entries)

    @property
    def queued_events(self) -> float:
        """Number of payload events currently queued."""
        return self._queued_events

    @property
    def queued_bytes(self) -> float:
        """Memory footprint of queued payload events."""
        return self._queued_bytes

    @property
    def head_arrival(self) -> Optional[float]:
        """Engine time at which the oldest queued record arrived."""
        return self._entries[0].enqueued_at if self._entries else None

    def oldest_event_arrival(self) -> Optional[float]:
        """Arrival time of the oldest queued *payload* record, if any."""
        for entry in self._entries:
            if isinstance(entry.record, (EventBatch, LatencyMarker)):
                return entry.enqueued_at
        return None

    def has_watermark(self) -> bool:
        """True when at least one watermark is queued."""
        return any(isinstance(e.record, Watermark) for e in self._entries)

    def clear(self) -> None:
        """Drop all queued records (used by tests and teardown)."""
        # Dropped records count as consumed so the cumulative flow
        # counters stay consistent with the (now empty) queue.
        for entry in self._entries:
            if isinstance(entry.record, EventBatch):
                self.events_popped += entry.record.count
        self._entries.clear()
        self._queued_events = 0.0
        self._queued_bytes = 0.0
        if self._owner is not None:
            self._owner._queues_dirty = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Channel({self.name!r}, records={len(self._entries)}, "
            f"events={self._queued_events:.0f})"
        )
