"""Per-cycle engine tracing.

A :class:`CycleTracer` attached to an :class:`~repro.spe.engine.Engine`
records one row per scheduling cycle: clock, memory, CPU, backpressure
state, and the head of the scheduler's priority order. Traces explain
*why* a run behaved the way it did — which queries the policy favoured,
when memory-management episodes started, when backpressure began
shedding — and export to CSV for offline analysis.

Usage::

    tracer = CycleTracer(max_rows=10_000)
    engine = Engine(queries, scheduler, tracer=tracer)
    engine.run(60_000.0)
    tracer.to_csv("trace.csv")
"""

from __future__ import annotations

import csv
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence


@dataclass
class CycleRecord:
    """One scheduling cycle's observable state."""

    time: float
    memory_utilization: float
    cpu_used_ms: float
    overhead_ms: float
    backpressured: bool
    plan_mode: str
    throttled: bool
    head_queries: List[str] = field(default_factory=list)


class CycleTracer:
    """Bounded in-memory trace of engine cycles."""

    FIELDS = [
        "time",
        "memory_utilization",
        "cpu_used_ms",
        "overhead_ms",
        "backpressured",
        "plan_mode",
        "throttled",
        "head_queries",
    ]

    def __init__(self, max_rows: int = 100_000, head: int = 4, stream=None) -> None:
        if max_rows < 1:
            raise ValueError(f"need at least one row: {max_rows}")
        if head < 0:
            raise ValueError(f"negative head count: {head}")
        self.head = head
        self._rows: Deque[CycleRecord] = deque(maxlen=max_rows)
        #: optional row sink with a ``write(dict)`` method (e.g.
        #: :class:`repro.obs.export.JsonlWriter`): every record is forwarded
        #: as it is produced, so long runs keep full traces on disk while
        #: the in-memory deque stays bounded.
        self.stream = stream

    # -- engine-facing hook --------------------------------------------------

    def on_cycle(
        self,
        *,
        time: float,
        memory_utilization: float,
        cpu_used_ms: float,
        overhead_ms: float,
        backpressured: bool,
        plan,
    ) -> None:
        record = CycleRecord(
            time=time,
            memory_utilization=memory_utilization,
            cpu_used_ms=cpu_used_ms,
            overhead_ms=overhead_ms,
            backpressured=backpressured,
            plan_mode=plan.mode,
            throttled=plan.throttle_ingestion,
            head_queries=[
                alloc.query.query_id
                for alloc in plan.allocations[: self.head]
            ],
        )
        self._rows.append(record)
        if self.stream is not None:
            self.stream.write(self._record_dict(record))

    # -- consumption ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> Sequence[CycleRecord]:
        return tuple(self._rows)

    def last(self) -> Optional[CycleRecord]:
        return self._rows[-1] if self._rows else None

    def throttled_spans(self) -> List[tuple]:
        """(start, end) time spans during which ingestion was throttled."""
        spans = []
        start = None
        prev_time = None
        for row in self._rows:
            throttling = row.throttled or row.backpressured
            if throttling and start is None:
                start = row.time
            elif not throttling and start is not None:
                spans.append((start, prev_time))
                start = None
            prev_time = row.time
        if start is not None:
            spans.append((start, prev_time))
        return spans

    @staticmethod
    def _record_dict(row: CycleRecord) -> dict:
        """A record as an insertion-ordered dict (FIELDS order)."""
        return {
            "time": row.time,
            "memory_utilization": row.memory_utilization,
            "cpu_used_ms": row.cpu_used_ms,
            "overhead_ms": row.overhead_ms,
            "backpressured": row.backpressured,
            "plan_mode": row.plan_mode,
            "throttled": row.throttled,
            "head_queries": list(row.head_queries),
        }

    def to_jsonl(self, path: str) -> None:
        """Write the retained rows as deterministic JSON lines."""
        from repro.obs.export import JsonlWriter

        with JsonlWriter(path) as writer:
            for row in self._rows:
                writer.write(self._record_dict(row))

    def to_chrome(self, path: str, *, cycle_ms: float) -> None:
        """Export the retained cycles as a Chrome trace-event file.

        Lightweight counterpart of ``repro-bench report --chrome`` for
        runs traced with a bare :class:`CycleTracer` (no TraceWriter):
        the result loads in ``chrome://tracing`` / Perfetto.
        """
        from repro.obs.flame import trace_from_tracer, write_chrome_trace

        trace = trace_from_tracer(
            [self._record_dict(row) for row in self._rows], cycle_ms=cycle_ms
        )
        write_chrome_trace(path, trace)

    def to_csv(self, path: str) -> None:
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.FIELDS)
            for row in self._rows:
                writer.writerow(
                    [
                        f"{row.time:.3f}",
                        f"{row.memory_utilization:.6f}",
                        f"{row.cpu_used_ms:.3f}",
                        f"{row.overhead_ms:.4f}",
                        int(row.backpressured),
                        row.plan_mode,
                        int(row.throttled),
                        "|".join(row.head_queries),
                    ]
                )
