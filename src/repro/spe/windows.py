"""Window assigners and deadline arithmetic.

Following Sec. 2.1 of the paper, a time-based window function is
characterized by a size ``s`` and a slide ``l``; deadlines are met every
``l`` time units, and a window's *deadline* is the event-time instant at
which it contains every event needed to produce its output (its end
boundary). Tumbling windows are sliding windows with ``l == s``.

Count-based windows close after ``s`` events; their deadline is the arrival
of the ``s``-th event rather than a point in event-time.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Pane:
    """One concrete window instance ``[start, end)`` in event-time."""

    start: float
    end: float

    @property
    def deadline(self) -> float:
        """Event-time at which this pane's input is complete."""
        return self.end


class WindowAssigner(abc.ABC):
    """Maps event-times (and event-time ranges) to window panes."""

    @abc.abstractmethod
    def assign(self, timestamp: float) -> List[Pane]:
        """Panes containing an event with the given event-time."""

    @abc.abstractmethod
    def next_deadline(self, timestamp: float) -> float:
        """The first pane deadline strictly greater than ``timestamp``."""

    @abc.abstractmethod
    def assign_range(
        self, t_start: float, t_end: float, count: float
    ) -> List[Tuple[Pane, float]]:
        """Distribute ``count`` events uniform on ``[t_start, t_end]`` to panes.

        Returns ``(pane, events_in_pane)`` pairs. The per-pane counts sum to
        ``count`` multiplied by the number of panes each event belongs to
        (``size / slide`` for sliding windows), matching the duplication a
        per-event sliding-window assigner performs.
        """


class SlidingEventTimeWindows(WindowAssigner):
    """Sliding event-time windows of ``size`` every ``slide`` milliseconds.

    Pane starts are aligned to ``offset + k * slide`` (Flink's alignment,
    plus an optional per-query offset). The paper deploys each query at a
    randomized time within the first 20 s "to randomize the uniform
    distribution of the window deadlines" — setting ``offset`` to the
    deployment time reproduces that staggering.
    """

    def __init__(self, size: float, slide: float | None = None, offset: float = 0.0):
        if size <= 0:
            raise ValueError(f"window size must be positive: {size}")
        slide = size if slide is None else slide
        if slide <= 0:
            raise ValueError(f"window slide must be positive: {slide}")
        if slide > size:
            raise ValueError(
                f"slide {slide} larger than size {size} would drop events"
            )
        self.size = float(size)
        self.slide = float(slide)
        self.offset = float(offset) % self.slide

    @property
    def is_tumbling(self) -> bool:
        return self.size == self.slide

    def assign(self, timestamp: float) -> List[Pane]:
        t = timestamp - self.offset
        last_start = self.slide * math.floor(t / self.slide) + self.offset
        # Guard float rounding at pane boundaries: pane ends are exclusive.
        while last_start > timestamp:
            last_start -= self.slide
        while last_start + self.slide <= timestamp:
            last_start += self.slide
        panes = []
        start = last_start
        while start > timestamp - self.size and start + self.size > timestamp:
            panes.append(Pane(start, start + self.size))
            start -= self.slide
        return panes

    def next_deadline(self, timestamp: float) -> float:
        # Deadlines (pane ends) sit at `offset + k*slide + size`. The
        # smallest such value strictly greater than `timestamp`:
        t = timestamp - self.offset
        k = math.floor((t - self.size) / self.slide) + 1
        deadline = self.offset + k * self.slide + self.size
        if deadline <= timestamp:  # guard against float rounding
            deadline += self.slide
        return deadline

    def assign_range(
        self, t_start: float, t_end: float, count: float
    ) -> List[Tuple[Pane, float]]:
        if count <= 0:
            return []
        span = t_end - t_start
        if span < 1e-9:
            # (Sub-nanosecond) point interval: delegate to the exact
            # per-event assignment rather than dividing by ~zero mass.
            return [(pane, count) for pane in self.assign(t_start)]
        # Collect every pane overlapping [t_start, t_end].
        first_start = (
            self.slide * math.floor((t_start - self.size - self.offset) / self.slide)
            + self.slide
            + self.offset
        )
        # first pane whose interval can include t_start:
        while first_start + self.size <= t_start:
            first_start += self.slide
        out: List[Tuple[Pane, float]] = []
        start = first_start
        while start <= t_end:
            pane = Pane(start, start + self.size)
            overlap = min(t_end, pane.end) - max(t_start, pane.start)
            # Events are uniform on [t_start, t_end]; an event belongs to
            # this pane iff it falls inside the overlap. (pane.end is
            # exclusive but measure-zero boundaries don't matter for
            # uniform mass.)
            fraction = max(0.0, overlap) / span
            if fraction > 0:
                out.append((pane, count * fraction))
            start += self.slide
        # `fraction` sums to size/slide (pane memberships) across panes.
        return out


class TumblingEventTimeWindows(SlidingEventTimeWindows):
    """Convenience alias: tumbling windows are sliding with slide == size."""

    def __init__(self, size: float, offset: float = 0.0):
        super().__init__(size=size, slide=size, offset=offset)


class CountWindows(WindowAssigner):
    """Count-based windows closing every ``size`` events.

    Count windows have no event-time deadline; they are included for API
    completeness (Sec. 2.1 defines both) and close when enough events
    accumulate. ``next_deadline`` is reported as infinity because watermark
    progress does not advance them.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"count window size must be positive: {size}")
        self.size = int(size)

    def assign(self, timestamp: float) -> List[Pane]:
        raise TypeError("count windows assign by arrival order, not time")

    def next_deadline(self, timestamp: float) -> float:
        return math.inf

    def assign_range(
        self, t_start: float, t_end: float, count: float
    ) -> List[Tuple[Pane, float]]:
        raise TypeError("count windows assign by arrival order, not time")
