"""Window assigners and deadline arithmetic.

Following Sec. 2.1 of the paper, a time-based window function is
characterized by a size ``s`` and a slide ``l``; deadlines are met every
``l`` time units, and a window's *deadline* is the event-time instant at
which it contains every event needed to produce its output (its end
boundary). Tumbling windows are sliding windows with ``l == s``.

Count-based windows close after ``s`` events; their deadline is the arrival
of the ``s``-th event rather than a point in event-time.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Pane:
    """One concrete window instance ``[start, end)`` in event-time."""

    start: float
    end: float

    @property
    def deadline(self) -> float:
        """Event-time at which this pane's input is complete."""
        return self.end


class WindowAssigner(abc.ABC):
    """Maps event-times (and event-time ranges) to window panes."""

    @abc.abstractmethod
    def assign(self, timestamp: float) -> List[Pane]:
        """Panes containing an event with the given event-time."""

    @abc.abstractmethod
    def next_deadline(self, timestamp: float) -> float:
        """The first pane deadline strictly greater than ``timestamp``."""

    @abc.abstractmethod
    def assign_range(
        self, t_start: float, t_end: float, count: float
    ) -> List[Tuple[Pane, float]]:
        """Distribute ``count`` events uniform on ``[t_start, t_end]`` to panes.

        Returns ``(pane, events_in_pane)`` pairs. The per-pane counts sum to
        ``count`` multiplied by the number of panes each event belongs to
        (``size / slide`` for sliding windows), matching the duplication a
        per-event sliding-window assigner performs.
        """

    def assign_range_raw(
        self, t_start: float, t_end: float, count: float
    ) -> List[Tuple[float, float, float]]:
        """:meth:`assign_range` as plain ``(start, end, count)`` tuples.

        The hot batched ingestion path calls this instead of
        :meth:`assign_range` to skip :class:`Pane` construction; the
        arithmetic is the same. Assigners may override with a direct
        implementation; the default delegates.
        """
        return [
            (pane.start, pane.end, c)
            for pane, c in self.assign_range(t_start, t_end, count)
        ]

    def final_event_pane(
        self, t_start: float, t_end: float
    ) -> Tuple[float, float] | None:
        """``(start, end)`` of the first-closing pane containing the batch's
        final event (the one with event-time ``t_end``).

        The lineage tracker follows a sampled batch's *last* event through
        window state: the event leaves the operator with the earliest pane
        that contains it, which for sliding windows is the pane with the
        smallest end among those covering ``t_end``. Point batches
        (``t_start == t_end``, e.g. pane-fire outputs) are assigned by the
        per-event rule. Returns ``None`` for assigners without event-time
        panes (count windows).
        """
        if t_end - t_start < 1e-9:
            panes = self.assign(t_end)
            if not panes:
                return None
            best = min(panes, key=lambda p: p.end)
            return (best.start, best.end)
        candidate: Tuple[float, float] | None = None
        for start, end, c in self.assign_range_raw(t_start, t_end, 1.0):
            if c > 0 and end >= t_end and (candidate is None or end < candidate[1]):
                candidate = (start, end)
        return candidate


class SlidingEventTimeWindows(WindowAssigner):
    """Sliding event-time windows of ``size`` every ``slide`` milliseconds.

    Pane starts are aligned to ``offset + k * slide`` (Flink's alignment,
    plus an optional per-query offset). The paper deploys each query at a
    randomized time within the first 20 s "to randomize the uniform
    distribution of the window deadlines" — setting ``offset`` to the
    deployment time reproduces that staggering.
    """

    def __init__(self, size: float, slide: float | None = None, offset: float = 0.0):
        if size <= 0:
            raise ValueError(f"window size must be positive: {size}")
        slide = size if slide is None else slide
        if slide <= 0:
            raise ValueError(f"window slide must be positive: {slide}")
        if slide > size:
            raise ValueError(
                f"slide {slide} larger than size {size} would drop events"
            )
        self.size = float(size)
        self.slide = float(slide)
        self.offset = float(offset) % self.slide

    @property
    def is_tumbling(self) -> bool:
        return self.size == self.slide

    # Pane starts sit on the grid `offset + k * slide`. Every boundary
    # below is derived from the integer grid index `k` with one multiply
    # and one add (the PeriodicCursor discipline) rather than repeated
    # `+= slide` accumulation, which rounds once per addition and can
    # drift by more than one slide over a long walk — enough to skip or
    # duplicate a pane at exact-boundary timestamps with non-zero offset.

    def _grid_start(self, k: float) -> float:
        return self.offset + k * self.slide

    def assign(self, timestamp: float) -> List[Pane]:
        t = timestamp - self.offset
        k = math.floor(t / self.slide)
        # Guard float rounding at pane boundaries: pane ends are exclusive.
        while self._grid_start(k) > timestamp:
            k -= 1
        while self._grid_start(k + 1) <= timestamp:
            k += 1
        panes = []
        start = self._grid_start(k)
        while start > timestamp - self.size and start + self.size > timestamp:
            panes.append(Pane(start, start + self.size))
            k -= 1
            start = self._grid_start(k)
        return panes

    def next_deadline(self, timestamp: float) -> float:
        # Deadlines (pane ends) sit at `offset + k*slide + size`. The
        # smallest such value strictly greater than `timestamp` — guarded
        # in BOTH directions with loops (a single `+= slide` bump cannot
        # recover when the floor-derived k is off by more than one grid
        # step, which happens at boundary timestamps with non-zero
        # offset once `(t - size) / slide` rounds across an integer).
        t = timestamp - self.offset
        k = math.floor((t - self.size) / self.slide) + 1
        while self._grid_start(k) + self.size <= timestamp:
            k += 1
        while self._grid_start(k - 1) + self.size > timestamp:
            k -= 1
        return self._grid_start(k) + self.size

    def assign_range(
        self, t_start: float, t_end: float, count: float
    ) -> List[Tuple[Pane, float]]:
        return [
            (Pane(start, end), c)
            for start, end, c in self.assign_range_raw(t_start, t_end, count)
        ]

    def assign_range_raw(
        self, t_start: float, t_end: float, count: float
    ) -> List[Tuple[float, float, float]]:
        if count <= 0:
            return []
        span = t_end - t_start
        if span < 1e-9:
            # (Sub-nanosecond) point interval: delegate to the exact
            # per-event assignment rather than dividing by ~zero mass.
            return [(pane.start, pane.end, count) for pane in self.assign(t_start)]
        # First pane (smallest grid index) whose interval can include
        # t_start — guarded in both directions so a boundary-exact
        # t_start with non-zero offset never loses its leading pane
        # (which silently dropped uniform mass below count*size/slide).
        size = self.size
        slide = self.slide
        offset = self.offset
        k = math.floor((t_start - size - offset) / slide) + 1
        while offset + k * slide + size <= t_start:
            k += 1
        while offset + (k - 1) * slide + size > t_start:
            k -= 1
        out: List[Tuple[float, float, float]] = []
        out_append = out.append
        start = offset + k * slide
        while start <= t_end:
            end = start + size
            # Inlined min/max (ties resolve to the first argument, exactly
            # as the builtins do): overlap = min(t_end, end) - max(t_start,
            # start), floored at zero before the division.
            overlap = (t_end if t_end <= end else end) - (
                t_start if t_start >= start else start
            )
            # Events are uniform on [t_start, t_end]; an event belongs to
            # this pane iff it falls inside the overlap. (pane.end is
            # exclusive but measure-zero boundaries don't matter for
            # uniform mass.)
            fraction = (overlap if overlap > 0.0 else 0.0) / span
            if fraction > 0:
                out_append((start, end, count * fraction))
            k += 1
            start = offset + k * slide
        # `fraction` sums to size/slide (pane memberships) across panes.
        return out


class TumblingEventTimeWindows(SlidingEventTimeWindows):
    """Convenience alias: tumbling windows are sliding with slide == size."""

    def __init__(self, size: float, offset: float = 0.0):
        super().__init__(size=size, slide=size, offset=offset)


class CountWindows(WindowAssigner):
    """Count-based windows closing every ``size`` events.

    Count windows have no event-time deadline; they are included for API
    completeness (Sec. 2.1 defines both) and close when enough events
    accumulate. ``next_deadline`` is reported as infinity because watermark
    progress does not advance them.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"count window size must be positive: {size}")
        self.size = int(size)

    def assign(self, timestamp: float) -> List[Pane]:
        raise TypeError("count windows assign by arrival order, not time")

    def next_deadline(self, timestamp: float) -> float:
        return math.inf

    def assign_range(
        self, t_start: float, t_end: float, count: float
    ) -> List[Tuple[Pane, float]]:
        raise TypeError("count windows assign by arrival order, not time")

    def final_event_pane(
        self, t_start: float, t_end: float
    ) -> Tuple[float, float] | None:
        # Count windows close by arrival order: there is no event-time pane
        # a lineage chain could deterministically wait on.
        return None
