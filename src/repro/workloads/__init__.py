"""Benchmark workload generators (YSB, LRB, NYT)."""

from repro.workloads import lrb, nyt, ysb  # noqa: F401  (register builders)
from repro.workloads.base import (
    WorkloadParams,
    build_queries,
    make_delay_model,
    register_workload,
    workload_names,
)

__all__ = [
    "WorkloadParams",
    "build_queries",
    "make_delay_model",
    "register_workload",
    "workload_names",
    "ysb",
    "lrb",
    "nyt",
]
