"""Workload construction helpers shared by YSB, LRB, and NYT.

Each workload module exposes ``build_query(...) -> Query`` plus metadata
about the benchmark pipeline; :func:`build_queries` instantiates ``n``
independent query instances with randomized deployment times (the paper
deploys each query at a random point in the first 20 s to stagger window
deadlines) and per-query delay-model streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.net.delays import DelayModel, UniformDelay, ZipfDelay
from repro.spe.query import Query

#: the paper's default delay spread (Zipf constant 0.99; uniform over a
#: comparable support). 500 ms keeps lateness allowances moderate relative
#: to the benchmark window sizes (1-5 s).
DEFAULT_DELAY_MAX_MS = 500.0


def make_delay_model(kind: str, seed: int, max_ms: float = DEFAULT_DELAY_MAX_MS) -> DelayModel:
    """Instantiate one of the paper's delay distributions by name."""
    kind = kind.lower()
    if kind == "uniform":
        return UniformDelay(0.0, max_ms, seed=seed)
    if kind == "zipf":
        return ZipfDelay(a=0.99, max_ms=max_ms, seed=seed)
    raise ValueError(f"unknown delay distribution: {kind!r}")


@dataclass
class WorkloadParams:
    """Knobs common to all benchmark builders.

    ``rate_scale`` multiplies each benchmark's native per-query event rate
    (used by the throughput sweeps of Figs. 1 and 9a/9b); ``delay`` picks
    the network delay distribution; ``deploy_window_ms`` bounds the random
    deployment staggering; ``burst_factor``/``burst_duty`` shape the load
    spikes each source carries (factor 1.0 = perfectly steady sources).
    """

    delay: str = "uniform"
    delay_max_ms: float = DEFAULT_DELAY_MAX_MS
    rate_scale: float = 1.0
    deploy_window_ms: float = 20_000.0
    epoch_history: int = 400
    seed: int = 0
    burst_factor: float = 3.8
    burst_duty: float = 0.25


QueryBuilder = Callable[..., Query]

_REGISTRY: Dict[str, QueryBuilder] = {}


def register_workload(name: str, builder: QueryBuilder) -> None:
    """Register a benchmark builder under ``name`` (ysb/lrb/nyt)."""
    _REGISTRY[name.lower()] = builder


def workload_names() -> List[str]:
    return sorted(_REGISTRY)


def build_queries(
    workload: str,
    n_queries: int,
    params: Optional[WorkloadParams] = None,
) -> List[Query]:
    """Instantiate ``n_queries`` independent instances of a benchmark.

    Every query gets its own delay-model random stream and a deployment
    time drawn uniformly from the staggering window, so window deadlines
    across queries are uniformly spread (Sec. 6.2.1).
    """
    if n_queries < 1:
        raise ValueError(f"need at least one query: {n_queries}")
    params = params or WorkloadParams()
    builder = _REGISTRY.get(workload.lower())
    if builder is None:
        raise ValueError(
            f"unknown workload {workload!r}; available: {workload_names()}"
        )
    rng = np.random.default_rng(params.seed)
    queries = []
    for i in range(n_queries):
        deployed_at = float(rng.uniform(0.0, params.deploy_window_ms))
        queries.append(
            builder(
                query_id=f"{workload.lower()}-{i}",
                params=params,
                deployed_at=deployed_at,
                seed=params.seed * 100_003 + i,
            )
        )
    return queries
