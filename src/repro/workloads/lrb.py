"""Linear Road Benchmark (LRB) pipeline.

LRB [Arasu et al., VLDB 2004] simulates a highway toll system. The paper
uses the streaming variation with "a complex pipeline that includes a mix
of tumbling windows, sliding windows, and join operators": a join (group
by) over 3 sub-streams of 6.5K events produced every two seconds per
sliding window per query, a sliding window of size 5 s with slide 3 s, and
— to stress the pipeline — the deadline of the last window operator set to
1/3 of the earlier window deadlines (Sec. 6.2.1).

Pipeline::

    3 x [source (3.25K ev/s) -> map (parse position report)]
        -> windowed join, sliding 5 s / 3 s  (segment group-by)
        -> map (toll / accident logic)
        -> tumbling window 1 s               (1/3 of the 3 s slide)
        -> sink

Each sub-stream carries 6.5K events per 2 s = 3.25K events/s. The final
1-second tumbling window implements the accident-detection/toll output,
firing three times per upstream join slide — the intensified pressure at
SWM ingestion that the paper engineers.
"""

from __future__ import annotations

from typing import Optional

from repro.spe.operators import (
    MapOperator,
    SinkOperator,
    WindowedAggregate,
    WindowedJoin,
)
from repro.spe.query import Query, SourceBinding, SourceSpec
from repro.spe.windows import SlidingEventTimeWindows, TumblingEventTimeWindows
from repro.workloads.base import WorkloadParams, make_delay_model, register_workload

#: sub-streams feeding the join (position reports from three expressways)
N_SUBSTREAMS = 3
#: per-sub-stream rate: 6.5K events per 2 s sliding-window period
RATE_EPS = 6_500.0 / 2.0
#: upstream sliding window: size 5 s, slide 3 s
JOIN_WINDOW_MS = 5_000.0
JOIN_SLIDE_MS = 3_000.0
#: final window deadline = 1/3 of the earlier window deadline spacing
TOLL_WINDOW_MS = JOIN_SLIDE_MS / 3.0
#: watermark injection period
WATERMARK_PERIOD_MS = 1_000.0
#: position report size (bytes)
EVENT_BYTES = 120
#: join output events per buffered input event (segment group-by density)
JOIN_SELECTIVITY = 0.05
#: toll notifications per final pane (output cardinality: active segments)
N_SEGMENTS = 80


def build_query(
    query_id: str,
    params: Optional[WorkloadParams] = None,
    deployed_at: float = 0.0,
    seed: int = 0,
) -> Query:
    """Construct one LRB query instance (accident detection + tolls)."""
    params = params or WorkloadParams()
    join = WindowedJoin(
        f"{query_id}.join",
        SlidingEventTimeWindows(JOIN_WINDOW_MS, JOIN_SLIDE_MS, offset=deployed_at),
        cost_per_event_ms=0.021,
        n_inputs=N_SUBSTREAMS,
        join_selectivity=JOIN_SELECTIVITY,
        state_bytes_per_event=96,
        out_bytes_per_event=96,
    )
    toll_logic = MapOperator(
        f"{query_id}.toll-logic", cost_per_event_ms=0.015, out_bytes_per_event=64
    )
    toll_window = WindowedAggregate(
        f"{query_id}.toll-window",
        TumblingEventTimeWindows(TOLL_WINDOW_MS, offset=deployed_at),
        cost_per_event_ms=0.015,
        output_events_per_pane=N_SEGMENTS,
        state_bytes_per_event=64,
        out_bytes_per_event=48,
        incremental=True,
        key_by="segment_id",
    )
    sink = SinkOperator(f"{query_id}.sink", cost_per_event_ms=0.002)

    bindings = []
    parsers = []
    for s in range(N_SUBSTREAMS):
        delay_model = make_delay_model(
            params.delay, seed * N_SUBSTREAMS + s, params.delay_max_ms
        )
        spec = SourceSpec(
            name=f"{query_id}.xway{s}",
            rate_eps=RATE_EPS * params.rate_scale,
            watermark_period_ms=WATERMARK_PERIOD_MS,
            lateness_ms=delay_model.bound,
            delay_model=delay_model,
            bytes_per_event=EVENT_BYTES,
            burst_factor=params.burst_factor,
            burst_duty=params.burst_duty,
        )
        parser = MapOperator(
            f"{query_id}.parse{s}", cost_per_event_ms=0.015,
            out_bytes_per_event=EVENT_BYTES,
        )
        parser.connect(join, input_index=s)
        parsers.append(parser)
        bindings.append(SourceBinding(spec, parser, source_id=s, seed=seed * 7 + s + 17))

    join.connect(toll_logic)
    toll_logic.connect(toll_window)
    toll_window.connect(sink)
    operators = parsers + [join, toll_logic, toll_window, sink]
    return Query(
        query_id,
        bindings,
        operators,
        sink,
        epoch_history=params.epoch_history,
        deployed_at=deployed_at,
    )


register_workload("lrb", build_query)
