"""New York City Taxi (NYT) benchmark pipeline.

Based on the DEBS 2015 Grand Challenge dataset of NYC taxi trips. The
paper describes "a complex pipeline that includes a sequence of many
stateless operators and a sliding aggregation window of size two seconds
and a slide of one second", generating "aggregation of 7K events produced
every second per sliding window per query" (Sec. 6.2.1).

Pipeline::

    source (7K ev/s) -> map (parse trip record)
                     -> filter (geo-fence to NYC grid, ~0.9 pass)
                     -> map (cell mapping)
                     -> map (fare/route feature extraction)
                     -> filter (valid fares, ~0.95 pass)
                     -> sliding window 2 s / 1 s (per-route aggregation)
                     -> sink

The dataset's payload richness (passengers, distances, fares) is modelled
by a larger per-event byte size; the stateless chain reproduces the
pipeline length that makes NYT costlier per event than YSB.
"""

from __future__ import annotations

from typing import Optional

from repro.spe.operators import (
    FilterOperator,
    MapOperator,
    SinkOperator,
    WindowedAggregate,
)
from repro.spe.query import Query, SourceBinding, SourceSpec, chain
from repro.spe.windows import SlidingEventTimeWindows
from repro.workloads.base import WorkloadParams, make_delay_model, register_workload

#: per-query trip event rate
RATE_EPS = 7_000.0
#: sliding aggregation window: size 2 s, slide 1 s
WINDOW_MS = 2_000.0
SLIDE_MS = 1_000.0
#: watermark injection period
WATERMARK_PERIOD_MS = 1_000.0
#: serialized trip record size (bytes)
EVENT_BYTES = 300
#: distinct route cells reported per pane
N_ROUTES = 120


def build_query(
    query_id: str,
    params: Optional[WorkloadParams] = None,
    deployed_at: float = 0.0,
    seed: int = 0,
) -> Query:
    """Construct one NYT aggregation query instance."""
    params = params or WorkloadParams()
    delay_model = make_delay_model(params.delay, seed, params.delay_max_ms)
    spec = SourceSpec(
        name=f"{query_id}.trips",
        rate_eps=RATE_EPS * params.rate_scale,
        watermark_period_ms=WATERMARK_PERIOD_MS,
        lateness_ms=delay_model.bound,
        delay_model=delay_model,
        bytes_per_event=EVENT_BYTES,
        burst_factor=params.burst_factor,
        burst_duty=params.burst_duty,
    )
    parse = MapOperator(f"{query_id}.parse", 0.013, out_bytes_per_event=EVENT_BYTES)
    geo_filter = FilterOperator(
        f"{query_id}.geo-filter", 0.007, selectivity=0.90,
        out_bytes_per_event=EVENT_BYTES,
    )
    cell_map = MapOperator(f"{query_id}.cell-map", 0.008, out_bytes_per_event=160)
    features = MapOperator(f"{query_id}.features", 0.008, out_bytes_per_event=160)
    fare_filter = FilterOperator(
        f"{query_id}.fare-filter", 0.007, selectivity=0.95,
        out_bytes_per_event=160,
    )
    window = WindowedAggregate(
        f"{query_id}.window",
        SlidingEventTimeWindows(WINDOW_MS, SLIDE_MS, offset=deployed_at),
        cost_per_event_ms=0.013,
        output_events_per_pane=N_ROUTES,
        state_bytes_per_event=96,
        out_bytes_per_event=64,
        incremental=True,
        key_by="route_id",
    )
    sink = SinkOperator(f"{query_id}.sink", cost_per_event_ms=0.002)
    operators = chain(parse, geo_filter, cell_map, features, fare_filter, window, sink)
    binding = SourceBinding(spec, parse, seed=seed + 17)
    return Query(
        query_id,
        [binding],
        operators,
        sink,
        epoch_history=params.epoch_history,
        deployed_at=deployed_at,
    )


register_workload("nyt", build_query)
