"""Yahoo! Streaming Benchmark (YSB) pipeline.

YSB [Chintapalli et al., IPDPSW 2016] models an advertising analytics
pipeline: ad view events are filtered to the relevant event type, projected
and joined against a static campaign table, then counted per campaign in a
tumbling event-time window. The paper characterizes it as "a simple
pipeline with aggregation of 10K events produced every three seconds per
window per query" and drives each query at 10,000 events/s (Sec. 6.2.1).

Pipeline::

    source (10K ev/s) -> filter (view events, ~1/3 pass)
                      -> map (project + static campaign join)
                      -> tumbling window 3 s (count per campaign)
                      -> sink

The static campaign join is a constant-time hash lookup, so it is folded
into the map operator's per-event cost — there is no second input stream.

Cost calibration: the effective end-to-end CPU cost is ~0.036 ms per
source event: ~66 concurrent queries of 10K events/s saturate a 24-core
node outright, while ~46 queries saturate it once memory pressure taxes
the CPU — matching where the paper's latency and throughput curves bend
(Figs. 6a, 6d).
"""

from __future__ import annotations

from typing import Optional

from repro.spe.operators import (
    FilterOperator,
    MapOperator,
    SinkOperator,
    WindowedAggregate,
)
from repro.spe.query import Query, SourceBinding, SourceSpec, chain
from repro.spe.windows import TumblingEventTimeWindows
from repro.workloads.base import WorkloadParams, make_delay_model, register_workload

#: native per-query input rate (events per second)
RATE_EPS = 10_000.0
#: tumbling window size (ms)
WINDOW_MS = 3_000.0
#: watermark injection period (ms)
WATERMARK_PERIOD_MS = 1_000.0
#: distinct ad campaigns (window output cardinality)
N_CAMPAIGNS = 100
#: serialized ad event size (bytes)
EVENT_BYTES = 200


def build_query(
    query_id: str,
    params: Optional[WorkloadParams] = None,
    deployed_at: float = 0.0,
    seed: int = 0,
) -> Query:
    """Construct one YSB query instance."""
    params = params or WorkloadParams()
    delay_model = make_delay_model(params.delay, seed, params.delay_max_ms)
    spec = SourceSpec(
        name=f"{query_id}.ads",
        rate_eps=RATE_EPS * params.rate_scale,
        watermark_period_ms=WATERMARK_PERIOD_MS,
        lateness_ms=delay_model.bound,
        delay_model=delay_model,
        bytes_per_event=EVENT_BYTES,
        burst_factor=params.burst_factor,
        burst_duty=params.burst_duty,
    )
    ad_filter = FilterOperator(
        f"{query_id}.filter", cost_per_event_ms=0.021, selectivity=1.0 / 3.0,
        out_bytes_per_event=EVENT_BYTES,
    )
    project_join = MapOperator(
        f"{query_id}.project-join", cost_per_event_ms=0.020,
        out_bytes_per_event=64,
    )
    window = WindowedAggregate(
        f"{query_id}.window",
        TumblingEventTimeWindows(WINDOW_MS, offset=deployed_at),
        cost_per_event_ms=0.026,
        output_events_per_pane=N_CAMPAIGNS,
        state_bytes_per_event=64,
        out_bytes_per_event=48,
        incremental=True,
        key_by="campaign_id",
    )
    sink = SinkOperator(f"{query_id}.sink", cost_per_event_ms=0.002)
    operators = chain(ad_filter, project_join, window, sink)
    binding = SourceBinding(spec, ad_filter, seed=seed + 17)
    return Query(
        query_id,
        [binding],
        operators,
        sink,
        epoch_history=params.epoch_history,
        deployed_at=deployed_at,
    )


register_workload("ysb", build_query)
