"""Shared fixtures: small deterministic pipelines for unit/integration tests."""

from __future__ import annotations

import pytest

from tests.helpers import make_join_query, make_simple_query


@pytest.fixture(autouse=True)
def _bench_cache_isolation(tmp_path, monkeypatch):
    """Keep the experiment cache test-local.

    Each test starts with an empty in-memory result cache, no persistent
    cache configured, and zeroed hit/simulation counters, and leaks none
    of them to the next test — the suite's memory footprint stays bounded
    and no test can observe another's cached results. The cache-dir env
    var is pointed into tmp so code that enables the persistent cache at
    its default location (e.g. the CLI commands) never writes into the
    working tree.
    """
    from repro.bench.cache import CACHE_DIR_ENV
    from repro.bench.runner import clear_cache, configure_cache

    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "bench_cache"))
    configure_cache(enabled=False)
    clear_cache()
    yield
    configure_cache(enabled=False)
    clear_cache()


@pytest.fixture
def simple_query():
    return make_simple_query()


@pytest.fixture
def join_query():
    return make_join_query()
