"""Shared fixtures: small deterministic pipelines for unit/integration tests."""

from __future__ import annotations

import pytest

from tests.helpers import make_join_query, make_simple_query


@pytest.fixture
def simple_query():
    return make_simple_query()


@pytest.fixture
def join_query():
    return make_join_query()
