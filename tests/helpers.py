"""Builders for small deterministic test pipelines."""

from __future__ import annotations

from repro.net.delays import ConstantDelay
from repro.spe.operators import (
    FilterOperator,
    MapOperator,
    SinkOperator,
    WindowedAggregate,
    WindowedJoin,
)
from repro.spe.query import Query, SourceBinding, SourceSpec, chain
from repro.spe.windows import SlidingEventTimeWindows, TumblingEventTimeWindows


def make_simple_query(
    query_id: str = "q0",
    *,
    rate_eps: float = 1000.0,
    window_ms: float = 1000.0,
    watermark_period_ms: float = 500.0,
    delay_ms: float = 0.0,
    deployed_at: float = 0.0,
    cost_ms: float = 0.01,
    selectivity: float = 0.5,
    outputs_per_pane: float = 10.0,
    burst_factor: float = 1.0,
    seed: int = 0,
) -> Query:
    """source -> filter -> tumbling window -> sink, fully deterministic."""
    delay_model = ConstantDelay(delay_ms)
    spec = SourceSpec(
        name=f"{query_id}.src",
        rate_eps=rate_eps,
        watermark_period_ms=watermark_period_ms,
        lateness_ms=delay_model.bound,
        delay_model=delay_model,
        burst_factor=burst_factor,
    )
    filt = FilterOperator(f"{query_id}.filter", cost_ms, selectivity=selectivity)
    window = WindowedAggregate(
        f"{query_id}.window",
        TumblingEventTimeWindows(window_ms, offset=deployed_at),
        cost_per_event_ms=cost_ms,
        output_events_per_pane=outputs_per_pane,
        key_by="key",
    )
    sink = SinkOperator(f"{query_id}.sink")
    operators = chain(filt, window, sink)
    binding = SourceBinding(spec, filt, seed=seed)
    return Query(query_id, [binding], operators, sink, deployed_at=deployed_at)


def make_join_query(
    query_id: str = "jq0",
    *,
    n_inputs: int = 2,
    rate_eps: float = 500.0,
    window_ms: float = 1000.0,
    slide_ms: float | None = None,
    watermark_period_ms: float = 500.0,
    delays_ms: tuple = (0.0, 0.0),
    deployed_at: float = 0.0,
) -> Query:
    """n parsers -> windowed join -> sink."""
    join = WindowedJoin(
        f"{query_id}.join",
        SlidingEventTimeWindows(window_ms, slide_ms, offset=deployed_at),
        cost_per_event_ms=0.01,
        n_inputs=n_inputs,
        join_selectivity=0.1,
    )
    sink = SinkOperator(f"{query_id}.sink")
    join.connect(sink)
    parsers = []
    bindings = []
    for i in range(n_inputs):
        delay_model = ConstantDelay(delays_ms[i % len(delays_ms)])
        spec = SourceSpec(
            name=f"{query_id}.src{i}",
            rate_eps=rate_eps,
            watermark_period_ms=watermark_period_ms,
            lateness_ms=delay_model.bound,
            delay_model=delay_model,
        )
        parser = MapOperator(f"{query_id}.parse{i}", 0.005)
        parser.connect(join, input_index=i)
        parsers.append(parser)
        bindings.append(SourceBinding(spec, parser, source_id=i))
    return Query(
        query_id, bindings, parsers + [join, sink], sink, deployed_at=deployed_at
    )


