"""Tests for the declarative SLO/alert rules (repro.obs.alerts): the
rule grammar, the evaluation engine, and in-run alerting end to end."""

import pytest

from repro.core.klink import KlinkScheduler
from repro.faults import FaultPlan
from repro.faults.plan import OperatorSlowdown
from repro.obs import (
    AlertEngine,
    AlertRuleError,
    DEFAULT_RULE_TEXTS,
    MetricsRegistry,
    TelemetryConfig,
    TelemetrySampler,
    dumps_line,
    parse_rule,
    parse_rules,
)
from repro.obs.schema import validate_alert
from repro.spe.engine import Engine
from tests.helpers import make_simple_query


class TestRuleGrammar:
    def test_threshold_with_sustain(self):
        rule = parse_rule("latency_recent_p99_ms > 1000 for 5s")
        assert rule.kind == "threshold"
        assert rule.metric == "latency_recent_p99_ms"
        assert rule.op == ">" and rule.threshold == 1000.0
        assert rule.for_ms == 5000.0

    def test_threshold_without_sustain_fires_immediately(self):
        rule = parse_rule("queue_depth >= 10")
        assert rule.for_ms == 0.0

    def test_labels_restrict_the_match(self):
        rule = parse_rule("queue_depth{query=ysb-0} > 5 for 200ms")
        assert rule.labels == (("query", "ysb-0"),)
        assert rule.for_ms == 200.0

    def test_growing_rule(self):
        rule = parse_rule("queue_depth growing for 10 samples")
        assert rule.kind == "growing" and rule.samples == 10

    def test_mean_rule(self):
        rule = parse_rule("mean(memory_mode_active) > 0.2 over 10s")
        assert rule.kind == "mean"
        assert rule.threshold == 0.2 and rule.for_ms == 10_000.0

    def test_minutes_unit(self):
        assert parse_rule("m > 1 for 2m").for_ms == 120_000.0

    def test_explicit_name_prefix(self):
        rule = parse_rule("slo: latency_recent_p99_ms > 1000")
        assert rule.name == "slo"

    def test_default_name_is_canonical_text(self):
        rule = parse_rule("queue_depth > 5 for 1s")
        assert rule.name == "queue_depth > 5 for 1000ms"

    @pytest.mark.parametrize(
        "text",
        [
            "nonsense",
            "queue_depth !! 5",
            "queue_depth > 5 for 5 parsecs",
            "queue_depth growing for 1 sample",  # needs >= 2
            "mean(x) > 1",  # mean needs an 'over' window
            "queue_depth{query} > 1",  # label without value
        ],
    )
    def test_rejects_bad_rules(self, text):
        with pytest.raises(AlertRuleError):
            parse_rule(text)

    def test_duplicate_names_rejected(self):
        with pytest.raises(AlertRuleError, match="duplicate"):
            parse_rules(["a: x > 1", "a: y > 2"])

    def test_default_rule_texts_parse(self):
        rules = parse_rules(DEFAULT_RULE_TEXTS)
        assert [r.name for r in rules] == [
            "slo-latency", "queue-growth", "mm-occupancy",
        ]


def feed(engine_rules, samples, *, period=100.0):
    """Drive an AlertEngine with a scripted single-gauge series."""
    registry = MetricsRegistry(period_ms=period)
    engine = AlertEngine(parse_rules(engine_rules))
    now = 0.0
    for value in samples:
        now += period
        registry.gauge("m").set(value)
        registry.sample(now)
        engine.evaluate(now, registry)
    return engine, now


class TestAlertEngine:
    def test_threshold_fires_only_after_sustain(self):
        engine, _ = feed(["r: m > 10 for 250ms"], [20.0, 20.0])
        assert len(engine) == 0  # breached for 200ms only
        engine, _ = feed(["r: m > 10 for 250ms"], [20.0, 20.0, 20.0, 20.0])
        assert len(engine) == 1
        event = engine.events[0]
        assert event.start == 100.0  # span opens at first breach sample
        assert event.end is None  # still active

    def test_threshold_resolves_and_refires(self):
        engine, _ = feed(["r: m > 10"], [20.0, 5.0, 30.0, 5.0])
        assert len(engine) == 2
        first, second = engine.events
        assert (first.start, first.end) == (100.0, 200.0)
        assert (second.start, second.end) == (300.0, 400.0)
        assert second.value == 30.0

    def test_dip_resets_the_sustain_clock(self):
        engine, _ = feed(
            ["r: m > 10 for 250ms"], [20.0, 20.0, 5.0, 20.0, 20.0]
        )
        assert len(engine) == 0

    def test_growing_needs_strictly_increasing_run(self):
        engine, _ = feed(["r: m growing for 3 samples"], [1.0, 2.0, 3.0, 4.0])
        assert len(engine) == 1
        engine, _ = feed(["r: m growing for 3 samples"], [1.0, 2.0, 2.0, 3.0])
        assert len(engine) == 0

    def test_mean_rule_uses_trailing_window(self):
        # 200ms window at 100ms cadence = the trailing three samples.
        engine, _ = feed(["r: mean(m) > 10 over 200ms"], [0.0, 0.0, 30.0, 30.0])
        assert len(engine) == 1
        engine, _ = feed(["r: mean(m) > 10 over 200ms"], [0.0, 12.0, 5.0])
        assert len(engine) == 0

    def test_lower_bound_comparator(self):
        engine, _ = feed(["r: m < 5"], [10.0, 1.0, 10.0])
        assert len(engine) == 1
        assert engine.events[0].value == 1.0

    def test_finalize_closes_open_events(self):
        engine, now = feed(["r: m > 10"], [20.0, 20.0])
        assert engine.events[0].end is None
        engine.finalize(now)
        assert engine.events[0].end == now

    def test_counts_and_rows_sorted(self):
        engine, now = feed(
            ["b: m > 10", "a: m > 15"], [20.0, 5.0, 20.0]
        )
        engine.finalize(now)
        assert list(engine.counts()) == ["a", "b"]
        rows = engine.to_rows()
        assert rows == sorted(
            rows, key=lambda r: (r["start"], r["rule"], r["series"])
        )
        for row in rows:
            validate_alert(row)
            assert list(row) == [
                "rule", "series", "kind", "start", "end", "value",
            ]

    def test_unlabelled_rule_matches_every_series(self):
        registry = MetricsRegistry()
        engine = AlertEngine(parse_rules(["r: q > 10"]))
        registry.gauge("q", {"query": "a"}).set(20.0)
        registry.gauge("q", {"query": "b"}).set(20.0)
        registry.sample(100.0)
        engine.evaluate(100.0, registry)
        assert {e.series for e in engine.events} == {
            "q{query=a}", "q{query=b}",
        }


def run_with_fault(rules, *, seed=1, duration=25_000.0):
    """A 10x operator slowdown mid-run: queues pile up while the fault
    holds, and the deferred windows deliver SLO-busting latencies once
    it lifts (the scenario examples/telemetry_alerts.py demonstrates)."""
    from repro.spe.memory import GIB, MemoryConfig
    from repro.workloads import WorkloadParams, build_queries

    params = WorkloadParams(delay="uniform", rate_scale=1.0, seed=seed)
    queries = build_queries("ysb", 4, params)
    sampler = TelemetrySampler(TelemetryConfig(), rules=parse_rules(rules))
    faults = FaultPlan(
        [OperatorSlowdown(start_ms=3_000.0, end_ms=12_000.0, factor=10.0)]
    )
    engine = Engine(queries, KlinkScheduler(), cores=8, cycle_ms=120.0,
                    memory=MemoryConfig(capacity_bytes=1.0 * GIB),
                    seed=seed, faults=faults, telemetry=sampler)
    metrics = engine.run(duration)
    return sampler, metrics


class TestInRunAlerting:
    RULES = (
        "slo-latency: latency_recent_p99_ms > 1000 for 1s",
        "queue-growth: queue_depth growing for 5 samples",
    )

    def test_fault_episode_fires_alerts_and_misses(self):
        sampler, metrics = run_with_fault(self.RULES)
        assert metrics.alerts_fired > 0
        assert metrics.deadline_misses > 0
        assert metrics.alert_counts == sampler.alerts.counts()
        assert sum(metrics.alert_counts.values()) == metrics.alerts_fired
        # Every fired event is a closed, well-formed span.
        for row in sampler.alert_rows():
            validate_alert(row)
            assert row["end"] is not None and row["end"] >= row["start"]

    def test_alert_rows_deterministic_across_reruns(self):
        def rows(seed):
            sampler, _ = run_with_fault(self.RULES, seed=seed)
            return "\n".join(dumps_line(r) for r in sampler.alert_rows())

        first = rows(3)
        assert first and first == rows(3)

    def test_healthy_run_fires_nothing(self):
        queries = [make_simple_query("q0", rate_eps=500.0)]
        sampler = TelemetrySampler(
            TelemetryConfig(), rules=parse_rules(self.RULES)
        )
        engine = Engine(queries, KlinkScheduler(), cores=4, cycle_ms=100.0,
                        seed=1, telemetry=sampler)
        metrics = engine.run(6_000.0)
        assert metrics.alerts_fired == 0
        assert sampler.alert_rows() == []
