"""Determinism linter: one positive + one suppressed + one clean case per rule."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis.lint import (
    DEFAULT_FILE_ALLOWLIST,
    RULES,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    main,
    run_lint,
)


def codes(source: str, **kwargs) -> list:
    return lint_source(source, **kwargs).codes()


# -- KL000: syntax errors ----------------------------------------------------


class TestKL000:
    def test_syntax_error_is_reported_not_raised(self):
        report = lint_source("def broken(:\n")
        assert report.codes() == ["KL000"]
        assert not report.ok

    def test_location_points_at_the_error(self):
        (diag,) = lint_source("x = (\n").diagnostics
        assert diag.file == "<string>"
        assert diag.line >= 1


# -- KL001: wall clock -------------------------------------------------------


class TestKL001:
    def test_time_time(self):
        assert codes("import time\nt = time.time()\n") == ["KL001"]

    def test_time_ns(self):
        assert codes("import time\nt = time.time_ns()\n") == ["KL001"]

    def test_datetime_now(self):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert codes(src) == ["KL001"]

    def test_suppressed_by_pragma(self):
        src = "import time\nt = time.time()  # klink: allow[KL001]\n"
        assert codes(src) == []

    def test_file_allowlist_suppresses_whole_rule(self):
        src = "import time\nt = time.time()\n"
        assert codes(src, allowed=frozenset({"KL001"})) == []

    def test_virtual_clock_is_clean(self):
        src = "def step(clock):\n    return clock.now\n"
        assert codes(src) == []

    def test_time_sleep_is_clean(self):
        # Only *reading* the wall clock is flagged.
        assert codes("import time\ntime.sleep(0)\n") == []


# -- KL006: monotonic / interval timers --------------------------------------


class TestKL006:
    def test_monotonic(self):
        assert codes("import time\nt = time.monotonic()\n") == ["KL006"]

    def test_perf_counter_through_from_import_alias(self):
        src = "from time import perf_counter as pc\nt = pc()\n"
        assert codes(src) == ["KL006"]

    def test_process_time_ns(self):
        assert codes("import time\nt = time.process_time_ns()\n") == ["KL006"]

    def test_suppressed_by_pragma(self):
        src = "import time\nt = time.monotonic()  # klink: allow[KL006]\n"
        assert codes(src) == []

    def test_file_allowlist_suppresses_whole_rule(self):
        src = "import time\nt = time.perf_counter()\n"
        assert codes(src, allowed=frozenset({"KL006"})) == []

    def test_absolute_clock_still_kl001(self):
        # The split is disjoint: time.time stays KL001, never KL006.
        assert codes("import time\nt = time.time()\n") == ["KL001"]


# -- KL002: unseeded randomness ----------------------------------------------


class TestKL002:
    def test_random_module(self):
        assert codes("import random\nx = random.random()\n") == ["KL002"]

    def test_random_shuffle(self):
        assert codes("import random\nrandom.shuffle(xs)\n") == ["KL002"]

    def test_seeded_random_instance_is_clean(self):
        assert codes("import random\nrng = random.Random(42)\n") == []

    def test_numpy_module_level_sampling(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert codes(src) == ["KL002"]

    def test_seedless_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(src) == ["KL002"]

    def test_seeded_default_rng_is_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert codes(src) == []

    def test_suppressed_by_pragma(self):
        src = "import random\nx = random.random()  # klink: allow[KL002]\n"
        assert codes(src) == []

    def test_generator_method_calls_are_clean(self):
        src = "def draw(rng):\n    return rng.normal(0.0, 1.0)\n"
        assert codes(src) == []


# -- KL003: unordered set iteration ------------------------------------------


class TestKL003:
    def test_for_over_set_literal(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["KL003"]

    def test_for_over_set_call(self):
        assert codes("for x in set(items):\n    pass\n") == ["KL003"]

    def test_list_of_set(self):
        assert codes("xs = list({1, 2})\n") == ["KL003"]

    def test_comprehension_over_set_union(self):
        src = "ys = [f(x) for x in a.union(b)]\n"
        assert codes(src) == ["KL003"]

    def test_sorted_set_is_clean(self):
        assert codes("for x in sorted(set(items)):\n    pass\n") == []

    def test_set_membership_is_clean(self):
        assert codes("if x in {1, 2}:\n    pass\n") == []

    def test_empty_set_call_is_clean(self):
        assert codes("seen = set()\n") == []

    def test_suppressed_by_pragma(self):
        src = "for x in {1, 2}:  # klink: allow[KL003]\n    pass\n"
        assert codes(src) == []


# -- KL004: id()-based ordering ----------------------------------------------


class TestKL004:
    def test_sorted_key_id(self):
        assert codes("ys = sorted(ops, key=id)\n") == ["KL004"]

    def test_list_sort_key_id(self):
        assert codes("ops.sort(key=lambda o: id(o))\n") == ["KL004"]

    def test_id_comparison(self):
        assert codes("flag = id(a) < id(b)\n") == ["KL004"]

    def test_dict_keyed_by_id_is_clean(self):
        # Indexing by id() and ordering the *values* is legitimate.
        assert codes("ok = pos[id(a)] < pos[id(b)]\n") == []

    def test_id_equality_is_clean(self):
        assert codes("same = id(a) == id(b)\n") == []

    def test_sorted_by_name_is_clean(self):
        assert codes("ys = sorted(ops, key=lambda o: o.name)\n") == []

    def test_suppressed_by_pragma(self):
        src = "ys = sorted(ops, key=id)  # klink: allow[KL004]\n"
        assert codes(src) == []


# -- KL005: float accumulation into watermark/slack state ---------------------


class TestKL005:
    def test_watermark_attribute_accumulation(self):
        src = "class S:\n    def step(self, p):\n        self.next_watermark_time += p\n"
        assert codes(src) == ["KL005"]

    def test_slack_accumulation(self):
        assert codes("slack += pr * x\n") == ["KL005"]

    def test_integer_counter_is_clean(self):
        # Integer stepping cannot drift; only float accumulation is flagged.
        assert codes("watermark_seq += 1\n") == []

    def test_unrelated_name_is_clean(self):
        assert codes("total += pr * x\n") == []

    def test_suppressed_by_pragma(self):
        src = "slack += pr * x  # klink: allow[KL005] expectation\n"
        assert codes(src) == []

    def test_wildcard_pragma(self):
        src = "slack += pr * x  # klink: allow[*]\n"
        assert codes(src) == []


# -- KL007: per-element delay draws in loops ---------------------------------


class TestKL007:
    def test_sample_in_for_loop(self):
        src = "for e in events:\n    d = model.sample()\n"
        assert codes(src) == ["KL007"]

    def test_sample_in_while_loop(self):
        src = "while g < horizon:\n    d = model.sample()\n"
        assert codes(src) == ["KL007"]

    def test_bound_method_alias_in_loop(self):
        src = "sample = spec.delay_model.sample\nfor e in events:\n    d = sample()\n"
        assert codes(src) == ["KL007"]

    def test_sample_outside_loop_is_clean(self):
        assert codes("d = model.sample()\n") == []

    def test_sample_batch_in_loop_is_clean(self):
        src = "for chunk in chunks:\n    ds = model.sample_batch(len(chunk))\n"
        assert codes(src) == []

    def test_suppressed_by_pragma(self):
        src = (
            "for e in events:\n"
            "    d = model.sample()  # klink: allow[KL007] scalar path\n"
        )
        assert codes(src) == []

    def test_scoped_to_spe_tree(self, tmp_path):
        # The rule only applies under repro/spe/; elsewhere (tests, tools,
        # net/) per-element draws are legitimate.
        src = "for e in events:\n    d = model.sample()\n"
        spe_dir = tmp_path / "spe"
        spe_dir.mkdir()
        inside = spe_dir / "hot.py"
        inside.write_text(src)
        outside = tmp_path / "tool.py"
        outside.write_text(src)
        assert lint_file(inside).codes() == ["KL007"]
        assert lint_file(outside).codes() == []


# -- file/tree drivers -------------------------------------------------------


class TestDrivers:
    def test_iter_python_files_sorted_and_deduplicated(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("y = 2\n")
        files = iter_python_files([tmp_path, tmp_path / "a.py"])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_lint_paths_merges_reports(self, tmp_path):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "good.py").write_text("x = 1\n")
        report = lint_paths([tmp_path])
        assert report.codes() == ["KL001"]

    def test_default_allowlist_covers_tracing(self):
        assert "KL001" in DEFAULT_FILE_ALLOWLIST["spe/tracing.py"]
        assert "KL006" in DEFAULT_FILE_ALLOWLIST["bench/perf.py"]

    def test_rules_table_matches_emitted_codes(self):
        assert set(RULES) == {
            "KL000", "KL001", "KL002", "KL003", "KL004", "KL005", "KL006",
            "KL007",
        }


class TestShippedTreeIsClean:
    def test_src_repro_lints_clean(self):
        """Regression: the shipped package must stay free of lint findings."""
        pkg = Path(repro.__file__).parent
        report = lint_paths([pkg])
        assert report.codes() == [], report.render_text()

    def test_analysis_package_is_fully_annotated(self):
        """pyproject pins mypy disallow_untyped_defs on repro.analysis;
        mypy is not a runtime dependency, so enforce the contract
        structurally too."""
        import ast

        unannotated = []
        for path in sorted((Path(repro.__file__).parent / "analysis").glob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                args = node.args
                params = args.posonlyargs + args.args + args.kwonlyargs
                missing = any(
                    p.annotation is None and p.arg not in ("self", "cls")
                    for p in params
                )
                if node.returns is None or missing:
                    unannotated.append(f"{path.name}:{node.lineno} {node.name}")
        assert unannotated == []


# -- CLI ---------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_with_code_and_location_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "KL001" in out
        assert f"{bad}:2:" in out

    def test_exit_two_when_no_files_found(self, tmp_path):
        assert main([str(tmp_path / "missing")]) == 2

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("ys = sorted(ops, key=id)\n")
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts"]["error"] == 1
        assert payload["diagnostics"][0]["code"] == "KL004"

    def test_json_includes_categories_and_suppression_counts(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n"
            "t = time.time()\n"
            "u = time.monotonic()  # klink: allow[KL006]\n"
        )
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["categories"] == {"determinism": 1}
        assert payload["suppressed"] == {"KL006": 1}
        assert payload["suppressed_total"] == 1
        assert payload["diagnostics"][0]["category"] == "determinism"

    def test_rules_listing(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_run_lint_quiet_prints_nothing(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report, exit_code = run_lint([str(tmp_path)], quiet=True)
        assert exit_code == 0
        assert report.ok
        assert capsys.readouterr().out == ""

    def test_repro_bench_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as bench_main

        (tmp_path / "bad.py").write_text("import random\nrandom.random()\n")
        assert bench_main(["lint", str(tmp_path)]) == 1
        assert "KL002" in capsys.readouterr().out
