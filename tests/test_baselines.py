"""Unit tests for the baseline scheduling policies (Sec. 6.1.3)."""

import pytest

from repro.core.baselines import (
    ALL_BASELINES,
    DefaultScheduler,
    FCFSScheduler,
    HighestRateScheduler,
    RoundRobinScheduler,
    StreamBoxScheduler,
)
from repro.core.scheduler import SchedulerContext
from repro.spe.events import EventBatch
from tests.helpers import make_simple_query


def ctx_for(queries, now=0.0):
    return SchedulerContext(
        now=now, cycle_ms=120.0, cores=4, queries=queries
    )


def enqueue(query, count=10, arrival=0.0):
    query.operators[0].inputs[0].push(
        EventBatch(count=count, t_start=0, t_end=1), arrival
    )


class TestDefaultScheduler:
    def test_share_mode_over_all_queries(self):
        queries = [make_simple_query(f"q{i}") for i in range(3)]
        plan = DefaultScheduler().plan(ctx_for(queries))
        assert plan.mode == "share"
        assert [a.query for a in plan.allocations] == queries

    def test_allocations_cover_whole_pipelines(self):
        q = make_simple_query()
        plan = DefaultScheduler().plan(ctx_for([q]))
        assert plan.allocations[0].runnable_operators() == q.operators


class TestFCFS:
    def test_orders_by_oldest_arrival(self):
        q0, q1 = make_simple_query("q0"), make_simple_query("q1")
        enqueue(q0, arrival=10.0)
        enqueue(q1, arrival=5.0)
        plan = FCFSScheduler().plan(ctx_for([q0, q1]))
        assert plan.allocations[0].query is q1

    def test_empty_queries_ranked_last(self):
        q0, q1 = make_simple_query("q0"), make_simple_query("q1")
        enqueue(q1, arrival=5.0)
        plan = FCFSScheduler().plan(ctx_for([q0, q1]))
        assert plan.allocations[0].query is q1


class TestRoundRobin:
    def test_rotation_advances_by_cores(self):
        queries = [make_simple_query(f"q{i}") for i in range(6)]
        rr = RoundRobinScheduler()
        first = rr.plan(ctx_for(queries)).allocations[0].query
        second = rr.plan(ctx_for(queries)).allocations[0].query
        assert first is queries[0]
        assert second is queries[4]  # advanced by cores=4

    def test_reset_restores_cursor(self):
        queries = [make_simple_query(f"q{i}") for i in range(3)]
        rr = RoundRobinScheduler()
        rr.plan(ctx_for(queries))
        rr.reset()
        assert rr.plan(ctx_for(queries)).allocations[0].query is queries[0]

    def test_empty_query_list(self):
        assert RoundRobinScheduler().plan(ctx_for([])).allocations == []


class TestHighestRate:
    def test_productivity_prefers_cheap_productive_paths(self):
        cheap = make_simple_query("cheap", cost_ms=0.001, selectivity=1.0)
        costly = make_simple_query("costly", cost_ms=1.0, selectivity=0.1)
        assert HighestRateScheduler.productivity(cheap) > (
            HighestRateScheduler.productivity(costly)
        )

    def test_plan_orders_by_productivity(self):
        cheap = make_simple_query("cheap", cost_ms=0.001)
        costly = make_simple_query("costly", cost_ms=1.0)
        plan = HighestRateScheduler().plan(ctx_for([costly, cheap]))
        assert plan.allocations[0].query is cheap

    def test_uses_measured_selectivity_once_observed(self):
        q = make_simple_query("q", selectivity=0.5)
        before = HighestRateScheduler.productivity(q)
        # Window fires nothing yet; filter observes its true selectivity.
        enqueue(q, count=100)
        q.operators[0].step(1e9, 0.0)
        q.operators[1].step(1e9, 0.0)
        after = HighestRateScheduler.productivity(q)
        # The window's measured selectivity is ~0 until it fires, so the
        # path's measured productivity collapses (HR's windowed-query
        # blind spot the paper exploits).
        assert after < before


class TestStreamBox:
    def test_orders_by_earliest_window_deadline(self):
        early = make_simple_query("early", window_ms=500.0)
        late = make_simple_query("late", window_ms=5000.0)
        plan = StreamBoxScheduler().plan(ctx_for([late, early]))
        assert plan.allocations[0].query is early

    def test_pending_old_pane_wins(self):
        # A query whose window holds an old unfired pane is the most
        # urgent for SBox.
        behind = make_simple_query("behind", window_ms=1000.0)
        fresh = make_simple_query("fresh", window_ms=1000.0)
        window = behind.windowed_operators()[0]
        window.inputs[0].push(EventBatch(count=5, t_start=0, t_end=100), 0.0)
        window.step(1e9, 0.0)  # buffered pane [0, 1000) never fired
        # advance fresh's clock past its first deadline with an empty pane
        from repro.spe.events import Watermark

        fresh_window = fresh.windowed_operators()[0]
        fresh_window.inputs[0].push(Watermark(4000.0), 0.0)
        fresh_window.step(1e9, 0.0)
        plan = StreamBoxScheduler().plan(ctx_for([fresh, behind], now=4000.0))
        assert plan.allocations[0].query is behind


class TestRegistry:
    def test_all_baselines_registered(self):
        assert set(ALL_BASELINES) == {"Default", "FCFS", "RR", "HR", "SBox"}

    def test_factories_produce_named_schedulers(self):
        for name, factory in ALL_BASELINES.items():
            assert factory().name == name
