"""Batched-vs-per-event equivalence gates (ISSUE 8 tentpole).

The batched columnar operator core is a pure wall-clock optimization:
for ANY batch size the engine must produce byte-identical
``RunMetrics.summary()`` output and byte-identical JSONL traces to the
``batch_size=1`` per-event reference path. These tests are the equality
gate that pins that contract:

* a tier-1 smoke slice (ysb/lrb x Klink/Default, batch sizes 7 and 64);
* the full matrix — batch sizes {7, 64, 1024} against 1 across all
  schedulers on both workloads — marked ``chaos`` like the other
  expensive matrices (run it with ``pytest -m chaos``);
* trace byte-equality for a traced, audited, telemetry-sampling run;
* checkpoint/restore with RecordBatches in flight: a run that fails,
  restores from a checkpoint whose channels held coalesced batches, and
  resumes must still be byte-identical to the per-event run of the same
  scenario (tier-1 smoke + chaos matrix).
"""

import functools
import json

import pytest

from repro.bench.runner import (
    SCHEDULER_NAMES,
    ExperimentConfig,
    make_scheduler,
    run_experiment,
)
from repro.faults import FaultPlan, InvariantMonitor, NodeFailure
from repro.resilience import CheckpointCoordinator, RecoveryConfig, RecoveryManager
from repro.spe.engine import Engine
from repro.workloads import WorkloadParams, build_queries

DURATION_MS = 6_000.0
N_QUERIES = 3
SEED = 7

BATCH_SIZES = (7, 64, 1024)


@functools.lru_cache(maxsize=None)
def summary_fingerprint(workload: str, scheduler: str, batch_size: int) -> str:
    cfg = ExperimentConfig(
        workload=workload,
        scheduler=scheduler,
        duration_ms=DURATION_MS,
        n_queries=N_QUERIES,
        seed=SEED,
        batch_size=batch_size,
    )
    result = run_experiment(cfg)
    return json.dumps(result.summary, sort_keys=True)


class TestSummaryEquivalence:
    @pytest.mark.parametrize("batch_size", [7, 64])
    @pytest.mark.parametrize("scheduler", ["Klink", "Default"])
    @pytest.mark.parametrize("workload", ["ysb", "lrb"])
    def test_smoke_slice(self, workload, scheduler, batch_size):
        reference = summary_fingerprint(workload, scheduler, 1)
        assert summary_fingerprint(workload, scheduler, batch_size) == reference

    @pytest.mark.chaos
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    @pytest.mark.parametrize("workload", ["ysb", "lrb"])
    def test_full_matrix(self, workload, scheduler, batch_size):
        reference = summary_fingerprint(workload, scheduler, 1)
        assert summary_fingerprint(workload, scheduler, batch_size) == reference


class TestTraceEquivalence:
    def test_jsonl_trace_bytes_identical(self, tmp_path):
        # A fully-observed run (trace + audit + telemetry): every record
        # the exporter writes — cycle decisions, series samples, alerts,
        # summary — must be byte-identical across batch sizes.
        def trace_bytes(batch_size: int) -> bytes:
            path = tmp_path / f"trace_b{batch_size}.jsonl"
            cfg = ExperimentConfig(
                workload="ysb",
                scheduler="Klink",
                duration_ms=DURATION_MS,
                n_queries=N_QUERIES,
                seed=SEED,
                audit=True,
                telemetry=True,
                trace_path=str(path),
                batch_size=batch_size,
            )
            run_experiment(cfg)
            return path.read_bytes()

        reference = trace_bytes(1)
        assert len(reference) > 0
        assert trace_bytes(64) == reference


def _failover_fingerprint(
    workload: str, scheduler: str, batch_size: int, fail_at: float
) -> str:
    """Summary of a run that checkpoints, fails mid-flight, and recovers.

    The checkpoint period and failure time are chosen so the restored
    snapshot's channels hold coalesced in-flight RecordBatches (any
    cycle mid-run has queued payload on this workload), exercising the
    v2 "rb" channel codec end to end.
    """
    queries = build_queries(workload, N_QUERIES, WorkloadParams(seed=SEED))
    monitor = InvariantMonitor()
    coordinator = CheckpointCoordinator(2_000.0)
    recovery = RecoveryManager(RecoveryConfig("restart"), coordinator)
    engine = Engine(
        queries,
        make_scheduler(scheduler),
        cores=8,
        cycle_ms=100.0,
        seed=SEED,
        faults=FaultPlan([NodeFailure(fail_at, fail_at + 3_000.0, node=0)]),
        invariants=monitor,
        checkpoints=coordinator,
        recovery=recovery,
        batch_size=batch_size,
    )
    metrics = engine.run(20_000.0)
    assert monitor.ok, str(monitor)
    assert metrics.checkpoints_taken >= 1
    assert metrics.recoveries >= 1
    return json.dumps(metrics.summary(), sort_keys=True)


class TestCheckpointedBatchEquivalence:
    def test_restore_of_in_flight_batches_resumes_byte_identically(self):
        reference = _failover_fingerprint("ysb", "Klink", 1, 8_000.0)
        assert _failover_fingerprint("ysb", "Klink", 64, 8_000.0) == reference

    @pytest.mark.chaos
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("fail_at", [5_000.0, 12_000.0])
    @pytest.mark.parametrize("scheduler", ["Klink", "Default"])
    @pytest.mark.parametrize("workload", ["ysb", "lrb"])
    def test_failover_matrix(self, workload, scheduler, fail_at, batch_size):
        reference = _failover_fingerprint(workload, scheduler, 1, fail_at)
        assert (
            _failover_fingerprint(workload, scheduler, batch_size, fail_at)
            == reference
        )
