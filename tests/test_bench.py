"""Unit tests for the experiment harness (repro.bench)."""

import math

import pytest

from repro.bench.estimation import estimator_accuracy
from repro.bench.runner import (
    ExperimentConfig,
    SCHEDULER_NAMES,
    WORKLOAD_MEMORY_GB,
    make_scheduler,
    run_cached,
    run_experiment,
)
from repro.core.estimator import SwmIngestionEstimator
from repro.core.klink import KlinkScheduler
from repro.net.delays import ConstantDelay, UniformDelay


class TestSchedulerFactory:
    def test_all_seven_policies(self):
        assert len(SCHEDULER_NAMES) == 7
        for name in SCHEDULER_NAMES:
            assert make_scheduler(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("EDF")

    def test_klink_overrides(self):
        sched = make_scheduler("Klink", confidence=90.0)
        assert isinstance(sched, KlinkScheduler)
        assert sched.confidence == 90.0

    def test_without_mm_override(self):
        sched = make_scheduler("Klink (w/o MM)", confidence=90.0)
        assert not sched.enable_memory_management

    def test_baselines_reject_overrides(self):
        with pytest.raises(ValueError):
            make_scheduler("Default", confidence=90.0)


class TestExperimentConfig:
    def test_memory_defaults_per_workload(self):
        for workload, gb in WORKLOAD_MEMORY_GB.items():
            cfg = ExperimentConfig(workload=workload)
            assert cfg.resolved_memory_gb() == gb

    def test_memory_override(self):
        cfg = ExperimentConfig(memory_gb=3.5)
        assert cfg.resolved_memory_gb() == 3.5

    def test_config_is_hashable_cache_key(self):
        a = ExperimentConfig()
        b = ExperimentConfig()
        assert a == b and hash(a) == hash(b)


class TestRunExperiment:
    def test_small_run_produces_metrics(self):
        # Duration must exceed the 20 s deployment staggering window, or
        # the sampled queries may not have started yet.
        cfg = ExperimentConfig(
            workload="ysb", scheduler="Default", n_queries=2,
            duration_ms=30_000.0, cores=4,
        )
        res = run_experiment(cfg)
        assert res.metrics.total_events_processed > 0
        assert "mean_latency_ms" in res.summary
        assert "Default" in res.row()

    def test_confidence_reaches_klink(self):
        cfg = ExperimentConfig(
            workload="ysb", scheduler="Klink", n_queries=2,
            duration_ms=5_000.0, cores=4, confidence=67.0,
        )
        res = run_experiment(cfg)  # must not raise
        assert res.metrics.cycles > 0

    def test_run_cached_reuses_result(self):
        cfg = ExperimentConfig(
            workload="ysb", scheduler="Default", n_queries=1,
            duration_ms=5_000.0, cores=4, seed=99,
        )
        assert run_cached(cfg) is run_cached(cfg)


class TestEstimatorAccuracyHarness:
    def test_constant_delay_is_fully_predictable(self):
        r = estimator_accuracy(
            SwmIngestionEstimator(confidence=95.0),
            ConstantDelay(100.0),
            n_epochs=100,
        )
        assert r.accuracy == 1.0
        assert r.n_epochs == 80  # warmup removed

    def test_uniform_coverage_near_confidence(self):
        r = estimator_accuracy(
            SwmIngestionEstimator(confidence=95.0),
            UniformDelay(0.0, 400.0, seed=5),
            n_epochs=300,
        )
        assert r.accuracy > 0.9

    def test_interval_width_reported(self):
        r = estimator_accuracy(
            SwmIngestionEstimator(confidence=95.0),
            UniformDelay(0.0, 400.0, seed=5),
            n_epochs=100,
        )
        assert r.mean_interval_ms > 0

    def test_rejects_bad_epoch_counts(self):
        with pytest.raises(ValueError):
            estimator_accuracy(
                SwmIngestionEstimator(), ConstantDelay(0.0),
                n_epochs=10, warmup_epochs=10,
            )
