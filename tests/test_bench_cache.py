"""Unit tests for the persistent result cache and the cached runner.

Small configs throughout (1-2 queries, a few simulated seconds): the
object under test is the cache machinery, not the simulation.
"""

import json
import math
import pickle
from dataclasses import replace

import pytest

from repro.bench.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    cacheable,
    code_fingerprint,
    config_identity,
    config_key,
    resolve_cache_dir,
)
from repro.bench.runner import (
    ExperimentConfig,
    cache_stats,
    clear_cache,
    configure_cache,
    default_cache,
    run_cached,
    run_many,
    simulation_count,
)

TINY = ExperimentConfig(
    workload="ysb", scheduler="Default", n_queries=1,
    duration_ms=5_000.0, cores=4, seed=42,
)


def canon_summary(result):
    """NaN-tolerant canonical form (short runs have NaN percentiles)."""
    return json.dumps(result.summary, sort_keys=True, default=str)


class TestConfigKey:
    def test_stable_across_equal_configs(self):
        a = ExperimentConfig(seed=3)
        b = ExperimentConfig(seed=3)
        assert config_key(a) == config_key(b)

    def test_sensitive_to_every_changed_field(self):
        base = config_key(TINY)
        for variant in (
            replace(TINY, seed=43),
            replace(TINY, n_queries=2),
            replace(TINY, scheduler="FCFS"),
            replace(TINY, rate_scale=0.5),
        ):
            assert config_key(variant) != base

    def test_sensitive_to_code_fingerprint(self):
        assert config_key(TINY, "aaaa") != config_key(TINY, "bbbb")

    def test_identity_is_canonical_json(self):
        identity = json.loads(config_identity(TINY))
        assert identity["workload"] == "ysb"
        assert identity["seed"] == 42
        assert list(identity) == sorted(identity)

    def test_fingerprint_is_memoized_and_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # raises if not hex

    def test_traced_configs_are_not_cacheable(self):
        assert cacheable(TINY)
        traced = ExperimentConfig(trace_path="/tmp/t.jsonl")
        assert not cacheable(traced)


class TestResolveCacheDir:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "/env/dir")
        assert resolve_cache_dir("/arg/dir") == "/arg/dir"

    def test_env_var_beats_default(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "/env/dir")
        assert resolve_cache_dir() == "/env/dir"

    def test_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache_dir() == DEFAULT_CACHE_DIR


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = run_cached(TINY, cache=None)
        assert cache.get(TINY) is None  # cold
        assert cache.put(TINY, result)
        loaded = cache.get(TINY)
        assert loaded is not None
        assert canon_summary(loaded) == canon_summary(result)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = run_cached(TINY, cache=None)
        assert cache.put(TINY, result)
        [key] = cache.entries()
        path = cache._path(key)
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        assert cache.get(TINY) is None
        assert cache.stats.errors == 1

    def test_wrong_key_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = run_cached(TINY, cache=None)
        assert cache.put(TINY, result)
        [key] = cache.entries()
        path = cache._path(key)
        with open(path, "rb") as fh:
            entry = pickle.load(fh)
        entry["key"] = "0" * 64
        with open(path, "wb") as fh:
            pickle.dump(entry, fh)
        assert cache.get(TINY) is None
        assert cache.stats.errors == 1

    def test_traced_config_never_stored(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = run_cached(TINY, cache=None)
        traced = replace(TINY, trace_path=str(tmp_path / "t.jsonl"))
        assert not cache.put(traced, result)
        assert len(cache) == 0

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = run_cached(TINY, cache=None)
        cache.put(TINY, result)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunCached:
    def test_memory_hit_returns_same_object(self):
        assert run_cached(TINY) is run_cached(TINY)
        assert simulation_count() == 1
        assert cache_stats()["memory_hits"] == 1

    def test_persistent_replay_zero_simulations(self, tmp_path):
        configure_cache(str(tmp_path))
        first = run_cached(TINY)
        assert simulation_count() == 1
        # New "session": drop the in-memory layer, keep the disk layer.
        clear_cache()
        replayed = run_cached(TINY)
        assert simulation_count() == 0
        assert canon_summary(replayed) == canon_summary(first)
        stats = cache_stats()
        assert stats["persistent_hits"] == 1

    def test_stale_fingerprint_invalidates(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="code-v1")
        run_cached(TINY, cache=cache)
        assert simulation_count() == 1
        clear_cache()
        stale = ResultCache(str(tmp_path), fingerprint="code-v2")
        run_cached(TINY, cache=stale)
        assert simulation_count() == 1  # re-simulated under new code

    def test_clear_cache_persistent_wipes_disk(self, tmp_path):
        cache = configure_cache(str(tmp_path))
        run_cached(TINY)
        assert len(cache) == 1
        clear_cache(persistent=True)
        assert len(cache) == 0

    def test_memory_cache_is_lru_bounded(self, monkeypatch):
        import repro.bench.runner as runner

        monkeypatch.setattr(runner, "_MEMORY_CACHE_LIMIT", 2)
        configs = [replace(TINY, seed=seed) for seed in (1, 2, 3)]
        for cfg in configs:
            run_cached(cfg)
        assert cache_stats()["memory_entries"] == 2
        # Oldest entry evicted: re-running it simulates again.
        before = simulation_count()
        run_cached(configs[0])
        assert simulation_count() == before + 1

    def test_traced_run_never_cached(self, tmp_path):
        configure_cache(str(tmp_path))
        traced = replace(TINY, trace_path=str(tmp_path / "run.jsonl"))
        run_cached(traced)
        run_cached(traced)
        assert simulation_count() == 2
        assert len(default_cache()) == 0


class TestRunMany:
    def test_duplicates_simulated_once(self):
        results = run_many([TINY, TINY, TINY])
        assert simulation_count() == 1
        assert results[0] is results[1] is results[2]

    def test_results_in_input_order(self):
        a = TINY
        b = replace(TINY, scheduler="FCFS")
        results = run_many([b, a, b])
        assert [r.config.scheduler for r in results] == [
            "FCFS", "Default", "FCFS",
        ]

    def test_warm_disk_cache_does_zero_simulations(self, tmp_path):
        """The figure-suite acceptance property, in miniature: a second
        invocation against a warm persistent cache replays everything."""
        configure_cache(str(tmp_path))
        grid = [
            replace(TINY, scheduler=s, seed=n)
            for s in ("Default", "FCFS")
            for n in (1, 2)
        ]
        run_many(grid)
        assert simulation_count() == len(grid)
        clear_cache()  # fresh process, same cache dir
        replayed = run_many(grid)
        assert simulation_count() == 0
        assert cache_stats()["persistent_hits"] == len(grid)
        assert len(replayed) == len(grid)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_many([TINY], jobs=0)


class TestSummaryNanShape:
    def test_short_run_percentiles_may_be_nan_but_json_stable(self):
        result = run_cached(TINY)
        text = canon_summary(result)
        again = canon_summary(result)
        assert text == again
        payload = json.loads(text)
        for key, value in payload.items():
            if isinstance(value, float):
                assert math.isfinite(value) or math.isnan(value), key
