"""Parallel sweep execution: byte-identical to serial, and faster.

The executor's contract is that ``jobs`` only changes wall time — the
returned summaries AND any side-effect JSONL traces must be identical
byte for byte. Tiny configs keep the spawn overhead dominant but
bounded; the speedup property is only asserted on hosts with enough
cores to show it.
"""

import json
import os
from dataclasses import replace

import pytest

from repro.bench.runner import (
    ExperimentConfig,
    clear_cache,
    run_many,
    simulation_count,
    sweep,
)

TINY = ExperimentConfig(
    workload="ysb", scheduler="Default", n_queries=1,
    duration_ms=5_000.0, cores=4, seed=17,
)


def canon(result):
    return json.dumps(result.summary, sort_keys=True, default=str)


class TestParallelDeterminism:
    def test_jobs4_summaries_match_serial(self):
        grid = [
            replace(TINY, scheduler=s, seed=n)
            for s in ("Default", "FCFS")
            for n in (1, 2)
        ]
        serial = run_many(grid, jobs=1, cache=None)
        clear_cache()
        parallel = run_many(grid, jobs=4, cache=None)
        assert simulation_count() == len(grid)
        assert [canon(r) for r in serial] == [canon(r) for r in parallel]

    def test_jobs4_traces_byte_identical(self, tmp_path):
        base = replace(TINY, duration_ms=4_000.0)
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        schedulers = ["Default", "FCFS"]
        sweep(base, schedulers, [1], jobs=1, cache=None,
              trace_dir=str(serial_dir))
        sweep(base, schedulers, [1], jobs=4, cache=None,
              trace_dir=str(parallel_dir))
        names = sorted(os.listdir(serial_dir))
        assert names == sorted(os.listdir(parallel_dir))
        assert len(names) == len(schedulers)
        for name in names:
            a = (serial_dir / name).read_bytes()
            b = (parallel_dir / name).read_bytes()
            assert a == b, name
            assert a  # traces are non-empty

    def test_jobs4_identical_under_fault_injection(self):
        grid = [
            replace(TINY, scheduler=s, fault_seed=7, check_invariants=True)
            for s in ("Default", "Klink")
        ]
        serial = run_many(grid, jobs=1, cache=None)
        clear_cache()
        parallel = run_many(grid, jobs=4, cache=None)
        assert [canon(r) for r in serial] == [canon(r) for r in parallel]
        for r in serial + parallel:
            assert r.monitor is not None and r.monitor.cycles_checked > 0

    def test_sweep_keys_and_order(self):
        grid = sweep(TINY, ["Default", "FCFS"], [1, 2], cache=None)
        assert set(grid) == {
            ("Default", 1), ("Default", 2), ("FCFS", 1), ("FCFS", 2),
        }
        for (scheduler, n), result in grid.items():
            assert result.config.scheduler == scheduler
            assert result.config.n_queries == n


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup is only observable with >= 4 cores",
)
def test_parallel_sweep_speedup():
    """Acceptance: jobs=4 at least 2x faster than serial on >=4 cores."""
    import time  # klink: allow[KL001]

    grid = [
        replace(TINY, scheduler=s, seed=seed, duration_ms=30_000.0,
                n_queries=4)
        for s in ("Default", "Klink")
        for seed in (1, 2)
    ]
    t0 = time.perf_counter()  # klink: allow[KL001]
    run_many(grid, jobs=1, cache=None)
    serial_s = time.perf_counter() - t0  # klink: allow[KL001]
    clear_cache()
    t0 = time.perf_counter()  # klink: allow[KL001]
    run_many(grid, jobs=4, cache=None)
    parallel_s = time.perf_counter() - t0  # klink: allow[KL001]
    assert parallel_s < serial_s / 2.0, (serial_s, parallel_s)
