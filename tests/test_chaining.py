"""Unit tests for operator chaining (fusion)."""

import pytest

from repro.spe.chaining import FusedOperator, fuse_stateless, fusible_runs, is_stateless
from repro.spe.events import EventBatch
from repro.spe.operators import (
    FilterOperator,
    MapOperator,
    SinkOperator,
    WindowedAggregate,
)
from repro.spe.reorder import ReorderBuffer
from repro.spe.windows import TumblingEventTimeWindows
from tests.helpers import make_simple_query


class TestIsStateless:
    def test_map_and_filter_are_stateless(self):
        assert is_stateless(MapOperator("m", 0.01))
        assert is_stateless(FilterOperator("f", 0.01, 0.5))

    def test_window_sink_reorder_are_stateful(self):
        w = WindowedAggregate("w", TumblingEventTimeWindows(100.0), 0.01)
        assert not is_stateless(w)
        assert not is_stateless(SinkOperator("s"))
        assert not is_stateless(ReorderBuffer("rb"))


class TestFusion:
    def test_fused_cost_discounts_by_selectivity(self):
        f = FilterOperator("f", 1.0, selectivity=0.5)
        m = MapOperator("m", 1.0)
        fused = fuse_stateless([f, m])
        # Cost per incoming event: 1.0 (filter) + 0.5 * 1.0 (map on
        # survivors).
        assert fused.cost_per_event_ms == pytest.approx(1.5)
        assert fused.selectivity == pytest.approx(0.5)

    def test_fused_output_bytes_from_last_member(self):
        f = FilterOperator("f", 0.01, 0.5, out_bytes_per_event=200)
        m = MapOperator("m", 0.01, out_bytes_per_event=64)
        assert fuse_stateless([f, m]).out_bytes_per_event == 64

    def test_fused_processes_like_the_chain(self):
        f = FilterOperator("f", 0.01, selectivity=0.5)
        m = MapOperator("m", 0.01)
        fused = fuse_stateless([f, m])
        sink = SinkOperator("s")
        fused.connect(sink)
        fused.inputs[0].push(EventBatch(count=100, t_start=0, t_end=1), 0.0)
        fused.step(1e9, 0.0)
        assert sink.inputs[0].queued_events == pytest.approx(50.0)

    def test_fusing_stateful_rejected(self):
        w = WindowedAggregate("w", TumblingEventTimeWindows(100.0), 0.01)
        with pytest.raises(ValueError):
            fuse_stateless([MapOperator("m", 0.01), w])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            fuse_stateless([])

    def test_default_name_joins_members(self):
        f = FilterOperator("q.f", 0.01, 0.5)
        m = MapOperator("q.m", 0.01)
        assert fuse_stateless([f, m]).name == "q.f+q.m"


class TestFusibleRuns:
    def test_finds_stateless_run_in_pipeline(self):
        q = make_simple_query()  # filter -> window -> sink
        assert fusible_runs(q.operators) == []  # single stateless op only

    def test_long_stateless_chain_detected(self):
        ops = [
            MapOperator("a", 0.01),
            FilterOperator("b", 0.01, 0.9),
            MapOperator("c", 0.01),
            WindowedAggregate("w", TumblingEventTimeWindows(100.0), 0.01),
            SinkOperator("s"),
        ]
        runs = fusible_runs(ops)
        assert len(runs) == 1
        assert [op.name for op in runs[0]] == ["a", "b", "c"]

    def test_stateful_breaks_runs(self):
        ops = [
            MapOperator("a", 0.01),
            MapOperator("b", 0.01),
            WindowedAggregate("w", TumblingEventTimeWindows(100.0), 0.01),
            MapOperator("c", 0.01),
            MapOperator("d", 0.01),
            SinkOperator("s"),
        ]
        runs = fusible_runs(ops)
        assert len(runs) == 2
        assert [op.name for op in runs[1]] == ["c", "d"]
