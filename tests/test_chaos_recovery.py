"""Chaos-recovery tests: node failures under every recovery strategy.

The failover contract proven here (ISSUE satellites 2+3):

* **no loss** — after recovery, ``events_lost_to_failures`` is zero and
  the :class:`~repro.faults.invariants.InvariantMonitor` stays green
  (conservation would flag both lost *and* duplicated events);
* **bounded recovery time** — ``restart`` recovers within the failure
  episode plus a detection cycle or two; ``standby`` within a couple of
  detection cycles;
* **honest accounting** — with recovery disabled (``none``), the loss is
  counted and tolerated; with recovery *enabled*, any residual loss is a
  flagged violation, never silently excused.

The full schedulers x workloads x failure-time matrix is marked
``chaos`` and excluded from tier-1 (run it with ``pytest -m chaos``); a
small smoke subset stays unmarked.
"""

import json

import pytest

from repro.bench.runner import (
    ExperimentConfig,
    SCHEDULER_NAMES,
    make_scheduler,
    run_experiment,
    trace_summary,
)
from repro.core.baselines import DefaultScheduler, FCFSScheduler
from repro.distributed import DistributedEngine, PhysicalPlan
from repro.faults import FaultPlan, InvariantMonitor, NodeFailure
from repro.resilience import CheckpointCoordinator, RecoveryConfig, RecoveryManager
from repro.spe.engine import Engine
from repro.workloads import WorkloadParams, build_queries
from tests.helpers import make_simple_query

CYCLE_MS = 100.0
EPISODE_MS = 3_000.0
CHECKPOINT_MS = 2_000.0


def run_with_failure(
    scheduler,
    workload,
    fail_at,
    strategy,
    *,
    duration_ms=30_000.0,
    n_queries=4,
    seed=0,
):
    """One engine run with a single node-failure episode and full
    checkpoint/recovery/invariant wiring."""
    queries = build_queries(workload, n_queries, WorkloadParams(seed=seed))
    monitor = InvariantMonitor()
    coordinator = CheckpointCoordinator(CHECKPOINT_MS)
    recovery = RecoveryManager(RecoveryConfig(strategy), coordinator)
    engine = Engine(
        queries,
        make_scheduler(scheduler),
        cores=8,
        cycle_ms=CYCLE_MS,
        seed=seed,
        faults=FaultPlan([NodeFailure(fail_at, fail_at + EPISODE_MS, node=0)]),
        invariants=monitor,
        checkpoints=coordinator,
        recovery=recovery,
    )
    metrics = engine.run(duration_ms)
    return engine, metrics, monitor


def assert_recovered(metrics, monitor, strategy):
    """The no-loss / no-duplication / bounded-recovery invariant gate."""
    assert monitor.ok, str(monitor)
    assert metrics.events_lost_to_failures == 0.0
    assert metrics.recoveries >= 1
    for recovery_time in metrics.recovery_time_ms:
        if strategy == "restart":
            # dark for the episode, then rolled back within a cycle or two
            assert recovery_time <= EPISODE_MS + 2 * CYCLE_MS
        else:
            # hot standby promotes at detection time
            assert recovery_time <= 2 * CYCLE_MS
    summary = trace_summary(metrics)
    assert summary["resilience"]["recoveries"] == metrics.recoveries
    assert summary["resilience"]["events_lost_to_failures"] == 0.0


@pytest.mark.chaos
@pytest.mark.parametrize("strategy", ["restart", "standby"])
@pytest.mark.parametrize("fail_at", [5_000.0, 12_000.0, 21_000.0])
@pytest.mark.parametrize("workload", ["ysb", "lrb"])
@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_chaos_matrix(scheduler, workload, fail_at, strategy):
    _, metrics, monitor = run_with_failure(scheduler, workload, fail_at, strategy)
    assert_recovered(metrics, monitor, strategy)


@pytest.mark.parametrize("strategy", ["restart", "standby"])
@pytest.mark.parametrize("scheduler", ["Klink", "Default"])
def test_failover_smoke(scheduler, strategy):
    """Tier-1 slice of the chaos matrix: one ysb failure per strategy."""
    _, metrics, monitor = run_with_failure(
        scheduler, "ysb", 8_000.0, strategy, duration_ms=20_000.0
    )
    assert_recovered(metrics, monitor, strategy)
    assert metrics.checkpoints_taken >= 1
    assert len(metrics.replay_span_ms) == metrics.recoveries


def _backlogged_engine(monitor=None, recovery=None, checkpoints=None):
    """One core against a 20k-eps source: entry queues stay saturated, so
    a crash always has in-flight events to lose."""
    query = make_simple_query("q0", rate_eps=20_000.0, cost_ms=0.1)
    return query, Engine(
        [query],
        FCFSScheduler(),
        cores=1,
        cycle_ms=CYCLE_MS,
        seed=0,
        faults=FaultPlan([NodeFailure(5_000.0, 8_000.0, node=0)]),
        invariants=monitor,
        checkpoints=checkpoints,
        recovery=recovery,
    )


class TestNoneStrategy:
    def test_crash_loss_is_counted_and_tolerated(self):
        monitor = InvariantMonitor()
        recovery = RecoveryManager(RecoveryConfig("none"))
        _, engine = _backlogged_engine(monitor, recovery)
        metrics = engine.run(15_000.0)
        assert metrics.events_lost_to_failures > 0.0
        assert metrics.recoveries == 0
        # tolerated precisely because recovery was disabled
        assert monitor.ok, str(monitor)
        event = metrics.recovery_events[0]
        assert event["strategy"] == "none"
        assert event["recovered_at"] is None
        assert event["events_lost"] == metrics.events_lost_to_failures
        summary = trace_summary(metrics)
        assert summary["resilience"]["events_lost_to_failures"] > 0.0

    def test_restart_on_same_backlog_loses_nothing(self):
        """The exact configuration that loses events under ``none`` is
        lossless once checkpoint/restart recovery is on."""
        monitor = InvariantMonitor()
        coordinator = CheckpointCoordinator(CHECKPOINT_MS)
        recovery = RecoveryManager(RecoveryConfig("restart"), coordinator)
        _, engine = _backlogged_engine(monitor, recovery, coordinator)
        metrics = engine.run(15_000.0)
        assert metrics.events_lost_to_failures == 0.0
        assert metrics.recoveries == 1
        assert monitor.ok, str(monitor)


class TestInvariantCrashHooks:
    """Satellite 3: loss is only tolerated when recovery is disabled."""

    def _run_and_wipe(self):
        monitor = InvariantMonitor()
        query, engine = _backlogged_engine(monitor)
        engine.faults = None  # no failure injection; we crash by hand
        engine.run(3_000.0)
        channel = query.bindings[0].channel
        lost = channel.queued_events
        assert lost > 0  # the backlog guarantees in-flight work to lose
        channel.clear()
        channel._pending.clear()
        return monitor, engine, {query.query_id: lost}

    def test_wiped_queue_without_crash_report_breaks_conservation(self):
        monitor, engine, _ = self._run_and_wipe()
        monitor.finalize(engine)
        assert not monitor.ok
        assert any(
            v.invariant == "event-conservation" for v in monitor.violations
        )

    def test_loss_tolerated_only_when_recovery_disabled(self):
        monitor, engine, lost_entry = self._run_and_wipe()
        monitor.on_crash(engine, lost_entry, recovery_enabled=False)
        monitor.finalize(engine)
        assert monitor.ok, str(monitor)

    def test_loss_with_recovery_enabled_is_a_violation(self):
        monitor, engine, lost_entry = self._run_and_wipe()
        monitor.on_crash(engine, lost_entry, recovery_enabled=True)
        assert not monitor.ok
        assert any(
            v.invariant == "unrecovered-loss" for v in monitor.violations
        )

    def test_tiny_loss_below_tolerance_ignored(self):
        monitor = InvariantMonitor()
        _, engine = _backlogged_engine(monitor)
        engine.faults = None
        engine.run(1_000.0)
        monitor.on_crash(engine, {"q0": 1e-12}, recovery_enabled=True)
        assert monitor.ok


class TestDistributedFailover:
    def _cluster(self, strategy, monitor):
        queries = [
            make_simple_query(f"q{i}", rate_eps=2_000.0, delay_ms=20.0)
            for i in range(3)
        ]
        plan = PhysicalPlan.locality(queries, 3)
        coordinator = CheckpointCoordinator(CHECKPOINT_MS)
        recovery = RecoveryManager(RecoveryConfig(strategy), coordinator)
        engine = DistributedEngine.with_policy(
            queries,
            plan,
            DefaultScheduler,
            cores_per_node=4,
            cycle_ms=CYCLE_MS,
            seed=0,
            faults=FaultPlan([NodeFailure(6_000.0, 9_000.0, node=1)]),
            invariants=monitor,
            checkpoints=coordinator,
            recovery=recovery,
        )
        return queries, plan, engine

    def test_standby_promotion_remaps_failed_node(self):
        monitor = InvariantMonitor()
        queries, plan, engine = self._cluster("standby", monitor)
        orphans = [
            op
            for q in queries
            for op in q.operators
            if plan.node_of[id(op)] == 1
        ]
        assert orphans  # locality placement puts query q1 on node 1
        metrics = engine.run(15_000.0)
        assert_recovered(metrics, monitor, "standby")
        for op in orphans:  # every orphaned operator found a survivor
            assert plan.node_of[id(op)] != 1

    def test_restart_rolls_back_when_node_returns(self):
        monitor = InvariantMonitor()
        queries, plan, engine = self._cluster("restart", monitor)
        placement_before = dict(plan.node_of)
        metrics = engine.run(15_000.0)
        assert_recovered(metrics, monitor, "restart")
        # restart keeps the placement: the node comes back and resumes
        assert plan.node_of == placement_before
        assert metrics.recovery_time_ms[0] >= EPISODE_MS - CYCLE_MS


def test_checkpointing_does_not_perturb_results():
    """A checkpointed no-failure run is byte-identical to the baseline."""
    base_config = dict(
        workload="ysb",
        scheduler="Klink",
        n_queries=4,
        duration_ms=20_000.0,
        cores=8,
        cycle_ms=CYCLE_MS,
        seed=3,
    )
    base = run_experiment(ExperimentConfig(**base_config))
    checked = run_experiment(
        ExperimentConfig(**base_config, checkpoint_period_ms=3_000.0)
    )
    assert json.dumps(checked.summary, sort_keys=True) == json.dumps(
        base.summary, sort_keys=True
    )
    assert checked.metrics.swm_latencies == base.metrics.swm_latencies
    assert checked.metrics.checkpoints_taken > 0
    # no failures -> no resilience section in the trace summary either
    assert "resilience" not in trace_summary(base.metrics)


def _seed_with_node_failure(duration_ms, query_ids):
    """First fault seed whose random plan has a node failure that also
    ends early enough for restart recovery to complete in-run."""
    for seed in range(80):
        plan = FaultPlan.random(seed, duration_ms, query_ids=query_ids)
        if any(
            isinstance(f, NodeFailure) and f.end_ms <= duration_ms - 1_000.0
            for f in plan
        ):
            return seed
    raise AssertionError("no node-failure seed found in range")


@pytest.mark.parametrize("strategy", ["restart", "standby"])
def test_run_experiment_failover_e2e(strategy):
    """ISSUE acceptance: a full bench run with --recover completes a
    mid-run node failure with zero loss, invariant-gated, and reports
    recovery metrics in the trace summary."""
    duration = 30_000.0
    ids = [f"ysb-{i}" for i in range(4)]
    seed = _seed_with_node_failure(duration, ids)
    result = run_experiment(
        ExperimentConfig(
            workload="ysb",
            scheduler="Klink",
            n_queries=4,
            duration_ms=duration,
            cores=8,
            cycle_ms=CYCLE_MS,
            fault_seed=seed,
            check_invariants=True,
            checkpoint_period_ms=CHECKPOINT_MS,
            recover=strategy,
        )
    )
    metrics = result.metrics
    assert result.monitor is not None and result.monitor.ok, str(result.monitor)
    assert metrics.recoveries >= 1
    assert metrics.events_lost_to_failures == 0.0
    resilience = trace_summary(metrics)["resilience"]
    assert resilience["recoveries"] == metrics.recoveries
    assert resilience["mean_recovery_time_ms"] >= 0.0
    assert len(resilience["events"]) == len(metrics.recovery_events)
