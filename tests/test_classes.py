"""Unit tests for class-based (SLA) scheduling composition."""

import pytest

from repro.core.baselines import DefaultScheduler, StreamBoxScheduler
from repro.core.classes import ClassBasedScheduler
from repro.core.klink import KlinkScheduler
from repro.core.scheduler import SchedulerContext
from tests.helpers import make_simple_query


def ctx_for(queries, now=0.0):
    return SchedulerContext(now=now, cycle_ms=120.0, cores=4, queries=queries)


class TestComposition:
    def test_higher_class_runs_first(self):
        gold = make_simple_query("gold", window_ms=5000.0)
        bronze = make_simple_query("bronze", window_ms=500.0)
        sched = ClassBasedScheduler(
            StreamBoxScheduler(), {"gold": 0, "bronze": 2}
        )
        plan = sched.plan(ctx_for([bronze, gold]))
        # Even though bronze's deadline is earlier (SBox would pick it),
        # the class ordering dominates.
        assert plan.allocations[0].query is gold

    def test_inner_order_preserved_within_class(self):
        early = make_simple_query("early", window_ms=500.0)
        late = make_simple_query("late", window_ms=5000.0)
        sched = ClassBasedScheduler(StreamBoxScheduler())
        plan = sched.plan(ctx_for([late, early]))
        assert plan.allocations[0].query is early  # SBox's order

    def test_default_class_applies_to_unassigned(self):
        q0 = make_simple_query("q0")
        q1 = make_simple_query("vip")
        sched = ClassBasedScheduler(
            StreamBoxScheduler(), {"vip": 0}, default_class=1
        )
        plan = sched.plan(ctx_for([q0, q1]))
        assert plan.allocations[0].query is q1

    def test_share_mode_passthrough(self):
        q = make_simple_query()
        sched = ClassBasedScheduler(DefaultScheduler())
        plan = sched.plan(ctx_for([q]))
        assert plan.mode == "share"

    def test_composes_with_klink(self):
        queries = [make_simple_query(f"q{i}") for i in range(3)]
        sched = ClassBasedScheduler(KlinkScheduler(), {"q2": 0}, default_class=1)
        plan = sched.plan(ctx_for(queries))
        assert plan.allocations[0].query.query_id == "q2"

    def test_assign_updates_class(self):
        sched = ClassBasedScheduler(StreamBoxScheduler())
        sched.assign("q0", 3)
        assert sched.class_of("q0") == 3
        assert sched.class_of("other") == 0

    def test_rejects_negative_class(self):
        sched = ClassBasedScheduler(StreamBoxScheduler())
        with pytest.raises(ValueError):
            sched.assign("q", -1)
        with pytest.raises(ValueError):
            ClassBasedScheduler(StreamBoxScheduler(), default_class=-1)

    def test_overhead_and_reset_delegate(self):
        inner = KlinkScheduler()
        sched = ClassBasedScheduler(inner)
        queries = [make_simple_query("q")]
        sched.plan(ctx_for(queries))
        assert sched.overhead_ms(ctx_for(queries)) == inner.overhead_ms(
            ctx_for(queries)
        )
        sched.reset()
        assert inner.last_slacks == {}

    def test_name_reflects_inner(self):
        assert ClassBasedScheduler(KlinkScheduler()).name == "Class(Klink)"


class TestEndToEnd:
    def test_gold_class_gets_lower_latency_under_contention(self):
        from repro.core.scheduler import Scheduler
        from repro.spe.engine import Engine

        queries = [
            make_simple_query(f"q{i}", rate_eps=20_000.0, cost_ms=0.05,
                              window_ms=1000.0)
            for i in range(6)
        ]
        classes = {"q0": 0}  # q0 is gold; demand ~6 cores on 2 cores
        sched = ClassBasedScheduler(KlinkScheduler(), classes, default_class=1)
        engine = Engine(queries, sched, cores=2, cycle_ms=100.0)
        metrics = engine.run(30_000.0)
        gold = metrics.per_query_swm_latencies.get("q0", [])
        others = [
            lat
            for qid, lats in metrics.per_query_swm_latencies.items()
            if qid != "q0"
            for lat in lats
        ]
        assert gold and others
        gold_mean = sum(gold) / len(gold)
        others_mean = sum(others) / len(others)
        assert gold_mean < others_mean * 0.8
