"""Unit tests for the command-line interface."""

import csv
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ysb" in out and "Klink" in out

    def test_run_requires_known_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "EDF"])

    def test_run_requires_known_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "tpch"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "ysb"
        assert args.scheduler == "Klink"
        assert args.queries == 60


class TestRunCommand:
    def test_small_run_prints_table(self, capsys):
        rc = main([
            "run", "--workload", "ysb", "--scheduler", "Default",
            "--queries", "2", "--duration", "25", "--cores", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Default" in out
        assert "ysb" in out

    def test_faults_and_invariants_flags(self, capsys):
        rc = main([
            "run", "--workload", "ysb", "--scheduler", "Default",
            "--queries", "2", "--duration", "20", "--cores", "4",
            "--faults", "5", "--check-invariants",
        ])
        assert rc == 0  # zero violations -> success exit
        out = capsys.readouterr().out
        assert "invariants OK" in out

    def test_faults_flag_defaults_off(self):
        args = build_parser().parse_args(["run"])
        assert args.faults is None
        assert args.check_invariants is False

    def test_negative_fault_seed_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--faults", "-1"])

    def test_violations_produce_failure_exit(self, capsys):
        from types import SimpleNamespace

        from repro.cli import _report_monitors
        from repro.faults import InvariantMonitor

        monitor = InvariantMonitor()
        monitor._record(0.0, "cpu-budget", "engine", "synthetic")
        res = SimpleNamespace(
            monitor=monitor,
            config=SimpleNamespace(scheduler="Klink", n_queries=2),
        )
        assert _report_monitors([res]) == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        path = str(tmp_path / "out.csv")
        main([
            "run", "--workload", "ysb", "--scheduler", "Default",
            "--queries", "2", "--duration", "25", "--cores", "4",
            "--csv", path,
        ])
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1
        assert rows[0]["scheduler"] == "Default"
        assert float(rows[0]["throughput_eps"]) > 0


class TestSweepCommand:
    def test_sweep_runs_grid(self, capsys):
        rc = main([
            "sweep", "--workload", "ysb", "--queries", "1", "2",
            "--schedulers", "Default", "Klink",
            "--duration", "25", "--cores", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("Default") == 2
        assert out.count("Klink") == 2


class TestEstimateCommand:
    def test_klink_estimator(self, capsys):
        rc = main([
            "estimate", "--delay", "uniform", "--epochs", "60",
            "--repetitions", "1",
        ])
        assert rc == 0
        assert "accuracy" in capsys.readouterr().out

    def test_lr_estimator(self, capsys):
        rc = main([
            "estimate", "--estimator", "lr", "--delay", "zipf",
            "--epochs", "60", "--repetitions", "1",
        ])
        assert rc == 0
        assert "LR" in capsys.readouterr().out
